//! The declarative sweep specification and its cartesian expansion.
//!
//! A [`SweepSpec`] names the axes of an experiment matrix; [`SweepSpec::
//! expand`] takes the cartesian product, applies the per-axis filters and
//! yields one [`ExperimentPoint`] per surviving combination. A point is a
//! *value* — it can be built into a ready-to-run
//! [`likwid_workloads::Experiment`] at any time, and its canonical
//! serialization (a versioned superset of
//! [`likwid_workloads::Experiment::canonical_spec`]) is the memo key of
//! the on-disk result store.

use likwid::perfctr::parse_measurement_spec;
use likwid_affinity::pinlist::scatter_placement;
use likwid_workloads::jacobi::{JacobiVariant, JacobiWorkload};
use likwid_workloads::openmp::{CompilerPersonality, KmpAffinity, PlacementPolicy};
use likwid_workloads::{kernel_by_name, Experiment, StreamTriad, Workload};
use likwid_x86_machine::{FaultPlan, MachinePreset, Prefetcher};

/// Which workload a point runs. Canonical and instantiable: the variants
/// cover the paper's two case studies and the registered `likwid-bench`
/// kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// The paper's OpenMP STREAM triad at the figure array size; the
    /// point's compiler personality selects the code generation model.
    StreamTriad,
    /// A registered microbenchmark kernel (`copy`, `scale`, `add`,
    /// `triad`, `daxpy`, `chase`, …) at a given working-set size.
    Kernel {
        /// Registry name.
        name: String,
        /// Working set in bytes.
        working_set_bytes: u64,
        /// Passes over the working set.
        passes: u64,
    },
    /// The 3D Jacobi smoother.
    Jacobi {
        /// Stencil variant.
        variant: JacobiVariant,
        /// Grid size in every dimension.
        size: usize,
        /// Time steps / sweeps.
        time_steps: usize,
    },
}

impl WorkloadSpec {
    /// Short canonical form, used in point keys and memo specs.
    pub fn canonical(&self) -> String {
        match self {
            WorkloadSpec::StreamTriad => "stream-triad".to_string(),
            WorkloadSpec::Kernel { name, working_set_bytes, passes } => {
                format!("kernel:{name}:{working_set_bytes}:{passes}")
            }
            WorkloadSpec::Jacobi { variant, size, time_steps } => {
                format!("jacobi:{variant:?}:{size}:{time_steps}")
            }
        }
    }

    /// Instantiate the workload for a compiler personality.
    pub fn instantiate(
        &self,
        personality: CompilerPersonality,
    ) -> likwid::Result<Box<dyn Workload>> {
        match self {
            WorkloadSpec::StreamTriad => Ok(Box::new(StreamTriad::new(personality))),
            WorkloadSpec::Kernel { name, working_set_bytes, passes } => {
                kernel_by_name(name, *working_set_bytes, *passes).ok_or_else(|| {
                    likwid::LikwidError::Usage(format!(
                        "unknown kernel '{name}' (see likwid-bench -a)"
                    ))
                })
            }
            WorkloadSpec::Jacobi { variant, size, time_steps } => Ok(Box::new(JacobiWorkload {
                variant: *variant,
                size: *size,
                time_steps: *time_steps,
            })),
        }
    }
}

/// The placement axis: how a point's threads are pinned. Resolved against
/// the point's topology and thread count when the point is built.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementAxis {
    /// No pinning: the simulated scheduler decides.
    Unpinned,
    /// `likwid-pin` round robin across sockets, physical cores first (the
    /// paper's pinned runs).
    Scatter,
    /// The Intel OpenMP runtime's `KMP_AFFINITY=scatter`.
    KmpScatter,
    /// An explicit pin list, truncated to the point's thread count.
    Pin(Vec<usize>),
}

impl PlacementAxis {
    /// Short canonical form (`unpinned`, `scatter`, `kmp-scatter`,
    /// `pin:0.1.2`).
    pub fn canonical(&self) -> String {
        match self {
            PlacementAxis::Unpinned => "unpinned".to_string(),
            PlacementAxis::Scatter => "scatter".to_string(),
            PlacementAxis::KmpScatter => "kmp-scatter".to_string(),
            PlacementAxis::Pin(list) => {
                let cpus: Vec<String> = list.iter().map(|c| c.to_string()).collect();
                format!("pin:{}", cpus.join("."))
            }
        }
    }

    /// Whether the axis value pins its threads.
    pub fn pinned(&self) -> bool {
        !matches!(self, PlacementAxis::Unpinned)
    }

    /// Resolve into the harness-level placement policy for one point.
    pub fn resolve(&self, preset: MachinePreset, threads: usize) -> PlacementPolicy {
        match self {
            PlacementAxis::Unpinned => PlacementPolicy::Unpinned,
            PlacementAxis::Scatter => {
                PlacementPolicy::LikwidPin(scatter_placement(&preset.topology(), threads))
            }
            PlacementAxis::KmpScatter => PlacementPolicy::Kmp(KmpAffinity::Scatter),
            PlacementAxis::Pin(list) => PlacementPolicy::LikwidPin(list.clone()),
        }
    }
}

/// The prefetcher axis: all four hardware prefetchers enabled (the reset
/// state) or all disabled through their `IA32_MISC_ENABLE` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetcherState {
    /// Reset state, everything on.
    Enabled,
    /// All four prefetchers off (a no-op on AMD presets, which have no
    /// switchable prefetcher bits in this model).
    Disabled,
}

impl PrefetcherState {
    /// Short canonical form (`pf-on` / `pf-off`).
    pub fn canonical(self) -> &'static str {
        match self {
            PrefetcherState::Enabled => "pf-on",
            PrefetcherState::Disabled => "pf-off",
        }
    }
}

/// The thread-count axis.
#[derive(Debug, Clone, PartialEq)]
pub enum ThreadsAxis {
    /// Explicit counts; values exceeding a preset's hardware threads are
    /// skipped for that preset.
    Counts(Vec<usize>),
    /// `1..=num_hw_threads` of each preset (the STREAM figure sweeps).
    AllHwThreads,
}

impl ThreadsAxis {
    fn resolve(&self, preset: MachinePreset) -> Vec<usize> {
        let limit = preset.topology().num_hw_threads();
        match self {
            ThreadsAxis::Counts(counts) => {
                counts.iter().copied().filter(|&t| t >= 1 && t <= limit).collect()
            }
            ThreadsAxis::AllHwThreads => (1..=limit).collect(),
        }
    }
}

/// How a point's base RNG seed is derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedRule {
    /// The same seed for every point.
    Fixed(u64),
    /// `base ^ threads`, the convention of the paper's figure generators
    /// (each thread count samples an independent placement stream).
    XorThreads(u64),
}

impl SeedRule {
    fn seed_for(self, threads: usize) -> u64 {
        match self {
            SeedRule::Fixed(base) => base,
            SeedRule::XorThreads(base) => base ^ threads as u64,
        }
    }
}

/// A declarative per-axis filter, applied to each candidate point during
/// expansion.
#[derive(Debug, Clone, PartialEq)]
pub enum PointFilter {
    /// Drop points above a thread count.
    ThreadsAtMost(usize),
    /// Keep only pinned placements.
    PinnedOnly,
    /// Keep only points on these presets.
    Presets(Vec<MachinePreset>),
}

impl PointFilter {
    fn keeps(&self, point: &ExperimentPoint) -> bool {
        match self {
            PointFilter::ThreadsAtMost(limit) => point.threads <= *limit,
            PointFilter::PinnedOnly => point.placement.pinned(),
            PointFilter::Presets(presets) => presets.contains(&point.preset),
        }
    }
}

/// The declarative sweep: axes, shared sampling parameters, filters.
/// Empty `personalities`/`prefetchers` axes default to a single value
/// (Intel icc, prefetchers on) during expansion.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Workload axis.
    pub workloads: Vec<WorkloadSpec>,
    /// Machine preset axis.
    pub presets: Vec<MachinePreset>,
    /// Compiler personality axis (empty = Intel icc).
    pub personalities: Vec<CompilerPersonality>,
    /// Placement axis.
    pub placements: Vec<PlacementAxis>,
    /// Prefetcher state axis (empty = enabled).
    pub prefetchers: Vec<PrefetcherState>,
    /// Thread count axis.
    pub threads: ThreadsAxis,
    /// Samples per point.
    pub samples: usize,
    /// Seed derivation rule.
    pub seed: SeedRule,
    /// Optional counter measurement, as a `likwid-perfctr -g` spelling
    /// (validated against each preset's event table during expansion).
    pub counters: Option<String>,
    /// Optional timeline interval (virtual seconds); required for daemon
    /// routing.
    pub timeline: Option<f64>,
    /// Optional fault plan armed on every point's machine (robustness
    /// sweeps; injected points are never memoized).
    pub inject: Option<String>,
    /// Per-axis filters, all of which a point must pass.
    pub filters: Vec<PointFilter>,
}

impl SweepSpec {
    /// A minimal single-axis sweep over thread counts of one preset —
    /// every other axis starts as a one-value default to be overridden.
    pub fn new(workload: WorkloadSpec, preset: MachinePreset) -> Self {
        SweepSpec {
            workloads: vec![workload],
            presets: vec![preset],
            personalities: Vec::new(),
            placements: vec![PlacementAxis::Scatter],
            prefetchers: Vec::new(),
            threads: ThreadsAxis::AllHwThreads,
            samples: 1,
            seed: SeedRule::Fixed(0),
            counters: None,
            timeline: None,
            inject: None,
            filters: Vec::new(),
        }
    }

    /// Expand into experiment points: cartesian product over the axes in a
    /// fixed order (workload, preset, personality, placement, prefetchers,
    /// threads innermost), filters applied. Validates the counter spec and
    /// fault plan up front, so a malformed sweep fails before any point
    /// runs.
    pub fn expand(&self) -> likwid::Result<Vec<ExperimentPoint>> {
        if self.workloads.is_empty() || self.presets.is_empty() || self.placements.is_empty() {
            return Err(likwid::LikwidError::Usage(
                "a sweep needs at least one workload, preset and placement".into(),
            ));
        }
        if let Some(plan) = &self.inject {
            FaultPlan::parse(plan).map_err(likwid::LikwidError::Usage)?;
        }
        if let Some(arg) = &self.counters {
            for &preset in &self.presets {
                let table = likwid_perf_events::tables::for_arch(preset.arch());
                parse_measurement_spec(arg, &table)?;
            }
        }
        let personalities: &[CompilerPersonality] = if self.personalities.is_empty() {
            &[CompilerPersonality::IntelIcc]
        } else {
            &self.personalities
        };
        let prefetchers: &[PrefetcherState] = if self.prefetchers.is_empty() {
            &[PrefetcherState::Enabled]
        } else {
            &self.prefetchers
        };

        let mut points = Vec::new();
        for workload in &self.workloads {
            for &preset in &self.presets {
                for &personality in personalities {
                    for placement in &self.placements {
                        for &prefetcher in prefetchers {
                            for threads in self.threads.resolve(preset) {
                                let point = ExperimentPoint {
                                    workload: workload.clone(),
                                    preset,
                                    personality,
                                    placement: placement.clone(),
                                    prefetchers: prefetcher,
                                    threads,
                                    samples: self.samples.max(1),
                                    seed: self.seed.seed_for(threads),
                                    counters: self.counters.clone(),
                                    timeline: self.timeline,
                                    inject: self.inject.clone(),
                                };
                                if self.filters.iter().all(|f| f.keeps(&point)) {
                                    points.push(point);
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(points)
    }
}

/// One fully resolved cell of the experiment matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentPoint {
    /// What runs.
    pub workload: WorkloadSpec,
    /// On which machine.
    pub preset: MachinePreset,
    /// Under which compiler personality.
    pub personality: CompilerPersonality,
    /// With which placement.
    pub placement: PlacementAxis,
    /// With which prefetcher state.
    pub prefetchers: PrefetcherState,
    /// With how many threads.
    pub threads: usize,
    /// Samples per point.
    pub samples: usize,
    /// Base RNG seed (already derived through the sweep's [`SeedRule`]).
    pub seed: u64,
    /// Optional counter spec (`likwid-perfctr -g` spelling).
    pub counters: Option<String>,
    /// Optional timeline interval.
    pub timeline: Option<f64>,
    /// Optional fault plan spec.
    pub inject: Option<String>,
}

impl ExperimentPoint {
    /// The human-readable point key used in reports and trajectory files:
    /// `workload|preset|personality|placement|prefetchers|t=N`. Unique
    /// within one sweep (the remaining fields are sweep-constant).
    pub fn key(&self) -> String {
        format!(
            "{}|{}|{:?}|{}|{}|t={}",
            self.workload.canonical(),
            self.preset.id(),
            self.personality,
            self.placement.canonical(),
            self.prefetchers.canonical(),
            self.threads
        )
    }

    /// Build the ready-to-run experiment and workload instance.
    pub fn build(&self) -> likwid::Result<(Experiment, Box<dyn Workload>)> {
        let policy = self.placement.resolve(self.preset, self.threads);
        let mut exp = Experiment::on(self.preset)
            .personality(self.personality)
            .placement(policy)
            .threads(self.threads)
            .samples(self.samples)
            .seed(self.seed);
        if self.prefetchers == PrefetcherState::Disabled {
            exp = exp.prefetchers_off(Prefetcher::all());
        }
        if let Some(arg) = &self.counters {
            let table = likwid_perf_events::tables::for_arch(self.preset.arch());
            exp = exp.counters(parse_measurement_spec(arg, &table)?);
        }
        if let Some(interval_s) = self.timeline {
            exp = exp.timeline(interval_s);
        }
        if let Some(plan) = &self.inject {
            exp = exp.inject(FaultPlan::parse(plan).map_err(likwid::LikwidError::Usage)?);
        }
        let workload = self.workload.instantiate(self.personality)?;
        Ok((exp, workload))
    }

    /// The canonical serialized point spec: a `fleet/v1` header naming the
    /// workload, wrapping the experiment harness's own canonical spec (so
    /// every harness field — resolved pin list included — feeds the memo
    /// key exactly once). Fails only when the point cannot be built.
    pub fn canonical(&self) -> likwid::Result<String> {
        let (exp, _) = self.build()?;
        Ok(format!("fleet/v1;workload={};{}", self.workload.canonical(), exp.canonical_spec()))
    }

    /// Content address of the point: 128 bits from two FNV-1a/splitmix64
    /// passes over the canonical spec with distinct offset bases, as 32
    /// hex digits.
    pub fn digest_hex(&self) -> likwid::Result<String> {
        let canonical = self.canonical()?;
        let lo = digest64(canonical.as_bytes(), 0xCBF2_9CE4_8422_2325);
        let hi = digest64(canonical.as_bytes(), 0x84222325_CBF29CE4);
        Ok(format!("{hi:016x}{lo:016x}"))
    }
}

/// FNV-1a with a splitmix64 finalizer, parameterized by offset basis.
fn digest64(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep() -> SweepSpec {
        let mut spec = SweepSpec::new(
            WorkloadSpec::Kernel { name: "triad".into(), working_set_bytes: 1 << 20, passes: 1 },
            MachinePreset::Core2Quad,
        );
        spec.threads = ThreadsAxis::Counts(vec![1, 2, 4]);
        spec.samples = 2;
        spec.seed = SeedRule::XorThreads(9);
        spec
    }

    #[test]
    fn expansion_is_a_filtered_cartesian_product() {
        let mut spec = small_sweep();
        spec.placements = vec![PlacementAxis::Scatter, PlacementAxis::Unpinned];
        spec.prefetchers = vec![PrefetcherState::Enabled, PrefetcherState::Disabled];
        let points = spec.expand().unwrap();
        assert_eq!(points.len(), 2 * 2 * 3);
        spec.filters = vec![PointFilter::PinnedOnly, PointFilter::ThreadsAtMost(2)];
        let filtered = spec.expand().unwrap();
        assert_eq!(filtered.len(), 1 * 2 * 2);
        assert!(filtered.iter().all(|p| p.placement == PlacementAxis::Scatter && p.threads <= 2));
    }

    #[test]
    fn thread_axis_clamps_to_the_preset() {
        let mut spec = small_sweep();
        spec.threads = ThreadsAxis::Counts(vec![1, 4, 64]);
        let points = spec.expand().unwrap();
        assert_eq!(points.iter().map(|p| p.threads).collect::<Vec<_>>(), vec![1, 4]);
        spec.threads = ThreadsAxis::AllHwThreads;
        assert_eq!(spec.expand().unwrap().len(), 4, "core2-quad has 4 hardware threads");
    }

    #[test]
    fn seed_rule_matches_the_figure_convention() {
        let points = small_sweep().expand().unwrap();
        assert_eq!(points.iter().map(|p| p.seed).collect::<Vec<_>>(), vec![9 ^ 1, 9 ^ 2, 9 ^ 4]);
    }

    #[test]
    fn keys_are_unique_within_a_sweep() {
        let mut spec = small_sweep();
        spec.placements = vec![PlacementAxis::Scatter, PlacementAxis::KmpScatter];
        spec.prefetchers = vec![PrefetcherState::Enabled, PrefetcherState::Disabled];
        let points = spec.expand().unwrap();
        let keys: std::collections::HashSet<String> = points.iter().map(|p| p.key()).collect();
        assert_eq!(keys.len(), points.len());
    }

    #[test]
    fn digests_separate_points_and_are_stable() {
        let points = small_sweep().expand().unwrap();
        let digests: Vec<String> = points.iter().map(|p| p.digest_hex().unwrap()).collect();
        let distinct: std::collections::HashSet<&String> = digests.iter().collect();
        assert_eq!(distinct.len(), digests.len());
        assert!(digests.iter().all(|d| d.len() == 32));
        // Recomputing never changes the address.
        assert_eq!(points[0].digest_hex().unwrap(), digests[0]);
    }

    #[test]
    fn bad_specs_fail_expansion_up_front() {
        let mut spec = small_sweep();
        spec.counters = Some("NOT_A_GROUP".into());
        assert!(spec.expand().is_err());
        let mut spec = small_sweep();
        spec.inject = Some("bogus=1".into());
        assert!(spec.expand().is_err());
        let mut spec = small_sweep();
        spec.workloads.clear();
        assert!(spec.expand().is_err());
    }
}

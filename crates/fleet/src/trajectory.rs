//! The machine-readable sweep trajectory and the perf-regression compare.
//!
//! A trajectory file (`BENCH_fleet.json` by convention) is the flat,
//! key-sorted summary of one sweep — per point: status, sample count, and
//! the bandwidth five-number summary. Two trajectories compare point by
//! point with a *relative-spread-aware* threshold: a point only counts as
//! regressed when its median moved by more than
//! `max(min_rel, spread_factor × max(old_spread, new_spread))` — noisy
//! points (unpinned runs have large interquartile ranges by design) earn
//! proportionally wider tolerance bands.

use likwid::report::{Body, KvEntry, Report, Row, Section, Table, Value};
use likwid_daemon::jsonv::JsonValue;
use likwid_workloads::BoxStats;

use crate::memo::CODE_EPOCH;
use crate::sched::SweepOutcome;

/// One point of a trajectory file.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryPoint {
    /// The point key ([`crate::ExperimentPoint::key`]).
    pub key: String,
    /// `ok` or a [`crate::PointError::status`] tag.
    pub status: String,
    /// Bandwidth samples behind the summary.
    pub samples: usize,
    /// Median bandwidth in MB/s (`None` for errored points).
    pub median: Option<f64>,
    /// Smallest sample.
    pub min: Option<f64>,
    /// Largest sample.
    pub max: Option<f64>,
    /// Relative spread (IQR / median).
    pub spread: Option<f64>,
}

/// A whole trajectory: the persisted, comparable shape of one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// The producing code epoch ([`CODE_EPOCH`] at write time).
    pub epoch: String,
    /// Bandwidth unit (always `MB/s`).
    pub unit: String,
    /// The points, sorted by key.
    pub points: Vec<TrajectoryPoint>,
}

impl Trajectory {
    /// Distil a completed sweep. Points sort by key, so the file is
    /// byte-stable whatever the axis order of the producing spec.
    pub fn from_outcome(outcome: &SweepOutcome) -> Trajectory {
        let mut points: Vec<TrajectoryPoint> = outcome
            .points
            .iter()
            .map(|(point, result)| match result {
                Ok(r) => {
                    let stats = BoxStats::from_samples(&r.bandwidths);
                    TrajectoryPoint {
                        key: point.key(),
                        status: "ok".to_string(),
                        samples: r.bandwidths.len(),
                        median: stats.map(|s| s.median),
                        min: stats.map(|s| s.min),
                        max: stats.map(|s| s.max),
                        spread: stats.and_then(|s| s.relative_spread()),
                    }
                }
                Err(e) => TrajectoryPoint {
                    key: point.key(),
                    status: e.status().to_string(),
                    samples: 0,
                    median: None,
                    min: None,
                    max: None,
                    spread: None,
                },
            })
            .collect();
        points.sort_by(|a, b| a.key.cmp(&b.key));
        Trajectory { epoch: CODE_EPOCH.to_string(), unit: "MB/s".to_string(), points }
    }

    /// The point with a key, if present.
    pub fn point(&self, key: &str) -> Option<&TrajectoryPoint> {
        self.points.iter().find(|p| p.key == key)
    }

    /// Serialize to the `BENCH_fleet.json` document (with a trailing
    /// newline).
    pub fn encode(&self) -> String {
        let points = self
            .points
            .iter()
            .map(|p| {
                let mut members = vec![
                    ("key".to_string(), JsonValue::Str(p.key.clone())),
                    ("status".to_string(), JsonValue::Str(p.status.clone())),
                    ("samples".to_string(), JsonValue::UInt(p.samples as u64)),
                ];
                for (name, value) in
                    [("median", p.median), ("min", p.min), ("max", p.max), ("spread", p.spread)]
                {
                    if let Some(v) = value {
                        members.push((name.to_string(), JsonValue::real(v)));
                    }
                }
                JsonValue::Obj(members)
            })
            .collect();
        let doc = JsonValue::Obj(vec![
            ("bench".to_string(), JsonValue::Str("fleet".to_string())),
            ("version".to_string(), JsonValue::UInt(1)),
            ("epoch".to_string(), JsonValue::Str(self.epoch.clone())),
            ("unit".to_string(), JsonValue::Str(self.unit.clone())),
            ("points".to_string(), JsonValue::Arr(points)),
        ]);
        doc.encode() + "\n"
    }

    /// Parse a trajectory document.
    pub fn parse(text: &str) -> Result<Trajectory, String> {
        let doc = JsonValue::parse(text)?;
        if doc.get("bench").and_then(JsonValue::as_str) != Some("fleet") {
            return Err("not a fleet trajectory (bench != \"fleet\")".to_string());
        }
        if doc.get("version").and_then(JsonValue::as_u64) != Some(1) {
            return Err("unsupported fleet trajectory version".to_string());
        }
        let epoch =
            doc.get("epoch").and_then(JsonValue::as_str).ok_or("missing epoch")?.to_string();
        let unit = doc.get("unit").and_then(JsonValue::as_str).ok_or("missing unit")?.to_string();
        let mut points = Vec::new();
        for entry in doc.get("points").and_then(JsonValue::as_arr).ok_or("missing points")? {
            let key = entry
                .get("key")
                .and_then(JsonValue::as_str)
                .ok_or("point without key")?
                .to_string();
            let status = entry
                .get("status")
                .and_then(JsonValue::as_str)
                .ok_or("point without status")?
                .to_string();
            let samples =
                entry.get("samples").and_then(JsonValue::as_u64).ok_or("point without samples")?;
            points.push(TrajectoryPoint {
                key,
                status,
                samples: samples as usize,
                median: entry.get("median").and_then(JsonValue::as_f64),
                min: entry.get("min").and_then(JsonValue::as_f64),
                max: entry.get("max").and_then(JsonValue::as_f64),
                spread: entry.get("spread").and_then(JsonValue::as_f64),
            });
        }
        Ok(Trajectory { epoch, unit, points })
    }
}

/// The compare thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareConfig {
    /// Minimum relative change to flag, however tight the samples.
    pub min_rel: f64,
    /// Widen the band to this multiple of the larger relative spread.
    pub spread_factor: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig { min_rel: 0.05, spread_factor: 2.0 }
    }
}

/// One point whose median moved beyond its tolerance band.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// The point key.
    pub key: String,
    /// Baseline median MB/s.
    pub old_median: f64,
    /// Current median MB/s.
    pub new_median: f64,
    /// Relative change (`new/old - 1`; negative = slower).
    pub change_rel: f64,
    /// The tolerance band the change exceeded.
    pub threshold: f64,
}

/// The verdict of comparing a current trajectory against a baseline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompareOutcome {
    /// Points slower than the baseline beyond their band.
    pub regressions: Vec<Delta>,
    /// Points faster beyond their band.
    pub improvements: Vec<Delta>,
    /// Points within their band.
    pub unchanged: usize,
    /// Points that were `ok` in the baseline and are errored now — always
    /// a regression, whatever the numbers.
    pub broken: Vec<String>,
    /// Baseline keys absent from the current trajectory.
    pub missing: Vec<String>,
    /// Current keys absent from the baseline (informational).
    pub added: Vec<String>,
}

impl CompareOutcome {
    /// Whether the compare should fail (nonzero exit): any regression,
    /// newly broken point, or vanished baseline point.
    pub fn regressed(&self) -> bool {
        !self.regressions.is_empty() || !self.broken.is_empty() || !self.missing.is_empty()
    }
}

/// Compare a current trajectory against a baseline, point by point.
pub fn compare(baseline: &Trajectory, current: &Trajectory, cfg: &CompareConfig) -> CompareOutcome {
    let mut out = CompareOutcome::default();
    for old in &baseline.points {
        let Some(new) = current.point(&old.key) else {
            out.missing.push(old.key.clone());
            continue;
        };
        match (old.median, new.median) {
            (Some(old_median), Some(new_median)) => {
                let spread = old.spread.unwrap_or(0.0).max(new.spread.unwrap_or(0.0));
                let threshold = cfg.min_rel.max(cfg.spread_factor * spread);
                let change_rel =
                    if old_median == 0.0 { 0.0 } else { new_median / old_median - 1.0 };
                let delta =
                    Delta { key: old.key.clone(), old_median, new_median, change_rel, threshold };
                if change_rel < -threshold {
                    out.regressions.push(delta);
                } else if change_rel > threshold {
                    out.improvements.push(delta);
                } else {
                    out.unchanged += 1;
                }
            }
            (Some(_), None) => out.broken.push(old.key.clone()),
            // Errored baseline points carry no number to regress from;
            // a newly-ok point is just unchanged-or-better.
            (None, _) => out.unchanged += 1,
        }
    }
    for new in &current.points {
        if baseline.point(&new.key).is_none() {
            out.added.push(new.key.clone());
        }
    }
    out
}

fn delta_rows(table: &mut Table, deltas: &[Delta]) {
    for d in deltas {
        table.push(Row::new(vec![
            Value::Str(d.key.clone()),
            Value::Real(d.old_median),
            Value::Real(d.new_median),
            Value::Real(d.change_rel * 100.0),
            Value::Real(d.threshold * 100.0),
        ]));
    }
}

/// Render a compare verdict as a report.
pub fn compare_report(outcome: &CompareOutcome) -> Report {
    let mut report = Report::new("likwid-fleet compare");
    let entries = vec![
        KvEntry::new("regressions", Value::Count(outcome.regressions.len() as u64)),
        KvEntry::new("improvements", Value::Count(outcome.improvements.len() as u64)),
        KvEntry::new("unchanged", Value::Count(outcome.unchanged as u64)),
        KvEntry::new("broken", Value::Count(outcome.broken.len() as u64)),
        KvEntry::new("missing", Value::Count(outcome.missing.len() as u64)),
        KvEntry::new("added", Value::Count(outcome.added.len() as u64)),
        KvEntry::new(
            "verdict",
            Value::Str(if outcome.regressed() { "REGRESSED".into() } else { "ok".into() }),
        ),
    ];
    report.push(
        Section::new("compare", Body::KeyValues(entries))
            .with_boxed_heading("Fleet trajectory compare")
            .with_rule_after(),
    );
    for (id, heading, deltas) in [
        ("regressions", "Regressions", &outcome.regressions),
        ("improvements", "Improvements", &outcome.improvements),
    ] {
        if deltas.is_empty() {
            continue;
        }
        let mut table =
            Table::bordered(vec!["point", "baseline MB/s", "current MB/s", "change %", "band %"]);
        delta_rows(&mut table, deltas);
        report.push(Section::new(id, Body::Table(table)).with_heading(heading));
    }
    for (id, heading, keys) in
        [("broken", "Newly broken", &outcome.broken), ("missing", "Missing", &outcome.missing)]
    {
        if keys.is_empty() {
            continue;
        }
        let mut table = Table::bordered(vec!["point"]);
        for key in keys {
            table.push(Row::new(vec![Value::Str(key.clone())]));
        }
        report.push(Section::new(id, Body::Table(table)).with_heading(heading));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{run_sweep, RunOptions};
    use crate::spec::{SeedRule, SweepSpec, ThreadsAxis, WorkloadSpec};
    use likwid_x86_machine::MachinePreset;

    fn point(key: &str, median: f64, spread: f64) -> TrajectoryPoint {
        TrajectoryPoint {
            key: key.to_string(),
            status: "ok".to_string(),
            samples: 5,
            median: Some(median),
            min: Some(median * 0.9),
            max: Some(median * 1.1),
            spread: Some(spread),
        }
    }

    fn trajectory(points: Vec<TrajectoryPoint>) -> Trajectory {
        Trajectory { epoch: CODE_EPOCH.to_string(), unit: "MB/s".to_string(), points }
    }

    #[test]
    fn encode_parse_round_trips() {
        let mut spec = SweepSpec::new(
            WorkloadSpec::Kernel { name: "scale".into(), working_set_bytes: 1 << 20, passes: 1 },
            MachinePreset::Core2Quad,
        );
        spec.threads = ThreadsAxis::Counts(vec![1, 2]);
        spec.samples = 3;
        spec.seed = SeedRule::Fixed(5);
        let outcome = run_sweep(&spec, &RunOptions::default()).unwrap();
        let t = Trajectory::from_outcome(&outcome);
        assert!(t.points.windows(2).all(|w| w[0].key < w[1].key), "key-sorted");
        let back = Trajectory::parse(&t.encode()).unwrap();
        assert_eq!(back, t, "trajectory files parse back losslessly");
    }

    #[test]
    fn a_slowed_point_regresses_but_noise_is_tolerated() {
        let cfg = CompareConfig::default();
        let base = trajectory(vec![point("a|t=1", 1000.0, 0.0), point("b|t=1", 1000.0, 0.10)]);
        // a: tight point, 10% slower -> beyond the 5% floor -> regression.
        // b: noisy point (spread 0.10 -> band 20%), 10% slower -> tolerated.
        let cur = trajectory(vec![point("a|t=1", 900.0, 0.0), point("b|t=1", 900.0, 0.10)]);
        let out = compare(&base, &cur, &cfg);
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].key, "a|t=1");
        assert_eq!(out.unchanged, 1);
        assert!(out.regressed());
    }

    #[test]
    fn improvements_breakage_and_membership_changes_are_classified() {
        let cfg = CompareConfig::default();
        let mut broken = point("c|t=1", 1000.0, 0.0);
        let base =
            trajectory(vec![point("a|t=1", 1000.0, 0.0), broken.clone(), point("d|t=1", 1.0, 0.0)]);
        broken.status = "degraded".to_string();
        broken.median = None;
        broken.min = None;
        broken.max = None;
        broken.spread = None;
        broken.samples = 0;
        let cur = trajectory(vec![point("a|t=1", 1200.0, 0.0), broken, point("e|t=1", 50.0, 0.0)]);
        let out = compare(&base, &cur, &cfg);
        assert_eq!(out.improvements.len(), 1, "a sped up 20%");
        assert_eq!(out.broken, vec!["c|t=1"]);
        assert_eq!(out.missing, vec!["d|t=1"]);
        assert_eq!(out.added, vec!["e|t=1"]);
        assert!(out.regressed(), "breakage and loss fail the compare");
        let report = compare_report(&out);
        assert_eq!(report.value("compare", "verdict").unwrap().as_str(), Some("REGRESSED"));
        assert!(report.table("broken").is_some());
    }

    #[test]
    fn identical_trajectories_pass() {
        let t = trajectory(vec![point("a|t=1", 1000.0, 0.02)]);
        let out = compare(&t, &t, &CompareConfig::default());
        assert!(!out.regressed());
        assert_eq!(out.unchanged, 1);
        let report = compare_report(&out);
        assert_eq!(report.value("compare", "verdict").unwrap().as_str(), Some("ok"));
    }
}

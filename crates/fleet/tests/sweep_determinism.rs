//! Sweep determinism properties.
//!
//! The fleet's contract is that *how* a sweep executes is invisible in
//! what it produces: worker count, steal order and memo warmth may change
//! wall-clock time and the stderr statistics, but the rendered report and
//! the trajectory file must come out byte-identical. A second suite pins
//! the isolation contract — a fault plan that kills a CPU degrades the
//! affected points, never the sweep.

use proptest::prelude::*;

use likwid::report::{Json, Render};
use likwid_fleet::{
    execute, fleet_report, run_sweep, MemoStore, PlacementAxis, RunOptions, SeedRule, SweepSpec,
    ThreadsAxis, Trajectory, WorkloadSpec,
};
use likwid_x86_machine::MachinePreset;

const KERNELS: [&str; 3] = ["copy", "scale", "triad"];
const PRESETS: [MachinePreset; 2] = [MachinePreset::Core2Quad, MachinePreset::Atom];
const PLACEMENTS: [&[PlacementAxis]; 3] = [
    &[PlacementAxis::Scatter],
    &[PlacementAxis::Unpinned],
    &[PlacementAxis::Scatter, PlacementAxis::Unpinned],
];

fn sweep(kernel: usize, preset: usize, placements: usize, samples: usize, seed: u64) -> SweepSpec {
    let mut spec = SweepSpec::new(
        WorkloadSpec::Kernel {
            name: KERNELS[kernel].to_string(),
            working_set_bytes: 1 << 20,
            passes: 1,
        },
        PRESETS[preset],
    );
    spec.placements = PLACEMENTS[placements].to_vec();
    spec.threads = ThreadsAxis::Counts(vec![1, 2]);
    spec.samples = samples;
    spec.seed = SeedRule::XorThreads(seed);
    spec
}

fn tempstore(tag: u64) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("likwid-fleet-prop-{tag:016x}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Worker count and a half-warm memo cache change neither the rendered
    /// report nor the trajectory point set, byte for byte.
    #[test]
    fn reports_are_invariant_under_workers_and_memo_warmth(
        kernel in 0usize..KERNELS.len(),
        preset in 0usize..PRESETS.len(),
        placements in 0usize..PLACEMENTS.len(),
        samples in 1usize..3,
        seed in 0u64..1000,
    ) {
        let spec = sweep(kernel, preset, placements, samples, seed);

        // Reference: cold, single worker, no memo.
        let cold = run_sweep(&spec, &RunOptions { workers: 1, ..Default::default() }).unwrap();
        let cold_report = Json.render(&fleet_report(&spec, &cold));
        let cold_trajectory = Trajectory::from_outcome(&cold).encode();

        let points = spec.expand().unwrap();
        for workers in [1usize, 2, 8] {
            // Pre-warm every other point of a fresh store (a 50%-warm cache).
            let dir = tempstore(
                seed ^ ((kernel as u64) << 32) ^ ((placements as u64) << 16) ^ workers as u64,
            );
            let store = MemoStore::open(&dir, None);
            let warmed = points.iter().step_by(2).count();
            for point in points.iter().step_by(2) {
                let result = execute(point, &[]).expect("clean point");
                store.store(point, &result).unwrap();
            }

            let warm = run_sweep(
                &spec,
                &RunOptions { workers, memo: Some(&store), ..Default::default() },
            )
            .unwrap();
            prop_assert_eq!(warm.stats.memo_hits, warmed, "workers={}", workers);
            prop_assert_eq!(warm.stats.executed, points.len() - warmed, "workers={}", workers);
            prop_assert_eq!(
                &Json.render(&fleet_report(&spec, &warm)),
                &cold_report,
                "report must be byte-identical (workers={})",
                workers
            );
            prop_assert_eq!(
                &Trajectory::from_outcome(&warm).encode(),
                &cold_trajectory,
                "trajectory must be byte-identical (workers={})",
                workers
            );

            // The warm run completed the store: everything now replays.
            let replay = run_sweep(
                &spec,
                &RunOptions { workers, memo: Some(&store), ..Default::default() },
            )
            .unwrap();
            prop_assert_eq!(replay.stats.executed, 0, "complete store executes nothing");
            prop_assert_eq!(replay.stats.memo_hits, points.len());
            prop_assert_eq!(&Json.render(&fleet_report(&spec, &replay)), &cold_report);

            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// A fault plan that kills a CPU mid-measurement poisons the points that
/// touch it — typed `PointError::Degraded` rows — while the sweep itself
/// completes and clean points stay clean.
#[test]
fn a_dead_cpu_degrades_points_but_the_sweep_completes() {
    let mut spec = sweep(0, 0, 0, 2, 17);
    spec.threads = ThreadsAxis::Counts(vec![1, 2, 4]);
    spec.counters = Some("FLOPS_DP".into());
    spec.inject = Some("dead=3@5".into());
    let outcome = run_sweep(&spec, &RunOptions::default()).unwrap();
    assert_eq!(outcome.stats.total, 3, "every point ran to an outcome");
    assert!(outcome.stats.errors >= 1, "the 4-thread point touches the dead cpu");
    for (point, result) in &outcome.points {
        match result {
            Ok(r) => assert!(!r.bandwidths.is_empty(), "{} reported samples", point.key()),
            Err(e) => assert_eq!(e.status(), "degraded", "{}: {e:?}", point.key()),
        }
    }
    // The trajectory records the degradation instead of dropping the point.
    let trajectory = Trajectory::from_outcome(&outcome);
    assert_eq!(trajectory.points.len(), 3);
    assert!(trajectory.points.iter().any(|p| p.status == "degraded"));
}

/// Fault-injected points are never memoized: a second run with the same
/// store re-executes them.
#[test]
fn injected_points_bypass_the_memo_store() {
    let mut spec = sweep(1, 0, 0, 1, 3);
    spec.threads = ThreadsAxis::Counts(vec![1]);
    spec.inject = Some("seed=7,read=0.0x0".into());
    let dir = tempstore(0xFA11);
    let store = MemoStore::open(&dir, None);
    for _ in 0..2 {
        let outcome =
            run_sweep(&spec, &RunOptions { workers: 1, memo: Some(&store), ..Default::default() })
                .unwrap();
        assert_eq!(outcome.stats.executed, 1, "injected points always re-execute");
        assert_eq!(outcome.stats.memo_hits, 0);
    }
    assert!(store.entries().is_empty(), "nothing was memoized");
    let _ = std::fs::remove_dir_all(&dir);
}

//! A minimal PAPI-style library baseline.
//!
//! Section III of the paper compares LIKWID against PAPI. PAPI's model is a
//! *library-first* one: the application links against it, creates event
//! sets, maps preset events (`PAPI_DP_OPS`, `PAPI_TOT_CYC`, …) onto native
//! events, and starts/stops/reads the set around the code of interest. To
//! make the Table I comparison concrete — and to measure the API-overhead
//! difference the paper alludes to — this crate implements that model over
//! the same MSR/counter substrate the LIKWID tools use.
//!
//! The implementation intentionally mirrors PAPI's C API shape
//! (`PAPI_library_init`, `PAPI_create_eventset`, `PAPI_add_event`,
//! `PAPI_start`/`PAPI_stop`/`PAPI_read`) so the comparison bench can run
//! the same measurement through both interfaces.

use std::collections::HashMap;

use likwid_perf_events::{tables, CounterSlot, EventDefinition, EventTable, PerfMon};
use likwid_x86_machine::SimMachine;

/// PAPI-style preset events, mapped per architecture onto native events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(non_camel_case_types)]
pub enum PapiPreset {
    /// Total instructions executed.
    PAPI_TOT_INS,
    /// Total cycles.
    PAPI_TOT_CYC,
    /// Double precision vector/SIMD operations.
    PAPI_DP_OPS,
    /// Single precision vector/SIMD operations.
    PAPI_SP_OPS,
    /// Level 1 data cache misses.
    PAPI_L1_DCM,
    /// Level 2 cache misses.
    PAPI_L2_TCM,
    /// Conditional branch instructions mispredicted.
    PAPI_BR_MSP,
    /// Data TLB misses.
    PAPI_TLB_DM,
}

impl PapiPreset {
    /// All presets.
    pub fn all() -> &'static [PapiPreset] {
        &[
            PapiPreset::PAPI_TOT_INS,
            PapiPreset::PAPI_TOT_CYC,
            PapiPreset::PAPI_DP_OPS,
            PapiPreset::PAPI_SP_OPS,
            PapiPreset::PAPI_L1_DCM,
            PapiPreset::PAPI_L2_TCM,
            PapiPreset::PAPI_BR_MSP,
            PapiPreset::PAPI_TLB_DM,
        ]
    }

    /// The preset name as written in PAPI-instrumented code.
    pub fn name(self) -> &'static str {
        match self {
            PapiPreset::PAPI_TOT_INS => "PAPI_TOT_INS",
            PapiPreset::PAPI_TOT_CYC => "PAPI_TOT_CYC",
            PapiPreset::PAPI_DP_OPS => "PAPI_DP_OPS",
            PapiPreset::PAPI_SP_OPS => "PAPI_SP_OPS",
            PapiPreset::PAPI_L1_DCM => "PAPI_L1_DCM",
            PapiPreset::PAPI_L2_TCM => "PAPI_L2_TCM",
            PapiPreset::PAPI_BR_MSP => "PAPI_BR_MSP",
            PapiPreset::PAPI_TLB_DM => "PAPI_TLB_DM",
        }
    }

    /// Map the preset to a native event name on the given event table, the
    /// equivalent of PAPI's preset-to-native mapping layer.
    pub fn native_event<'t>(self, table: &'t EventTable) -> Option<&'t EventDefinition> {
        let candidates: &[&str] = match self {
            PapiPreset::PAPI_TOT_INS => &["INSTR_RETIRED_ANY", "RETIRED_INSTRUCTIONS"],
            PapiPreset::PAPI_TOT_CYC => {
                &["CPU_CLK_UNHALTED_CORE", "CPU_CLOCKS_UNHALTED", "CPU_CLK_UNHALTED"]
            }
            PapiPreset::PAPI_DP_OPS => &[
                "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE",
                "FP_COMP_OPS_EXE_SSE_FP_PACKED",
                "RETIRED_SSE_OPS_PACKED_DOUBLE",
                "SSE_PACKED_DOUBLE_OPS",
                "EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_DP",
            ],
            PapiPreset::PAPI_SP_OPS => &[
                "SIMD_COMP_INST_RETIRED_PACKED_SINGLE",
                "FP_COMP_OPS_EXE_SSE_SINGLE_PRECISION",
                "RETIRED_SSE_OPS_PACKED_SINGLE",
                "SSE_PACKED_SINGLE_OPS",
                "EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_SP",
            ],
            PapiPreset::PAPI_L1_DCM => &[
                "L1D_REPL",
                "L1D_CACHE_REPL",
                "DATA_CACHE_REFILLS_L2_OR_NORTHBRIDGE",
                "DATA_CACHE_REFILLS_L2_OR_SYSTEM",
                "DCU_LINES_IN",
            ],
            PapiPreset::PAPI_L2_TCM => &["L2_RQSTS_MISS", "L2_MISSES_ALL"],
            PapiPreset::PAPI_BR_MSP => &[
                "BR_INST_RETIRED_MISPRED",
                "BR_MISP_RETIRED_ALL_BRANCHES",
                "RETIRED_MISPREDICTED_BRANCH_INSTR",
                "BR_MISS_PRED_RETIRED",
            ],
            PapiPreset::PAPI_TLB_DM => &[
                "DTLB_MISSES_ANY",
                "DATA_TLB_MISSES_DTLB_MISS",
                "DTLB_L2_MISS_ALL",
                "DTLB_L2_MISS",
                "DTLB_MISS",
            ],
        };
        candidates.iter().find_map(|name| table.find(name))
    }
}

/// PAPI-style error codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PapiError {
    /// The library was not initialised.
    NotInitialized,
    /// The preset cannot be mapped onto this CPU's native events.
    NoEvent(String),
    /// The event set is full (no free counter).
    CounterConflict,
    /// Invalid event-set handle.
    BadHandle,
    /// Underlying counter access failed.
    Hardware(String),
    /// The event set is not (or already) running.
    BadState,
}

impl std::fmt::Display for PapiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PapiError::NotInitialized => write!(f, "PAPI library not initialised"),
            PapiError::NoEvent(e) => write!(f, "preset {e} has no native mapping on this CPU"),
            PapiError::CounterConflict => write!(f, "no free counter for this event"),
            PapiError::BadHandle => write!(f, "invalid event set handle"),
            PapiError::Hardware(e) => write!(f, "hardware access failed: {e}"),
            PapiError::BadState => write!(f, "event set is in the wrong state"),
        }
    }
}

impl std::error::Error for PapiError {}

/// An event set: a collection of presets scheduled onto counters of one cpu.
struct EventSet {
    cpu: usize,
    events: Vec<(PapiPreset, CounterSlot)>,
    running: bool,
}

/// The PAPI-like library handle.
///
/// One instance per machine; the `Papi` value owns the per-cpu counter
/// access (like the PAPI component layer owns its file descriptors).
pub struct Papi<'m> {
    machine: &'m SimMachine,
    table: EventTable,
    event_sets: Vec<EventSet>,
    monitors: HashMap<usize, PerfMon>,
}

impl<'m> Papi<'m> {
    /// `PAPI_library_init`.
    pub fn library_init(machine: &'m SimMachine) -> Self {
        Papi {
            machine,
            table: tables::for_arch(machine.arch()),
            event_sets: Vec::new(),
            monitors: HashMap::new(),
        }
    }

    /// `PAPI_create_eventset` bound to one cpu (PAPI binds via the calling
    /// thread's affinity; here the cpu is explicit).
    pub fn create_eventset(&mut self, cpu: usize) -> Result<usize, PapiError> {
        if !self.monitors.contains_key(&cpu) {
            let pm = PerfMon::new(self.machine, &[cpu])
                .map_err(|e| PapiError::Hardware(e.to_string()))?;
            self.monitors.insert(cpu, pm);
        }
        self.event_sets.push(EventSet { cpu, events: Vec::new(), running: false });
        Ok(self.event_sets.len() - 1)
    }

    /// `PAPI_add_event`: map the preset to a native event and schedule it on
    /// a free counter.
    pub fn add_event(&mut self, set: usize, preset: PapiPreset) -> Result<(), PapiError> {
        let table = self.table.clone();
        let event_set = self.event_sets.get_mut(set).ok_or(PapiError::BadHandle)?;
        if event_set.running {
            return Err(PapiError::BadState);
        }
        let native = preset
            .native_event(&table)
            .ok_or_else(|| PapiError::NoEvent(preset.name().to_string()))?;
        let used: Vec<CounterSlot> = event_set.events.iter().map(|(_, s)| *s).collect();
        let slot = table
            .allowed_slots(native)
            .into_iter()
            .find(|s| !used.contains(s))
            .ok_or(PapiError::CounterConflict)?;
        let pm = self.monitors.get(&event_set.cpu).ok_or(PapiError::BadHandle)?;
        pm.setup(event_set.cpu, slot, native).map_err(|e| PapiError::Hardware(e.to_string()))?;
        event_set.events.push((preset, slot));
        Ok(())
    }

    /// `PAPI_start`.
    pub fn start(&mut self, set: usize) -> Result<(), PapiError> {
        let event_set = self.event_sets.get_mut(set).ok_or(PapiError::BadHandle)?;
        if event_set.running {
            return Err(PapiError::BadState);
        }
        let pm = self.monitors.get(&event_set.cpu).ok_or(PapiError::BadHandle)?;
        pm.start(event_set.cpu).map_err(|e| PapiError::Hardware(e.to_string()))?;
        event_set.running = true;
        Ok(())
    }

    /// `PAPI_read`: current values in the order the events were added.
    pub fn read(&self, set: usize) -> Result<Vec<u64>, PapiError> {
        let event_set = self.event_sets.get(set).ok_or(PapiError::BadHandle)?;
        let pm = self.monitors.get(&event_set.cpu).ok_or(PapiError::BadHandle)?;
        event_set
            .events
            .iter()
            .map(|(_, slot)| {
                pm.read(event_set.cpu, *slot).map_err(|e| PapiError::Hardware(e.to_string()))
            })
            .collect()
    }

    /// `PAPI_stop`: stop counting and return the final values.
    pub fn stop(&mut self, set: usize) -> Result<Vec<u64>, PapiError> {
        let values = self.read(set)?;
        let event_set = self.event_sets.get_mut(set).ok_or(PapiError::BadHandle)?;
        if !event_set.running {
            return Err(PapiError::BadState);
        }
        let pm = self.monitors.get(&event_set.cpu).ok_or(PapiError::BadHandle)?;
        pm.stop(event_set.cpu).map_err(|e| PapiError::Hardware(e.to_string()))?;
        event_set.running = false;
        Ok(values)
    }

    /// The presets that can be mapped on this machine (PAPI's
    /// `papi_avail`-style listing).
    pub fn available_presets(&self) -> Vec<PapiPreset> {
        PapiPreset::all()
            .iter()
            .copied()
            .filter(|p| p.native_event(&self.table).is_some())
            .collect()
    }
}

/// The qualitative LIKWID-vs-PAPI comparison of Table I, as data.
///
/// Each row is `(aspect, likwid, papi)`; the bench binary renders it so the
/// reproduction has a regenerable artefact for Table I alongside the
/// measured API-overhead comparison.
pub fn table1_rows() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        (
            "Dependencies",
            "Needs system headers of a Linux 2.6 kernel; no other external dependencies",
            "Needs kernel patches depending on platform; none on Linux > 2.6.31",
        ),
        (
            "Installation",
            "make-based build; single 21-line build configuration file",
            "autoconf-based; several-hundred-line install documentation",
        ),
        (
            "Command line tools",
            "Core is a collection of standalone command line tools",
            "Utilities are not intended to be used standalone; third-party tools exist",
        ),
        (
            "User API support",
            "Simple marker API; events configured on the command line",
            "Comparatively high-level API; events must be configured in the code",
        ),
        (
            "Library support",
            "Usable as a library, but that was not the initial intent",
            "Mature, well tested library API for building tools",
        ),
        (
            "Topology information",
            "Thread and cache topology from cpuid, as text and ASCII art",
            "cpuid-based; no shared-cache groups, no processor-id mapping",
        ),
        (
            "Thread and process pinning",
            "Dedicated portable pinning tool (likwid-pin)",
            "No support for pinning",
        ),
        (
            "Multicore support",
            "Multiple cores measured simultaneously",
            "No explicit multicore support",
        ),
        (
            "Uncore support",
            "Uncore events handled via socket locks",
            "No explicit support for shared-resource counters",
        ),
        (
            "Event abstraction",
            "Preconfigured event groups with derived metrics",
            "PAPI preset events mapping to native events",
        ),
        (
            "Platform support",
            "x86 processors under Linux 2.6 only",
            "Wide range of architectures and operating systems",
        ),
        (
            "Correlated measurements",
            "Performance counters only",
            "PAPI-C components can correlate fan speeds, temperatures, …",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use likwid_perf_events::{EventEngine, EventSample, HwEventKind};
    use likwid_x86_machine::MachinePreset;

    #[test]
    fn preset_mapping_exists_on_every_architecture() {
        for &preset in MachinePreset::all() {
            let machine = SimMachine::new(preset);
            let papi = Papi::library_init(&machine);
            let available = papi.available_presets();
            assert!(
                available.contains(&PapiPreset::PAPI_TOT_CYC),
                "{preset:?} must map PAPI_TOT_CYC"
            );
            assert!(
                available.contains(&PapiPreset::PAPI_DP_OPS),
                "{preset:?} must map PAPI_DP_OPS"
            );
        }
    }

    #[test]
    fn papi_style_measurement_counts_like_the_likwid_path() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let mut papi = Papi::library_init(&machine);
        let set = papi.create_eventset(2).unwrap();
        papi.add_event(set, PapiPreset::PAPI_DP_OPS).unwrap();
        papi.add_event(set, PapiPreset::PAPI_TOT_CYC).unwrap();
        papi.start(set).unwrap();

        let engine = EventEngine::new(&machine);
        let mut sample = EventSample::new(machine.num_hw_threads(), 1);
        sample.threads[2].set(HwEventKind::SimdPackedDouble, 4096);
        sample.threads[2].set(HwEventKind::CoreCycles, 100_000);
        engine.apply(&machine, &sample);

        let values = papi.stop(set).unwrap();
        assert_eq!(values[0], 4096);
        assert_eq!(values[1], 100_000);
    }

    #[test]
    fn event_sets_respect_counter_capacity() {
        // Core 2 has two general-purpose counters plus fixed counters; adding
        // three PMC-only presets must fail with a conflict.
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let mut papi = Papi::library_init(&machine);
        let set = papi.create_eventset(0).unwrap();
        papi.add_event(set, PapiPreset::PAPI_DP_OPS).unwrap();
        papi.add_event(set, PapiPreset::PAPI_L1_DCM).unwrap();
        assert_eq!(papi.add_event(set, PapiPreset::PAPI_BR_MSP), Err(PapiError::CounterConflict));
    }

    #[test]
    fn state_machine_errors() {
        let machine = SimMachine::new(MachinePreset::NehalemEp2S);
        let mut papi = Papi::library_init(&machine);
        assert_eq!(papi.start(7), Err(PapiError::BadHandle));
        let set = papi.create_eventset(0).unwrap();
        papi.add_event(set, PapiPreset::PAPI_TOT_INS).unwrap();
        assert!(matches!(papi.stop(set), Err(PapiError::BadState)), "stop before start");
        papi.start(set).unwrap();
        assert!(matches!(papi.start(set), Err(PapiError::BadState)), "double start");
        assert!(matches!(papi.add_event(set, PapiPreset::PAPI_DP_OPS), Err(PapiError::BadState)));
        papi.stop(set).unwrap();
    }

    #[test]
    fn table1_covers_the_papers_comparison_aspects() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 12, "Table I has twelve comparison rows");
        assert!(rows.iter().any(|(a, _, _)| *a == "Thread and process pinning"));
        assert!(rows.iter().any(|(a, _, _)| *a == "Uncore support"));
    }
}

//! The counting engine: the "hardware side" of the performance counters.
//!
//! On real silicon, programmed counters advance by themselves while code
//! runs. In the simulation, workload execution produces an [`EventSample`]
//! describing what happened (per hardware thread and per socket), and
//! [`EventEngine::apply`] advances exactly those counter registers that are
//! currently programmed and enabled — by inspecting the PERFEVTSEL/fixed/
//! uncore control MSRs the tool wrote. A counter that was never programmed,
//! or whose enable bit is clear, does not move, which is what makes the
//! wrapper/marker/multiplexing logic of `likwid-perfctr` testable end to
//! end.

use likwid_x86_machine::{Microarch, Msr, SimMachine, Vendor};

use crate::event::EventTable;
use crate::kinds::{EventSample, HwEventKind};
use crate::perfmon::{decode_selector, is_enabled};
use crate::tables;

/// Applies event samples to a machine's programmed counters.
pub struct EventEngine {
    table: EventTable,
    arch: Microarch,
}

impl EventEngine {
    /// Create the engine for a machine (selects the matching event table).
    pub fn new(machine: &SimMachine) -> Self {
        EventEngine { table: tables::for_arch(machine.arch()), arch: machine.arch() }
    }

    /// The event table used to map programmed selectors back to events.
    pub fn table(&self) -> &EventTable {
        &self.table
    }

    /// Credit all programmed and enabled counters of `machine` with the
    /// activity described by `sample`.
    pub fn apply(&self, machine: &SimMachine, sample: &EventSample) {
        match self.arch.vendor() {
            Vendor::Intel => self.apply_intel(machine, sample),
            Vendor::Amd => self.apply_amd(machine, sample),
        }
    }

    fn thread_count(&self, sample: &EventSample, cpu: usize, kind: HwEventKind) -> u64 {
        sample.threads.get(cpu).map(|t| t.get(kind)).unwrap_or(0)
    }

    fn socket_count(&self, sample: &EventSample, socket: usize, kind: HwEventKind) -> u64 {
        sample.sockets.get(socket).map(|s| s.get(kind)).unwrap_or(0)
    }

    fn apply_intel(&self, machine: &SimMachine, sample: &EventSample) {
        let msr = machine.msr_file();
        let num_pmc = self.arch.num_pmc() as u32;
        let num_fixed = self.arch.num_fixed_counters() as u32;

        for cpu in 0..machine.num_hw_threads() {
            // Global enable: architectures with the global control register
            // gate each counter through its own bit (PMCn through bit n,
            // FIXCn through bit 32+n); older parts only have the per-event
            // enable bits, modeled as an all-ones mask.
            let global = match msr.read(cpu, Msr::IA32_PERF_GLOBAL_CTRL) {
                Ok(v) => v,
                Err(_) => u64::MAX,
            };

            for n in 0..num_pmc {
                let Ok(sel) = msr.read(cpu, Msr::IA32_PERFEVTSEL0 + n) else { continue };
                if !is_enabled(sel) || global & (1 << n) == 0 {
                    continue;
                }
                let Some(event) = self.table.find_by_selector(decode_selector(sel), false) else {
                    continue;
                };
                let delta = if event.kind.is_uncore() {
                    // Some architectures expose package-level quantities
                    // through core counters; credit from the socket record.
                    let socket = machine.topology().hw_threads[cpu].socket as usize;
                    self.socket_count(sample, socket, event.kind)
                } else {
                    self.thread_count(sample, cpu, event.kind)
                };
                if delta > 0 {
                    let _ = msr.increment(cpu, Msr::IA32_PMC0 + n, delta);
                }
            }

            if num_fixed > 0 {
                if let Ok(ctrl) = msr.read(cpu, Msr::IA32_FIXED_CTR_CTRL) {
                    let fixed_kinds = [
                        HwEventKind::InstructionsRetired,
                        HwEventKind::CoreCycles,
                        HwEventKind::ReferenceCycles,
                    ];
                    for (n, kind) in fixed_kinds.iter().enumerate().take(num_fixed as usize) {
                        let enable = (ctrl >> (4 * n)) & 0b011;
                        if enable != 0 && global & (1 << (32 + n)) != 0 {
                            let delta = self.thread_count(sample, cpu, *kind);
                            if delta > 0 {
                                let _ = msr.increment(cpu, Msr::IA32_FIXED_CTR0 + n as u32, delta);
                            }
                        }
                    }
                }
            }
        }

        // Uncore counters are package-scoped: credit them once per socket,
        // through the first hardware thread of that socket.
        if self.arch.has_uncore() {
            let topo = machine.topology();
            for socket in 0..topo.sockets {
                let Some(cpu) =
                    topo.hw_threads.iter().find(|t| t.socket == socket).map(|t| t.os_id)
                else {
                    continue;
                };
                let Ok(global) = msr.read(cpu, Msr::MSR_UNCORE_PERF_GLOBAL_CTRL) else { continue };
                if global == 0 {
                    continue;
                }
                for n in 0..self.arch.num_uncore_pmc() as u32 {
                    let Ok(sel) = msr.read(cpu, Msr::MSR_UNCORE_PERFEVTSEL0 + n) else { continue };
                    if !is_enabled(sel) || global & (1 << n) == 0 {
                        continue;
                    }
                    let Some(event) = self.table.find_by_selector(decode_selector(sel), true)
                    else {
                        continue;
                    };
                    let delta = self.socket_count(sample, socket as usize, event.kind);
                    if delta > 0 {
                        let _ = msr.increment(cpu, Msr::MSR_UNCORE_PMC0 + n, delta);
                    }
                }
                if let Ok(fixed_ctrl) = msr.read(cpu, Msr::MSR_UNCORE_FIXED_CTR_CTRL) {
                    if fixed_ctrl & 1 != 0 && global & (1 << 32) != 0 {
                        let delta =
                            self.socket_count(sample, socket as usize, HwEventKind::UncoreCycles);
                        if delta > 0 {
                            let _ = msr.increment(cpu, Msr::MSR_UNCORE_FIXED_CTR0, delta);
                        }
                    }
                }
            }
        }
    }

    fn apply_amd(&self, machine: &SimMachine, sample: &EventSample) {
        let msr = machine.msr_file();
        for cpu in 0..machine.num_hw_threads() {
            for n in 0..4u32 {
                let Ok(sel) = msr.read(cpu, Msr::AMD_PERFEVTSEL0 + n) else { continue };
                if !is_enabled(sel) {
                    continue;
                }
                let Some(event) = self.table.find_by_selector(decode_selector(sel), false) else {
                    continue;
                };
                let delta = if event.kind.is_uncore() {
                    let socket = machine.topology().hw_threads[cpu].socket as usize;
                    self.socket_count(sample, socket, event.kind)
                } else {
                    self.thread_count(sample, cpu, event.kind)
                };
                if delta > 0 {
                    let _ = msr.increment(cpu, Msr::AMD_PMC0 + n, delta);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CounterSlot;
    use crate::perfmon::PerfMon;
    use likwid_x86_machine::MachinePreset;

    fn sample_with(machine: &SimMachine, cpu: usize, kind: HwEventKind, value: u64) -> EventSample {
        let mut s = EventSample::new(machine.num_hw_threads(), machine.topology().sockets as usize);
        s.threads[cpu].set(kind, value);
        s
    }

    #[test]
    fn programmed_and_enabled_counters_advance() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let engine = EventEngine::new(&machine);
        let table = engine.table().clone();
        let pm = PerfMon::new(&machine, &[1]).unwrap();
        let e = table.find("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE").unwrap();
        pm.setup(1, CounterSlot::Pmc(0), e).unwrap();
        pm.start(1).unwrap();

        let mut sample = sample_with(&machine, 1, HwEventKind::SimdPackedDouble, 8_192_000);
        sample.threads[1].set(HwEventKind::InstructionsRetired, 1);
        engine.apply(&machine, &sample);

        assert_eq!(pm.read(1, CounterSlot::Pmc(0)).unwrap(), 8_192_000);
    }

    #[test]
    fn disabled_counters_do_not_advance() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let engine = EventEngine::new(&machine);
        let table = engine.table().clone();
        let pm = PerfMon::new(&machine, &[0]).unwrap();
        let e = table.find("SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE").unwrap();
        pm.setup(0, CounterSlot::Pmc(1), e).unwrap();
        // No start(): the enable bit stays clear.
        let sample = sample_with(&machine, 0, HwEventKind::SimdScalarDouble, 1000);
        engine.apply(&machine, &sample);
        assert_eq!(pm.read(0, CounterSlot::Pmc(1)).unwrap(), 0);
    }

    #[test]
    fn counters_only_see_their_own_thread() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let engine = EventEngine::new(&machine);
        let table = engine.table().clone();
        let pm = PerfMon::new(&machine, &[0, 1]).unwrap();
        let e = table.find("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE").unwrap();
        for cpu in [0, 1] {
            pm.setup(cpu, CounterSlot::Pmc(0), e).unwrap();
            pm.start(cpu).unwrap();
        }
        let sample = sample_with(&machine, 1, HwEventKind::SimdPackedDouble, 500);
        engine.apply(&machine, &sample);
        assert_eq!(pm.read(0, CounterSlot::Pmc(0)).unwrap(), 0);
        assert_eq!(pm.read(1, CounterSlot::Pmc(0)).unwrap(), 500);
    }

    #[test]
    fn fixed_counters_count_instructions_and_cycles() {
        let machine = SimMachine::new(MachinePreset::NehalemEp2S);
        let engine = EventEngine::new(&machine);
        let table = engine.table().clone();
        let pm = PerfMon::new(&machine, &[2]).unwrap();
        pm.setup(2, CounterSlot::Fixed(0), table.find("INSTR_RETIRED_ANY").unwrap()).unwrap();
        pm.setup(2, CounterSlot::Fixed(1), table.find("CPU_CLK_UNHALTED_CORE").unwrap()).unwrap();
        pm.start(2).unwrap();

        let mut sample = EventSample::new(machine.num_hw_threads(), 2);
        sample.threads[2].set(HwEventKind::InstructionsRetired, 18_802_400);
        sample.threads[2].set(HwEventKind::CoreCycles, 28_583_800);
        engine.apply(&machine, &sample);

        assert_eq!(pm.read(2, CounterSlot::Fixed(0)).unwrap(), 18_802_400);
        assert_eq!(pm.read(2, CounterSlot::Fixed(1)).unwrap(), 28_583_800);
    }

    #[test]
    fn uncore_counters_are_per_socket() {
        let machine = SimMachine::new(MachinePreset::NehalemEp2S);
        let engine = EventEngine::new(&machine);
        let table = engine.table().clone();
        // Socket 0's first thread is cpu 0; socket 1's first thread is cpu 4.
        let pm = PerfMon::new(&machine, &[0, 4]).unwrap();
        let e = table.find("UNC_L3_LINES_IN_ANY").unwrap();
        for cpu in [0usize, 4] {
            pm.setup(cpu, CounterSlot::UncorePmc(0), e).unwrap();
            pm.start(cpu).unwrap();
        }
        let mut sample = EventSample::new(machine.num_hw_threads(), 2);
        sample.sockets[0].set(HwEventKind::L3LinesIn, 591_000_000);
        sample.sockets[1].set(HwEventKind::L3LinesIn, 1_000);
        engine.apply(&machine, &sample);

        assert_eq!(pm.read(0, CounterSlot::UncorePmc(0)).unwrap(), 591_000_000);
        assert_eq!(pm.read(4, CounterSlot::UncorePmc(0)).unwrap(), 1_000);
    }

    #[test]
    fn amd_counters_advance_and_l3_kinds_come_from_the_socket() {
        let machine = SimMachine::new(MachinePreset::IstanbulH2S);
        let engine = EventEngine::new(&machine);
        let table = engine.table().clone();
        let pm = PerfMon::new(&machine, &[7]).unwrap();
        pm.setup(7, CounterSlot::Pmc(0), table.find("RETIRED_INSTRUCTIONS").unwrap()).unwrap();
        pm.setup(7, CounterSlot::Pmc(1), table.find("L3_FILLS_ALL_ALL_CORES").unwrap()).unwrap();
        pm.start(7).unwrap();

        let mut sample = EventSample::new(machine.num_hw_threads(), 2);
        sample.threads[7].set(HwEventKind::InstructionsRetired, 42);
        // cpu 7 is on socket 1 of the Istanbul preset (6 cores per socket).
        sample.sockets[1].set(HwEventKind::L3LinesIn, 777);
        sample.sockets[0].set(HwEventKind::L3LinesIn, 111);
        engine.apply(&machine, &sample);

        assert_eq!(pm.read(7, CounterSlot::Pmc(0)).unwrap(), 42);
        assert_eq!(pm.read(7, CounterSlot::Pmc(1)).unwrap(), 777);
    }

    #[test]
    fn applying_twice_accumulates() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let engine = EventEngine::new(&machine);
        let table = engine.table().clone();
        let pm = PerfMon::new(&machine, &[0]).unwrap();
        let e = table.find("L1D_REPL").unwrap();
        pm.setup(0, CounterSlot::Pmc(0), e).unwrap();
        pm.start(0).unwrap();
        let sample = sample_with(&machine, 0, HwEventKind::L1Misses, 10);
        engine.apply(&machine, &sample);
        engine.apply(&machine, &sample);
        assert_eq!(pm.read(0, CounterSlot::Pmc(0)).unwrap(), 20);
    }

    #[test]
    fn stop_freezes_the_counters() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let engine = EventEngine::new(&machine);
        let table = engine.table().clone();
        let pm = PerfMon::new(&machine, &[0]).unwrap();
        let e = table.find("L1D_REPL").unwrap();
        pm.setup(0, CounterSlot::Pmc(0), e).unwrap();
        pm.start(0).unwrap();
        let sample = sample_with(&machine, 0, HwEventKind::L1Misses, 10);
        engine.apply(&machine, &sample);
        pm.stop(0).unwrap();
        engine.apply(&machine, &sample);
        assert_eq!(pm.read(0, CounterSlot::Pmc(0)).unwrap(), 10, "no counting after stop");
    }
}

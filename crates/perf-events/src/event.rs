//! Event definitions and per-architecture event tables.

use crate::kinds::HwEventKind;

/// A counter slot an event can be programmed into.
///
/// The names follow LIKWID's command-line syntax (`…:PMC0`, `…:FIXC1`,
/// `…:UPMC0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CounterSlot {
    /// General-purpose core counter `n`.
    Pmc(u8),
    /// Fixed-function core counter `n` (0 = INSTR_RETIRED_ANY,
    /// 1 = CPU_CLK_UNHALTED_CORE, 2 = CPU_CLK_UNHALTED_REF).
    Fixed(u8),
    /// General-purpose uncore counter `n` (Nehalem/Westmere).
    UncorePmc(u8),
    /// The fixed uncore clock counter.
    UncoreFixed,
}

impl CounterSlot {
    /// LIKWID-style name ("PMC0", "FIXC1", "UPMC3", "UPMCFIX").
    pub fn name(self) -> String {
        match self {
            CounterSlot::Pmc(n) => format!("PMC{n}"),
            CounterSlot::Fixed(n) => format!("FIXC{n}"),
            CounterSlot::UncorePmc(n) => format!("UPMC{n}"),
            CounterSlot::UncoreFixed => "UPMCFIX".to_string(),
        }
    }

    /// Parse a LIKWID-style counter name.
    pub fn parse(name: &str) -> Option<Self> {
        if name == "UPMCFIX" {
            return Some(CounterSlot::UncoreFixed);
        }
        if let Some(rest) = name.strip_prefix("UPMC") {
            return rest.parse().ok().map(CounterSlot::UncorePmc);
        }
        if let Some(rest) = name.strip_prefix("PMC") {
            return rest.parse().ok().map(CounterSlot::Pmc);
        }
        if let Some(rest) = name.strip_prefix("FIXC") {
            return rest.parse().ok().map(CounterSlot::Fixed);
        }
        None
    }

    /// Whether this slot lives in the uncore.
    pub fn is_uncore(self) -> bool {
        matches!(self, CounterSlot::UncorePmc(_) | CounterSlot::UncoreFixed)
    }
}

/// Which class of counters an event may be scheduled on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterClass {
    /// Any general-purpose core counter.
    AnyPmc,
    /// A specific fixed counter.
    Fixed(u8),
    /// Any general-purpose uncore counter.
    AnyUncorePmc,
    /// The fixed uncore clock counter.
    UncoreFixed,
}

/// One documented hardware event of an architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventDefinition {
    /// Documented event name (as written on the `-g` command line).
    pub name: &'static str,
    /// Event-select code (bits 7:0 of PERFEVTSEL).
    pub event_code: u16,
    /// Unit mask (bits 15:8 of PERFEVTSEL).
    pub umask: u8,
    /// Which counters can carry the event.
    pub counters: CounterClass,
    /// The architectural quantity the event measures in the simulator.
    pub kind: HwEventKind,
}

impl EventDefinition {
    /// The `(event_code, umask)` pair packed as the low 16 bits of a
    /// PERFEVTSEL value — the key the counting engine uses to recognise a
    /// programmed event.
    pub fn selector(&self) -> u16 {
        ((self.umask as u16) << 8) | (self.event_code & 0xFF)
    }
}

/// The complete event table of one microarchitecture.
#[derive(Debug, Clone)]
pub struct EventTable {
    /// Architecture display name (diagnostics only).
    pub arch_name: &'static str,
    /// Number of general-purpose core counters.
    pub num_pmc: usize,
    /// Number of fixed counters.
    pub num_fixed: usize,
    /// Number of general-purpose uncore counters.
    pub num_uncore_pmc: usize,
    /// Implemented bits of the general-purpose core counters (40 or 48).
    pub pmc_bits: u32,
    /// Implemented bits of the fixed-function counters (44; 0 when absent).
    pub fixed_bits: u32,
    /// Implemented bits of the uncore counters (48; 0 when absent).
    pub uncore_bits: u32,
    /// All documented events.
    pub events: Vec<EventDefinition>,
}

impl EventTable {
    /// Implemented width in bits of the counter backing `slot` — the width
    /// the session layer uses for wraparound-correct delta computation.
    pub fn counter_bits(&self, slot: CounterSlot) -> u32 {
        match slot {
            CounterSlot::Pmc(_) => self.pmc_bits,
            CounterSlot::Fixed(_) => self.fixed_bits,
            CounterSlot::UncorePmc(_) | CounterSlot::UncoreFixed => self.uncore_bits,
        }
    }

    /// Look up an event by its documented name.
    pub fn find(&self, name: &str) -> Option<&EventDefinition> {
        self.events.iter().find(|e| e.name == name)
    }

    /// Look up an event by its `(event_code, umask)` selector within a
    /// counter class (core or uncore), used by the counting engine to map a
    /// programmed PERFEVTSEL value back to an event.
    pub fn find_by_selector(&self, selector: u16, uncore: bool) -> Option<&EventDefinition> {
        self.events.iter().find(|e| {
            e.selector() == selector
                && (matches!(e.counters, CounterClass::AnyUncorePmc | CounterClass::UncoreFixed)
                    == uncore)
        })
    }

    /// All counter slots that can carry the given event on this architecture.
    pub fn allowed_slots(&self, event: &EventDefinition) -> Vec<CounterSlot> {
        match event.counters {
            CounterClass::AnyPmc => (0..self.num_pmc as u8).map(CounterSlot::Pmc).collect(),
            CounterClass::Fixed(n) => vec![CounterSlot::Fixed(n)],
            CounterClass::AnyUncorePmc => {
                (0..self.num_uncore_pmc as u8).map(CounterSlot::UncorePmc).collect()
            }
            CounterClass::UncoreFixed => vec![CounterSlot::UncoreFixed],
        }
    }

    /// Whether a named event exists.
    pub fn has_event(&self, name: &str) -> bool {
        self.find(name).is_some()
    }

    /// Event names (sorted) — used by the `-a` listing of the tool.
    pub fn event_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.events.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &'static str, code: u16, umask: u8, kind: HwEventKind) -> EventDefinition {
        EventDefinition { name, event_code: code, umask, counters: CounterClass::AnyPmc, kind }
    }

    fn table() -> EventTable {
        EventTable {
            arch_name: "test",
            num_pmc: 2,
            num_fixed: 3,
            num_uncore_pmc: 8,
            pmc_bits: 48,
            fixed_bits: 44,
            uncore_bits: 48,
            events: vec![
                event("EVENT_A", 0x10, 0x01, HwEventKind::LoadsRetired),
                event("EVENT_B", 0x10, 0x02, HwEventKind::StoresRetired),
                EventDefinition {
                    name: "FIXED_INSTR",
                    event_code: 0,
                    umask: 0,
                    counters: CounterClass::Fixed(0),
                    kind: HwEventKind::InstructionsRetired,
                },
                EventDefinition {
                    name: "UNC_EVENT",
                    event_code: 0x20,
                    umask: 0x03,
                    counters: CounterClass::AnyUncorePmc,
                    kind: HwEventKind::L3LinesIn,
                },
            ],
        }
    }

    #[test]
    fn counter_slot_names_round_trip() {
        for slot in [
            CounterSlot::Pmc(0),
            CounterSlot::Pmc(3),
            CounterSlot::Fixed(1),
            CounterSlot::UncorePmc(7),
            CounterSlot::UncoreFixed,
        ] {
            assert_eq!(CounterSlot::parse(&slot.name()), Some(slot));
        }
        assert_eq!(CounterSlot::parse("XYZ0"), None);
        assert_eq!(CounterSlot::parse("PMCx"), None);
    }

    #[test]
    fn selector_packs_code_and_umask() {
        let e = event("E", 0x3C, 0x01, HwEventKind::CoreCycles);
        assert_eq!(e.selector(), 0x013C);
    }

    #[test]
    fn find_by_name_and_selector() {
        let t = table();
        assert!(t.has_event("EVENT_A"));
        assert!(!t.has_event("NO_SUCH_EVENT"));
        let a = t.find("EVENT_A").unwrap();
        assert_eq!(t.find_by_selector(a.selector(), false).unwrap().name, "EVENT_A");
        // Same selector in the uncore space finds nothing.
        assert!(t.find_by_selector(a.selector(), true).is_none());
        let u = t.find("UNC_EVENT").unwrap();
        assert_eq!(t.find_by_selector(u.selector(), true).unwrap().name, "UNC_EVENT");
    }

    #[test]
    fn allowed_slots_respect_the_counter_class() {
        let t = table();
        assert_eq!(
            t.allowed_slots(t.find("EVENT_A").unwrap()),
            vec![CounterSlot::Pmc(0), CounterSlot::Pmc(1)]
        );
        assert_eq!(t.allowed_slots(t.find("FIXED_INSTR").unwrap()), vec![CounterSlot::Fixed(0)]);
        assert_eq!(t.allowed_slots(t.find("UNC_EVENT").unwrap()).len(), 8);
    }

    #[test]
    fn counter_bits_follow_the_slot_class() {
        let t = table();
        assert_eq!(t.counter_bits(CounterSlot::Pmc(1)), 48);
        assert_eq!(t.counter_bits(CounterSlot::Fixed(0)), 44);
        assert_eq!(t.counter_bits(CounterSlot::UncorePmc(3)), 48);
        assert_eq!(t.counter_bits(CounterSlot::UncoreFixed), 48);
    }

    #[test]
    fn event_names_are_sorted() {
        let names = table().event_names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}

//! Architectural event kinds and workload samples.
//!
//! A [`HwEventKind`] names a microarchitectural quantity independent of how
//! a particular CPU generation encodes it (the per-architecture encoding
//! lives in the event tables). The workload execution engine summarises a
//! simulated run — or a slice of one — as an [`EventSample`]: per hardware
//! thread the core-local quantities, per socket the uncore quantities. The
//! counting engine then credits whatever counters are programmed.

use std::collections::HashMap;

/// Microarchitectural quantities the simulated hardware can count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HwEventKind {
    /// Retired instructions.
    InstructionsRetired,
    /// Unhalted core clock cycles.
    CoreCycles,
    /// Unhalted reference clock cycles.
    ReferenceCycles,
    /// Packed (SIMD) double-precision floating point operations retired.
    SimdPackedDouble,
    /// Scalar double-precision floating point operations retired.
    SimdScalarDouble,
    /// Packed (SIMD) single-precision floating point operations retired.
    SimdPackedSingle,
    /// Scalar single-precision floating point operations retired.
    SimdScalarSingle,
    /// Retired load instructions.
    LoadsRetired,
    /// Retired store instructions.
    StoresRetired,
    /// Retired branch instructions.
    BranchesRetired,
    /// Mispredicted retired branches.
    BranchMispredictions,
    /// Data TLB misses.
    DtlbMisses,
    /// L1 data cache accesses (loads + stores reaching L1).
    L1Accesses,
    /// L1 data cache misses (lines replaced / demanded from L2).
    L1Misses,
    /// L2 cache accesses from this core.
    L2Accesses,
    /// L2 cache misses from this core.
    L2Misses,
    /// Lines allocated into this core's L2.
    L2LinesIn,
    /// Lines evicted from this core's L2.
    L2LinesOut,
    /// L3 (uncore) accesses of the whole package.
    L3Accesses,
    /// L3 (uncore) misses of the whole package.
    L3Misses,
    /// Lines allocated into the package's L3 (`UNC_L3_LINES_IN_ANY`).
    L3LinesIn,
    /// Lines victimized from the package's L3 (`UNC_L3_LINES_OUT_ANY`).
    L3LinesOut,
    /// Full cache-line reads from the package's memory controller.
    MemoryReads,
    /// Full cache-line writes at the package's memory controller.
    MemoryWrites,
    /// Uncore clock cycles.
    UncoreCycles,
}

impl HwEventKind {
    /// Whether this quantity lives in the uncore (per package) rather than
    /// in a core.
    pub fn is_uncore(self) -> bool {
        matches!(
            self,
            HwEventKind::L3Accesses
                | HwEventKind::L3Misses
                | HwEventKind::L3LinesIn
                | HwEventKind::L3LinesOut
                | HwEventKind::MemoryReads
                | HwEventKind::MemoryWrites
                | HwEventKind::UncoreCycles
        )
    }
}

/// Core-local event quantities of one hardware thread over a sample period.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThreadEventRecord {
    counts: HashMap<HwEventKind, u64>,
}

impl ThreadEventRecord {
    /// Empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the count of a kind (overwrites).
    pub fn set(&mut self, kind: HwEventKind, value: u64) -> &mut Self {
        self.counts.insert(kind, value);
        self
    }

    /// Add to the count of a kind.
    pub fn add(&mut self, kind: HwEventKind, value: u64) -> &mut Self {
        *self.counts.entry(kind).or_insert(0) += value;
        self
    }

    /// The count of a kind (0 if never set).
    pub fn get(&self, kind: HwEventKind) -> u64 {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Iterate over all non-zero kinds.
    pub fn iter(&self) -> impl Iterator<Item = (HwEventKind, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }
}

/// Uncore event quantities of one socket over a sample period.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SocketEventRecord {
    counts: HashMap<HwEventKind, u64>,
}

impl SocketEventRecord {
    /// Empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the count of a kind (overwrites).
    pub fn set(&mut self, kind: HwEventKind, value: u64) -> &mut Self {
        self.counts.insert(kind, value);
        self
    }

    /// Add to the count of a kind.
    pub fn add(&mut self, kind: HwEventKind, value: u64) -> &mut Self {
        *self.counts.entry(kind).or_insert(0) += value;
        self
    }

    /// The count of a kind (0 if never set).
    pub fn get(&self, kind: HwEventKind) -> u64 {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Iterate over all non-zero kinds.
    pub fn iter(&self) -> impl Iterator<Item = (HwEventKind, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }
}

/// A complete sample of simulated hardware activity: what happened on every
/// hardware thread and in every socket's uncore during one period.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventSample {
    /// Indexed by OS processor ID.
    pub threads: Vec<ThreadEventRecord>,
    /// Indexed by socket number.
    pub sockets: Vec<SocketEventRecord>,
}

impl EventSample {
    /// A sample for a machine with `num_threads` hardware threads and
    /// `num_sockets` sockets, all counts zero.
    pub fn new(num_threads: usize, num_sockets: usize) -> Self {
        EventSample {
            threads: vec![ThreadEventRecord::default(); num_threads],
            sockets: vec![SocketEventRecord::default(); num_sockets],
        }
    }

    /// Merge another sample (e.g. from a later execution phase) into this one.
    pub fn merge(&mut self, other: &EventSample) {
        if self.threads.len() < other.threads.len() {
            self.threads.resize(other.threads.len(), ThreadEventRecord::default());
        }
        if self.sockets.len() < other.sockets.len() {
            self.sockets.resize(other.sockets.len(), SocketEventRecord::default());
        }
        for (mine, theirs) in self.threads.iter_mut().zip(&other.threads) {
            for (kind, value) in theirs.iter() {
                mine.add(kind, value);
            }
        }
        for (mine, theirs) in self.sockets.iter_mut().zip(&other.sockets) {
            for (&kind, &value) in theirs.counts.iter() {
                mine.add(kind, value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncore_classification() {
        assert!(HwEventKind::L3LinesIn.is_uncore());
        assert!(HwEventKind::MemoryReads.is_uncore());
        assert!(!HwEventKind::InstructionsRetired.is_uncore());
        assert!(!HwEventKind::L2Misses.is_uncore());
    }

    #[test]
    fn thread_record_set_add_get() {
        let mut r = ThreadEventRecord::new();
        r.set(HwEventKind::InstructionsRetired, 100);
        r.add(HwEventKind::InstructionsRetired, 50);
        assert_eq!(r.get(HwEventKind::InstructionsRetired), 150);
        assert_eq!(r.get(HwEventKind::CoreCycles), 0);
    }

    #[test]
    fn sample_merge_accumulates_threads_and_sockets() {
        let mut a = EventSample::new(2, 1);
        a.threads[0].set(HwEventKind::CoreCycles, 10);
        a.sockets[0].set(HwEventKind::L3LinesIn, 5);
        let mut b = EventSample::new(2, 1);
        b.threads[0].set(HwEventKind::CoreCycles, 7);
        b.threads[1].set(HwEventKind::InstructionsRetired, 3);
        b.sockets[0].set(HwEventKind::L3LinesIn, 2);
        a.merge(&b);
        assert_eq!(a.threads[0].get(HwEventKind::CoreCycles), 17);
        assert_eq!(a.threads[1].get(HwEventKind::InstructionsRetired), 3);
        assert_eq!(a.sockets[0].get(HwEventKind::L3LinesIn), 7);
    }

    #[test]
    fn merge_grows_a_smaller_sample() {
        let mut a = EventSample::new(1, 1);
        let mut b = EventSample::new(4, 2);
        b.threads[3].set(HwEventKind::LoadsRetired, 9);
        b.sockets[1].set(HwEventKind::MemoryWrites, 4);
        a.merge(&b);
        assert_eq!(a.threads.len(), 4);
        assert_eq!(a.threads[3].get(HwEventKind::LoadsRetired), 9);
        assert_eq!(a.sockets[1].get(HwEventKind::MemoryWrites), 4);
    }
}

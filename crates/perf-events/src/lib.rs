//! Hardware performance event model.
//!
//! This crate sits between the machine substrate (`likwid-x86-machine`) and
//! the `likwid-perfctr` tool. It provides:
//!
//! * **Event tables** per microarchitecture ([`tables`]): the mapping from
//!   documented event names (`SIMD_COMP_INST_RETIRED_PACKED_DOUBLE`,
//!   `UNC_L3_LINES_IN_ANY`, …) to event-select codes, unit masks and the set
//!   of counters that can carry them — the same information LIKWID ships in
//!   its per-architecture event header files.
//! * **Counter programming** ([`perfmon`]): encoding/decoding of the
//!   `IA32_PERFEVTSELx` and fixed/uncore control registers, and a
//!   [`perfmon::PerfMon`] helper that programs, starts, stops and reads
//!   counters through an [`likwid_x86_machine::MsrDevice`] exactly as the
//!   real tool does through `/dev/cpu/*/msr`.
//! * **The counting engine** ([`engine`]): the "hardware side" that makes
//!   the programmed counters actually advance. Workload execution produces
//!   an [`EventSample`] of architectural happenings (instructions retired,
//!   SIMD operations, cache lines in/out per level, memory transactions);
//!   [`engine::EventEngine::apply`] inspects which events each hardware
//!   thread has programmed and credits the corresponding counter MSRs.
//! * **Multiplexing support** ([`multiplex`]): round-robin scheduling of
//!   more event sets than there are physical counters, with extrapolation,
//!   mirroring `likwid-perfCtr`'s multiplexing mode.

pub mod engine;
pub mod event;
pub mod kinds;
pub mod multiplex;
pub mod perfmon;
pub mod tables;

pub use engine::EventEngine;
pub use event::{CounterClass, CounterSlot, EventDefinition, EventTable};
pub use kinds::{EventSample, HwEventKind, SocketEventRecord, ThreadEventRecord};
pub use multiplex::MultiplexSchedule;
pub use perfmon::{PerfMon, PerfMonError};

//! Counter multiplexing.
//!
//! When more events are requested than there are physical counters,
//! `likwid-perfCtr` assigns counters to event sets in a round-robin manner:
//! each set is measured during a fraction of the run and the final counts
//! are extrapolated to the full runtime. The paper points out the downside:
//! short measurements carry large statistical errors. This module provides
//! the schedule bookkeeping and the extrapolation, plus a quantification of
//! the error bound used in tests and the ablation bench.

/// A multiplexing schedule over `num_groups` event groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiplexSchedule {
    num_groups: usize,
    /// How many switch intervals each group has been active for.
    active_intervals: Vec<u64>,
    /// Currently active group.
    current: usize,
    /// Total number of switch intervals elapsed.
    total_intervals: u64,
}

impl MultiplexSchedule {
    /// Create a schedule over `num_groups` groups (at least one).
    pub fn new(num_groups: usize) -> Self {
        assert!(num_groups > 0, "at least one event group is required");
        MultiplexSchedule {
            num_groups,
            active_intervals: vec![0; num_groups],
            current: 0,
            total_intervals: 0,
        }
    }

    /// Number of groups in the schedule.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// The currently active group.
    pub fn current_group(&self) -> usize {
        self.current
    }

    /// Account one switch interval for the active group, then rotate to the
    /// next group (round robin). Returns the group that was active.
    pub fn tick(&mut self) -> usize {
        let was = self.current;
        self.active_intervals[was] += 1;
        self.total_intervals += 1;
        self.current = (self.current + 1) % self.num_groups;
        was
    }

    /// Fraction of the total run during which `group` was measured.
    pub fn coverage(&self, group: usize) -> f64 {
        if self.total_intervals == 0 {
            0.0
        } else {
            self.active_intervals[group] as f64 / self.total_intervals as f64
        }
    }

    /// Extrapolate a raw count measured while `group` was active to the full
    /// runtime (the standard 1/coverage scaling).
    pub fn extrapolate(&self, group: usize, raw_count: u64) -> u64 {
        let cov = self.coverage(group);
        if cov == 0.0 {
            0
        } else {
            (raw_count as f64 / cov).round() as u64
        }
    }

    /// Worst-case relative extrapolation error for a phase-structured
    /// workload: if the workload consists of `phases` equal phases with
    /// different event rates and the schedule only sampled
    /// `active_intervals[group]` of `total_intervals` intervals, the missed
    /// fraction bounds the error. Used to document the "large statistical
    /// errors for short measurements" caveat from the paper.
    pub fn worst_case_relative_error(&self, group: usize) -> f64 {
        1.0 - self.coverage(group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotation() {
        let mut s = MultiplexSchedule::new(3);
        assert_eq!(s.tick(), 0);
        assert_eq!(s.tick(), 1);
        assert_eq!(s.tick(), 2);
        assert_eq!(s.tick(), 0);
        assert_eq!(s.current_group(), 1);
    }

    #[test]
    fn coverage_is_even_after_full_rotations() {
        let mut s = MultiplexSchedule::new(4);
        for _ in 0..40 {
            s.tick();
        }
        for g in 0..4 {
            assert!((s.coverage(g) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn extrapolation_scales_by_inverse_coverage() {
        let mut s = MultiplexSchedule::new(2);
        for _ in 0..10 {
            s.tick();
        }
        // Each group covered 50%: a raw count of 100 extrapolates to 200.
        assert_eq!(s.extrapolate(0, 100), 200);
    }

    #[test]
    fn single_group_needs_no_extrapolation() {
        let mut s = MultiplexSchedule::new(1);
        s.tick();
        assert_eq!(s.coverage(0), 1.0);
        assert_eq!(s.extrapolate(0, 123), 123);
        assert_eq!(s.worst_case_relative_error(0), 0.0);
    }

    #[test]
    fn zero_intervals_mean_zero_coverage() {
        let s = MultiplexSchedule::new(2);
        assert_eq!(s.coverage(0), 0.0);
        assert_eq!(s.extrapolate(0, 100), 0);
    }

    #[test]
    fn uneven_rotation_biases_coverage() {
        let mut s = MultiplexSchedule::new(3);
        // 4 ticks: groups 0,1,2,0 -> group 0 covered twice.
        for _ in 0..4 {
            s.tick();
        }
        assert!((s.coverage(0) - 0.5).abs() < 1e-12);
        assert!((s.coverage(1) - 0.25).abs() < 1e-12);
        assert!(s.worst_case_relative_error(1) > s.worst_case_relative_error(0));
    }

    #[test]
    #[should_panic(expected = "at least one event group")]
    fn zero_groups_is_rejected() {
        MultiplexSchedule::new(0);
    }
}

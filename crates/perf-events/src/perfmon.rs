//! Counter programming through the MSR interface.
//!
//! This is the layer of `likwid-perfCtr` that touches hardware registers: it
//! encodes `IA32_PERFEVTSELx` values, enables the fixed-counter and global
//! control registers, and reads counters back — all through an
//! [`MsrDevice`], i.e. through exactly the `rdmsr`/`wrmsr` traffic the real
//! tool generates through `/dev/cpu/<N>/msr`.

use std::sync::atomic::{AtomicU64, Ordering};

use likwid_x86_machine::{
    MachineError, Msr, MsrDevice, MsrPermission, SimMachine, Vendor, MAX_CONSECUTIVE_LIMIT,
};

use crate::event::{CounterSlot, EventDefinition};

/// Attempts per MSR access before a transient `EIO` is treated as permanent.
/// A transient fault channel never fails one register more than
/// [`MAX_CONSECUTIVE_LIMIT`] times in a row, so this bound guarantees that
/// every access under a transient-only fault plan eventually succeeds.
pub const MSR_RETRY_LIMIT: u32 = MAX_CONSECUTIVE_LIMIT + 2;

/// Retry accounting of one [`PerfMon`]: how often accesses were retried and
/// how many deterministic backoff units (2^attempt, capped) were spent.
/// Purely informational — retries never change measured values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MsrRetryStats {
    /// Individual MSR accesses that had to be repeated.
    pub retries: u64,
    /// Sum of the exponential backoff units spent waiting between attempts.
    pub backoff_units: u64,
}

/// Errors from counter programming.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PerfMonError {
    /// The underlying MSR access failed.
    Msr(MachineError),
    /// The requested counter slot does not exist on this architecture.
    NoSuchCounter(CounterSlot),
    /// The event cannot be scheduled on the requested counter slot.
    IncompatibleCounter {
        /// Event name.
        event: String,
        /// Requested slot.
        slot: CounterSlot,
    },
}

impl std::fmt::Display for PerfMonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PerfMonError::Msr(e) => write!(f, "MSR access failed: {e}"),
            PerfMonError::NoSuchCounter(slot) => write!(f, "no such counter {}", slot.name()),
            PerfMonError::IncompatibleCounter { event, slot } => {
                write!(f, "event {event} cannot be counted on {}", slot.name())
            }
        }
    }
}

impl std::error::Error for PerfMonError {}

impl From<MachineError> for PerfMonError {
    fn from(e: MachineError) -> Self {
        PerfMonError::Msr(e)
    }
}

/// Bit positions inside `IA32_PERFEVTSELx`.
pub mod evtsel {
    /// User-mode counting enable.
    pub const USR: u64 = 1 << 16;
    /// Kernel-mode counting enable.
    pub const OS: u64 = 1 << 17;
    /// Edge detection.
    pub const EDGE: u64 = 1 << 18;
    /// APIC interrupt on overflow.
    pub const INT: u64 = 1 << 20;
    /// Count for both SMT threads (Nehalem+).
    pub const ANY_THREAD: u64 = 1 << 21;
    /// Counter enable.
    pub const ENABLE: u64 = 1 << 22;
    /// Invert counter mask comparison.
    pub const INVERT: u64 = 1 << 23;
}

/// Encode a PERFEVTSEL value for an event: event code, umask, USR+OS and the
/// enable bit.
pub fn encode_evtsel(event: &EventDefinition, enabled: bool) -> u64 {
    let mut value =
        (event.event_code as u64 & 0xFF) | ((event.umask as u64) << 8) | evtsel::USR | evtsel::OS;
    if enabled {
        value |= evtsel::ENABLE;
    }
    value
}

/// Extract the `(event_code, umask)` selector from a PERFEVTSEL value.
pub fn decode_selector(evtsel_value: u64) -> u16 {
    (evtsel_value & 0xFFFF) as u16
}

/// Whether a PERFEVTSEL value has its enable bit set.
pub fn is_enabled(evtsel_value: u64) -> bool {
    evtsel_value & evtsel::ENABLE != 0
}

/// The MSR addresses backing one counter slot on a given vendor.
///
/// Returns `(select_register, counter_register)`; fixed counters have no
/// select register of their own (they are controlled by
/// `IA32_FIXED_CTR_CTRL`) and report `None`.
pub fn slot_registers(vendor: Vendor, slot: CounterSlot) -> (Option<u32>, u32) {
    match (vendor, slot) {
        (Vendor::Intel, CounterSlot::Pmc(n)) => {
            (Some(Msr::IA32_PERFEVTSEL0 + n as u32), Msr::IA32_PMC0 + n as u32)
        }
        (Vendor::Intel, CounterSlot::Fixed(n)) => (None, Msr::IA32_FIXED_CTR0 + n as u32),
        (Vendor::Intel, CounterSlot::UncorePmc(n)) => {
            (Some(Msr::MSR_UNCORE_PERFEVTSEL0 + n as u32), Msr::MSR_UNCORE_PMC0 + n as u32)
        }
        (Vendor::Intel, CounterSlot::UncoreFixed) => (None, Msr::MSR_UNCORE_FIXED_CTR0),
        (Vendor::Amd, CounterSlot::Pmc(n)) => {
            (Some(Msr::AMD_PERFEVTSEL0 + n as u32), Msr::AMD_PMC0 + n as u32)
        }
        // AMD parts in this suite have neither fixed nor uncore counters;
        // map them to the first PMC pair so that the error surfaces as an
        // incompatible-counter error at setup time instead of a bogus MSR.
        (Vendor::Amd, _) => (Some(Msr::AMD_PERFEVTSEL0), Msr::AMD_PMC0),
    }
}

/// Treat an absent register as success; propagate every other failure.
fn ignore_unknown(result: Result<(), PerfMonError>) -> Result<(), PerfMonError> {
    match result {
        Ok(()) | Err(PerfMonError::Msr(MachineError::UnknownMsr { .. })) => Ok(()),
        Err(e) => Err(e),
    }
}

/// Counter programming for the hardware threads of one machine.
///
/// A `PerfMon` owns one read-write MSR device per hardware thread it
/// measures, mirroring the real tool which opens one `/dev/cpu/<N>/msr` file
/// descriptor per measured core.
///
/// Every MSR access is retried up to [`MSR_RETRY_LIMIT`] times with
/// deterministic exponential backoff on transient `EIO` failures, so an
/// `MsrIo` error escaping a `PerfMon` method means the register is
/// *permanently* unreachable (e.g. the cpu dropped out mid-run).
pub struct PerfMon {
    vendor: Vendor,
    devices: Vec<(usize, MsrDevice)>,
    retries: AtomicU64,
    backoff_units: AtomicU64,
}

impl PerfMon {
    /// Open MSR devices for the given hardware threads.
    pub fn new(machine: &SimMachine, cpus: &[usize]) -> Result<Self, PerfMonError> {
        let mut devices = Vec::with_capacity(cpus.len());
        for &cpu in cpus {
            devices.push((cpu, machine.msr(cpu, MsrPermission::ReadWrite)?));
        }
        Ok(PerfMon {
            vendor: machine.vendor(),
            devices,
            retries: AtomicU64::new(0),
            backoff_units: AtomicU64::new(0),
        })
    }

    /// Retry accounting since this monitor was created.
    pub fn retry_stats(&self) -> MsrRetryStats {
        MsrRetryStats {
            retries: self.retries.load(Ordering::Relaxed),
            backoff_units: self.backoff_units.load(Ordering::Relaxed),
        }
    }

    /// Account one repeated attempt; returns whether another try is allowed.
    fn note_retry(&self, attempt: u32) -> bool {
        if attempt + 1 >= MSR_RETRY_LIMIT {
            return false;
        }
        self.retries.fetch_add(1, Ordering::Relaxed);
        // Deterministic exponential backoff, capped: 2, 4, 8, ... units. The
        // simulator does not sleep; the units are accounted so callers can
        // report how much backoff a real run would have spent.
        self.backoff_units.fetch_add(1u64 << (attempt + 1).min(10), Ordering::Relaxed);
        true
    }

    /// `rdmsr` with bounded retry on transient EIO.
    fn rd(&self, dev: &MsrDevice, address: u32) -> Result<u64, PerfMonError> {
        let mut attempt = 0;
        loop {
            match dev.read(address) {
                Err(MachineError::MsrIo { .. }) if self.note_retry(attempt) => attempt += 1,
                other => return Ok(other?),
            }
        }
    }

    /// `wrmsr` with bounded retry on transient EIO.
    fn wr(&self, dev: &MsrDevice, address: u32, value: u64) -> Result<(), PerfMonError> {
        let mut attempt = 0;
        loop {
            match dev.write(address, value) {
                Err(MachineError::MsrIo { .. }) if self.note_retry(attempt) => attempt += 1,
                other => return Ok(other?),
            }
        }
    }

    /// The hardware threads this monitor controls.
    pub fn cpus(&self) -> Vec<usize> {
        self.devices.iter().map(|(cpu, _)| *cpu).collect()
    }

    fn device(&self, cpu: usize) -> Result<&MsrDevice, PerfMonError> {
        self.devices
            .iter()
            .find(|(c, _)| *c == cpu)
            .map(|(_, d)| d)
            .ok_or(PerfMonError::NoSuchCounter(CounterSlot::Pmc(255)))
    }

    /// Program `event` into `slot` on hardware thread `cpu` (disabled; use
    /// [`PerfMon::start`] to enable all programmed counters atomically).
    pub fn setup(
        &self,
        cpu: usize,
        slot: CounterSlot,
        event: &EventDefinition,
    ) -> Result<(), PerfMonError> {
        let dev = self.device(cpu)?;
        let (select, counter) = slot_registers(self.vendor, slot);
        match slot {
            CounterSlot::Fixed(n) => {
                // Fixed counters are controlled by IA32_FIXED_CTR_CTRL: 4 bits
                // per counter, bits 0/1 enable OS/USR counting. Replace the
                // whole field rather than OR-ing so that dirty state left by
                // another tool cannot survive in this counter's bits.
                let ctrl = self.rd(dev, Msr::IA32_FIXED_CTR_CTRL)?;
                let shift = 4 * n as u32;
                self.wr(
                    dev,
                    Msr::IA32_FIXED_CTR_CTRL,
                    (ctrl & !(0xF << shift)) | (0b011 << shift),
                )?;
                self.wr(dev, counter, 0)?;
            }
            CounterSlot::UncoreFixed => {
                self.wr(dev, Msr::MSR_UNCORE_FIXED_CTR_CTRL, 1)?;
                self.wr(dev, counter, 0)?;
            }
            _ => {
                let select = select.expect("PMC slots have a select register");
                self.wr(dev, select, encode_evtsel(event, false))?;
                self.wr(dev, counter, 0)?;
            }
        }
        Ok(())
    }

    /// Verify that the registers backing `slot` still hold the state
    /// [`PerfMon::setup`] wrote for `event`: the disabled select encoding
    /// and a zeroed counter. A mismatch means the write was lost (stuck
    /// register) or foreign state survived — the caller should reprogram.
    pub fn verify(
        &self,
        cpu: usize,
        slot: CounterSlot,
        event: &EventDefinition,
    ) -> Result<bool, PerfMonError> {
        let dev = self.device(cpu)?;
        let (select, counter) = slot_registers(self.vendor, slot);
        let select_ok = match slot {
            CounterSlot::Fixed(n) => {
                let ctrl = self.rd(dev, Msr::IA32_FIXED_CTR_CTRL)?;
                (ctrl >> (4 * n as u32)) & 0xF == 0b011
            }
            CounterSlot::UncoreFixed => self.rd(dev, Msr::MSR_UNCORE_FIXED_CTR_CTRL)? == 1,
            _ => {
                let select = select.expect("PMC slots have a select register");
                self.rd(dev, select)? == encode_evtsel(event, false)
            }
        };
        Ok(select_ok && self.rd(dev, counter)? == 0)
    }

    /// Enable counting on all programmed counters of `cpu`.
    pub fn start(&self, cpu: usize) -> Result<(), PerfMonError> {
        let dev = self.device(cpu)?;
        match self.vendor {
            Vendor::Intel => {
                // Set the enable bits in each programmed PERFEVTSEL, then the
                // global enable mask for PMCs and fixed counters.
                for n in 0..8u32 {
                    let addr = Msr::IA32_PERFEVTSEL0 + n;
                    match self.rd(dev, addr) {
                        Ok(v) if v != 0 => self.wr(dev, addr, v | evtsel::ENABLE)?,
                        Ok(_) => continue,
                        Err(PerfMonError::Msr(MachineError::UnknownMsr { .. })) => break,
                        Err(e) => return Err(e),
                    }
                }
                // The global and uncore control registers do not exist on all
                // generations (Pentium M has neither); ignore their absence —
                // but only their absence, real I/O failures must surface.
                let global = 0xFF | (0x7 << 32);
                ignore_unknown(self.wr(dev, Msr::IA32_PERF_GLOBAL_CTRL, global))?;
                ignore_unknown(self.wr(dev, Msr::MSR_UNCORE_PERF_GLOBAL_CTRL, (1 << 32) | 0xFF))?;
                for n in 0..8u32 {
                    let addr = Msr::MSR_UNCORE_PERFEVTSEL0 + n;
                    match self.rd(dev, addr) {
                        Ok(v) if v != 0 => self.wr(dev, addr, v | evtsel::ENABLE)?,
                        Ok(_) => continue,
                        Err(PerfMonError::Msr(MachineError::UnknownMsr { .. })) => break,
                        Err(e) => return Err(e),
                    }
                }
            }
            Vendor::Amd => {
                for n in 0..4u32 {
                    let addr = Msr::AMD_PERFEVTSEL0 + n;
                    let v = self.rd(dev, addr)?;
                    if v != 0 {
                        self.wr(dev, addr, v | evtsel::ENABLE)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Enable counting on exactly the given counter slots of `cpu`, leaving
    /// every other select register untouched and setting only the matching
    /// per-counter bits of the global control registers.
    ///
    /// [`PerfMon::start`] mirrors the standalone tool: it flips the enable
    /// bit of *every* programmed select register on the cpu, which is
    /// correct when one measurement owns the whole PMU. Under the
    /// `likwid-perfctrd` broker several sessions time-share the registers,
    /// and a suspended session leaves its selects programmed (disabled);
    /// blanket-enabling them would let a foreign time slice count into the
    /// suspended session's counters. The slot-precise start closes exactly
    /// that hole.
    pub fn start_slots(&self, cpu: usize, slots: &[CounterSlot]) -> Result<(), PerfMonError> {
        let dev = self.device(cpu)?;
        match self.vendor {
            Vendor::Intel => {
                let mut global = 0u64;
                let mut uncore_global = 0u64;
                for slot in slots {
                    match slot {
                        // Fixed counters carry their enable in the ctrl
                        // registers written at setup; they only need their
                        // global-control bit.
                        CounterSlot::Fixed(n) => global |= 1 << (32 + *n as u32),
                        CounterSlot::UncoreFixed => uncore_global |= 1 << 32,
                        CounterSlot::Pmc(n) => {
                            global |= 1 << *n as u32;
                            let addr = Msr::IA32_PERFEVTSEL0 + *n as u32;
                            let v = self.rd(dev, addr)?;
                            if v != 0 {
                                self.wr(dev, addr, v | evtsel::ENABLE)?;
                            }
                        }
                        CounterSlot::UncorePmc(n) => {
                            uncore_global |= 1 << *n as u32;
                            let addr = Msr::MSR_UNCORE_PERFEVTSEL0 + *n as u32;
                            let v = self.rd(dev, addr)?;
                            if v != 0 {
                                self.wr(dev, addr, v | evtsel::ENABLE)?;
                            }
                        }
                    }
                }
                ignore_unknown(self.wr(dev, Msr::IA32_PERF_GLOBAL_CTRL, global))?;
                ignore_unknown(self.wr(dev, Msr::MSR_UNCORE_PERF_GLOBAL_CTRL, uncore_global))?;
            }
            Vendor::Amd => {
                for slot in slots {
                    if let CounterSlot::Pmc(n) = slot {
                        let addr = Msr::AMD_PERFEVTSEL0 + *n as u32;
                        let v = self.rd(dev, addr)?;
                        if v != 0 {
                            self.wr(dev, addr, v | evtsel::ENABLE)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Disable counting on `cpu` (counters retain their values).
    pub fn stop(&self, cpu: usize) -> Result<(), PerfMonError> {
        let dev = self.device(cpu)?;
        match self.vendor {
            Vendor::Intel => {
                ignore_unknown(self.wr(dev, Msr::IA32_PERF_GLOBAL_CTRL, 0))?;
                ignore_unknown(self.wr(dev, Msr::MSR_UNCORE_PERF_GLOBAL_CTRL, 0))?;
                for n in 0..8u32 {
                    let addr = Msr::IA32_PERFEVTSEL0 + n;
                    match self.rd(dev, addr) {
                        Ok(v) if v != 0 => self.wr(dev, addr, v & !evtsel::ENABLE)?,
                        Ok(_) => continue,
                        Err(PerfMonError::Msr(MachineError::UnknownMsr { .. })) => break,
                        Err(e) => return Err(e),
                    }
                }
                for n in 0..8u32 {
                    let addr = Msr::MSR_UNCORE_PERFEVTSEL0 + n;
                    match self.rd(dev, addr) {
                        Ok(v) if v != 0 => self.wr(dev, addr, v & !evtsel::ENABLE)?,
                        Ok(_) => continue,
                        Err(PerfMonError::Msr(MachineError::UnknownMsr { .. })) => break,
                        Err(e) => return Err(e),
                    }
                }
            }
            Vendor::Amd => {
                for n in 0..4u32 {
                    let addr = Msr::AMD_PERFEVTSEL0 + n;
                    let v = self.rd(dev, addr)?;
                    if v != 0 {
                        self.wr(dev, addr, v & !evtsel::ENABLE)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Read the current value of a counter slot on `cpu`.
    pub fn read(&self, cpu: usize, slot: CounterSlot) -> Result<u64, PerfMonError> {
        let dev = self.device(cpu)?;
        let (_, counter) = slot_registers(self.vendor, slot);
        self.rd(dev, counter)
    }

    /// Reset a counter slot to zero on `cpu`.
    pub fn reset(&self, cpu: usize, slot: CounterSlot) -> Result<(), PerfMonError> {
        let dev = self.device(cpu)?;
        let (_, counter) = slot_registers(self.vendor, slot);
        self.wr(dev, counter, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables;
    use likwid_x86_machine::MachinePreset;

    #[test]
    fn evtsel_encoding_round_trips() {
        let t = tables::for_arch(likwid_x86_machine::Microarch::Core2);
        let e = t.find("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE").unwrap();
        let v = encode_evtsel(e, true);
        assert!(is_enabled(v));
        assert_eq!(decode_selector(v), e.selector());
        let v_off = encode_evtsel(e, false);
        assert!(!is_enabled(v_off));
    }

    #[test]
    fn setup_writes_the_expected_registers() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let table = tables::for_arch(machine.arch());
        let pm = PerfMon::new(&machine, &[1]).unwrap();
        let event = table.find("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE").unwrap();
        pm.setup(1, CounterSlot::Pmc(0), event).unwrap();

        let dev = machine.msr(1, MsrPermission::ReadOnly).unwrap();
        let sel = dev.read(Msr::IA32_PERFEVTSEL0).unwrap();
        assert_eq!(decode_selector(sel), event.selector());
        assert!(!is_enabled(sel), "setup leaves the counter disabled");

        pm.start(1).unwrap();
        assert!(is_enabled(dev.read(Msr::IA32_PERFEVTSEL0).unwrap()));
        assert_ne!(dev.read(Msr::IA32_PERF_GLOBAL_CTRL).unwrap(), 0);

        pm.stop(1).unwrap();
        assert!(!is_enabled(dev.read(Msr::IA32_PERFEVTSEL0).unwrap()));
        assert_eq!(dev.read(Msr::IA32_PERF_GLOBAL_CTRL).unwrap(), 0);
    }

    #[test]
    fn fixed_counter_setup_uses_the_fixed_ctrl_register() {
        let machine = SimMachine::new(MachinePreset::NehalemEp2S);
        let table = tables::for_arch(machine.arch());
        let pm = PerfMon::new(&machine, &[0]).unwrap();
        let instr = table.find("INSTR_RETIRED_ANY").unwrap();
        pm.setup(0, CounterSlot::Fixed(0), instr).unwrap();
        let dev = machine.msr(0, MsrPermission::ReadOnly).unwrap();
        assert_eq!(dev.read(Msr::IA32_FIXED_CTR_CTRL).unwrap() & 0xF, 0b011);
    }

    #[test]
    fn uncore_counter_setup_and_read() {
        let machine = SimMachine::new(MachinePreset::NehalemEp2S);
        let table = tables::for_arch(machine.arch());
        let pm = PerfMon::new(&machine, &[0]).unwrap();
        let e = table.find("UNC_L3_LINES_IN_ANY").unwrap();
        pm.setup(0, CounterSlot::UncorePmc(0), e).unwrap();
        pm.start(0).unwrap();
        let dev = machine.msr(0, MsrPermission::ReadOnly).unwrap();
        assert!(is_enabled(dev.read(Msr::MSR_UNCORE_PERFEVTSEL0).unwrap()));
        assert_eq!(pm.read(0, CounterSlot::UncorePmc(0)).unwrap(), 0);
    }

    #[test]
    fn amd_counters_use_the_amd_register_block() {
        let machine = SimMachine::new(MachinePreset::IstanbulH2S);
        let table = tables::for_arch(machine.arch());
        let pm = PerfMon::new(&machine, &[3]).unwrap();
        let e = table.find("RETIRED_INSTRUCTIONS").unwrap();
        pm.setup(3, CounterSlot::Pmc(2), e).unwrap();
        pm.start(3).unwrap();
        let dev = machine.msr(3, MsrPermission::ReadOnly).unwrap();
        assert!(is_enabled(dev.read(Msr::AMD_PERFEVTSEL0 + 2).unwrap()));
        pm.stop(3).unwrap();
        assert!(!is_enabled(dev.read(Msr::AMD_PERFEVTSEL0 + 2).unwrap()));
    }

    #[test]
    fn reset_zeroes_a_counter() {
        let machine = SimMachine::new(MachinePreset::NehalemEp2S);
        let pm = PerfMon::new(&machine, &[0]).unwrap();
        // Put a value into PMC0 directly through the machine side.
        machine.msr_file().increment(0, Msr::IA32_PMC0, 123).unwrap();
        assert_eq!(pm.read(0, CounterSlot::Pmc(0)).unwrap(), 123);
        pm.reset(0, CounterSlot::Pmc(0)).unwrap();
        assert_eq!(pm.read(0, CounterSlot::Pmc(0)).unwrap(), 0);
    }

    #[test]
    fn unknown_cpu_is_an_error() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        assert!(PerfMon::new(&machine, &[99]).is_err());
        let pm = PerfMon::new(&machine, &[0]).unwrap();
        assert!(pm.read(3, CounterSlot::Pmc(0)).is_err(), "cpu 3 was not opened by this monitor");
    }
}

//! Counter programming through the MSR interface.
//!
//! This is the layer of `likwid-perfCtr` that touches hardware registers: it
//! encodes `IA32_PERFEVTSELx` values, enables the fixed-counter and global
//! control registers, and reads counters back — all through an
//! [`MsrDevice`], i.e. through exactly the `rdmsr`/`wrmsr` traffic the real
//! tool generates through `/dev/cpu/<N>/msr`.

use likwid_x86_machine::{MachineError, Msr, MsrDevice, MsrPermission, SimMachine, Vendor};

use crate::event::{CounterSlot, EventDefinition};

/// Errors from counter programming.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PerfMonError {
    /// The underlying MSR access failed.
    Msr(MachineError),
    /// The requested counter slot does not exist on this architecture.
    NoSuchCounter(CounterSlot),
    /// The event cannot be scheduled on the requested counter slot.
    IncompatibleCounter {
        /// Event name.
        event: String,
        /// Requested slot.
        slot: CounterSlot,
    },
}

impl std::fmt::Display for PerfMonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PerfMonError::Msr(e) => write!(f, "MSR access failed: {e}"),
            PerfMonError::NoSuchCounter(slot) => write!(f, "no such counter {}", slot.name()),
            PerfMonError::IncompatibleCounter { event, slot } => {
                write!(f, "event {event} cannot be counted on {}", slot.name())
            }
        }
    }
}

impl std::error::Error for PerfMonError {}

impl From<MachineError> for PerfMonError {
    fn from(e: MachineError) -> Self {
        PerfMonError::Msr(e)
    }
}

/// Bit positions inside `IA32_PERFEVTSELx`.
pub mod evtsel {
    /// User-mode counting enable.
    pub const USR: u64 = 1 << 16;
    /// Kernel-mode counting enable.
    pub const OS: u64 = 1 << 17;
    /// Edge detection.
    pub const EDGE: u64 = 1 << 18;
    /// APIC interrupt on overflow.
    pub const INT: u64 = 1 << 20;
    /// Count for both SMT threads (Nehalem+).
    pub const ANY_THREAD: u64 = 1 << 21;
    /// Counter enable.
    pub const ENABLE: u64 = 1 << 22;
    /// Invert counter mask comparison.
    pub const INVERT: u64 = 1 << 23;
}

/// Encode a PERFEVTSEL value for an event: event code, umask, USR+OS and the
/// enable bit.
pub fn encode_evtsel(event: &EventDefinition, enabled: bool) -> u64 {
    let mut value =
        (event.event_code as u64 & 0xFF) | ((event.umask as u64) << 8) | evtsel::USR | evtsel::OS;
    if enabled {
        value |= evtsel::ENABLE;
    }
    value
}

/// Extract the `(event_code, umask)` selector from a PERFEVTSEL value.
pub fn decode_selector(evtsel_value: u64) -> u16 {
    (evtsel_value & 0xFFFF) as u16
}

/// Whether a PERFEVTSEL value has its enable bit set.
pub fn is_enabled(evtsel_value: u64) -> bool {
    evtsel_value & evtsel::ENABLE != 0
}

/// The MSR addresses backing one counter slot on a given vendor.
///
/// Returns `(select_register, counter_register)`; fixed counters have no
/// select register of their own (they are controlled by
/// `IA32_FIXED_CTR_CTRL`) and report `None`.
pub fn slot_registers(vendor: Vendor, slot: CounterSlot) -> (Option<u32>, u32) {
    match (vendor, slot) {
        (Vendor::Intel, CounterSlot::Pmc(n)) => {
            (Some(Msr::IA32_PERFEVTSEL0 + n as u32), Msr::IA32_PMC0 + n as u32)
        }
        (Vendor::Intel, CounterSlot::Fixed(n)) => (None, Msr::IA32_FIXED_CTR0 + n as u32),
        (Vendor::Intel, CounterSlot::UncorePmc(n)) => {
            (Some(Msr::MSR_UNCORE_PERFEVTSEL0 + n as u32), Msr::MSR_UNCORE_PMC0 + n as u32)
        }
        (Vendor::Intel, CounterSlot::UncoreFixed) => (None, Msr::MSR_UNCORE_FIXED_CTR0),
        (Vendor::Amd, CounterSlot::Pmc(n)) => {
            (Some(Msr::AMD_PERFEVTSEL0 + n as u32), Msr::AMD_PMC0 + n as u32)
        }
        // AMD parts in this suite have neither fixed nor uncore counters;
        // map them to the first PMC pair so that the error surfaces as an
        // incompatible-counter error at setup time instead of a bogus MSR.
        (Vendor::Amd, _) => (Some(Msr::AMD_PERFEVTSEL0), Msr::AMD_PMC0),
    }
}

/// Counter programming for the hardware threads of one machine.
///
/// A `PerfMon` owns one read-write MSR device per hardware thread it
/// measures, mirroring the real tool which opens one `/dev/cpu/<N>/msr` file
/// descriptor per measured core.
pub struct PerfMon {
    vendor: Vendor,
    devices: Vec<(usize, MsrDevice)>,
}

impl PerfMon {
    /// Open MSR devices for the given hardware threads.
    pub fn new(machine: &SimMachine, cpus: &[usize]) -> Result<Self, PerfMonError> {
        let mut devices = Vec::with_capacity(cpus.len());
        for &cpu in cpus {
            devices.push((cpu, machine.msr(cpu, MsrPermission::ReadWrite)?));
        }
        Ok(PerfMon { vendor: machine.vendor(), devices })
    }

    /// The hardware threads this monitor controls.
    pub fn cpus(&self) -> Vec<usize> {
        self.devices.iter().map(|(cpu, _)| *cpu).collect()
    }

    fn device(&self, cpu: usize) -> Result<&MsrDevice, PerfMonError> {
        self.devices
            .iter()
            .find(|(c, _)| *c == cpu)
            .map(|(_, d)| d)
            .ok_or(PerfMonError::NoSuchCounter(CounterSlot::Pmc(255)))
    }

    /// Program `event` into `slot` on hardware thread `cpu` (disabled; use
    /// [`PerfMon::start`] to enable all programmed counters atomically).
    pub fn setup(
        &self,
        cpu: usize,
        slot: CounterSlot,
        event: &EventDefinition,
    ) -> Result<(), PerfMonError> {
        let dev = self.device(cpu)?;
        let (select, counter) = slot_registers(self.vendor, slot);
        match slot {
            CounterSlot::Fixed(n) => {
                // Fixed counters are controlled by IA32_FIXED_CTR_CTRL: 4 bits
                // per counter, bits 0/1 enable OS/USR counting.
                let ctrl = dev.read(Msr::IA32_FIXED_CTR_CTRL)?;
                let shift = 4 * n as u32;
                dev.write(Msr::IA32_FIXED_CTR_CTRL, ctrl | (0b011 << shift))?;
                dev.write(counter, 0)?;
            }
            CounterSlot::UncoreFixed => {
                dev.write(Msr::MSR_UNCORE_FIXED_CTR_CTRL, 1)?;
                dev.write(counter, 0)?;
            }
            _ => {
                let select = select.expect("PMC slots have a select register");
                dev.write(select, encode_evtsel(event, false))?;
                dev.write(counter, 0)?;
            }
        }
        Ok(())
    }

    /// Enable counting on all programmed counters of `cpu`.
    pub fn start(&self, cpu: usize) -> Result<(), PerfMonError> {
        let dev = self.device(cpu)?;
        match self.vendor {
            Vendor::Intel => {
                // Set the enable bits in each programmed PERFEVTSEL, then the
                // global enable mask for PMCs and fixed counters.
                for n in 0..8u32 {
                    let addr = Msr::IA32_PERFEVTSEL0 + n;
                    match dev.read(addr) {
                        Ok(v) if v != 0 => dev.write(addr, v | evtsel::ENABLE)?,
                        Ok(_) => continue,
                        Err(_) => break,
                    }
                }
                // The global and uncore control registers do not exist on all
                // generations (Pentium M has neither); ignore their absence.
                let global = 0xF | (0x7 << 32);
                let _ = dev.write(Msr::IA32_PERF_GLOBAL_CTRL, global);
                let _ = dev.write(Msr::MSR_UNCORE_PERF_GLOBAL_CTRL, (1 << 32) | 0xFF);
                for n in 0..8u32 {
                    let addr = Msr::MSR_UNCORE_PERFEVTSEL0 + n;
                    if let Ok(v) = dev.read(addr) {
                        if v != 0 {
                            dev.write(addr, v | evtsel::ENABLE)?;
                        }
                    }
                }
            }
            Vendor::Amd => {
                for n in 0..4u32 {
                    let addr = Msr::AMD_PERFEVTSEL0 + n;
                    let v = dev.read(addr)?;
                    if v != 0 {
                        dev.write(addr, v | evtsel::ENABLE)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Disable counting on `cpu` (counters retain their values).
    pub fn stop(&self, cpu: usize) -> Result<(), PerfMonError> {
        let dev = self.device(cpu)?;
        match self.vendor {
            Vendor::Intel => {
                let _ = dev.write(Msr::IA32_PERF_GLOBAL_CTRL, 0);
                let _ = dev.write(Msr::MSR_UNCORE_PERF_GLOBAL_CTRL, 0);
                for n in 0..8u32 {
                    let addr = Msr::IA32_PERFEVTSEL0 + n;
                    match dev.read(addr) {
                        Ok(v) if v != 0 => dev.write(addr, v & !evtsel::ENABLE)?,
                        Ok(_) => continue,
                        Err(_) => break,
                    }
                }
                for n in 0..8u32 {
                    let addr = Msr::MSR_UNCORE_PERFEVTSEL0 + n;
                    if let Ok(v) = dev.read(addr) {
                        if v != 0 {
                            dev.write(addr, v & !evtsel::ENABLE)?;
                        }
                    }
                }
            }
            Vendor::Amd => {
                for n in 0..4u32 {
                    let addr = Msr::AMD_PERFEVTSEL0 + n;
                    let v = dev.read(addr)?;
                    if v != 0 {
                        dev.write(addr, v & !evtsel::ENABLE)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Read the current value of a counter slot on `cpu`.
    pub fn read(&self, cpu: usize, slot: CounterSlot) -> Result<u64, PerfMonError> {
        let dev = self.device(cpu)?;
        let (_, counter) = slot_registers(self.vendor, slot);
        Ok(dev.read(counter)?)
    }

    /// Reset a counter slot to zero on `cpu`.
    pub fn reset(&self, cpu: usize, slot: CounterSlot) -> Result<(), PerfMonError> {
        let dev = self.device(cpu)?;
        let (_, counter) = slot_registers(self.vendor, slot);
        Ok(dev.write(counter, 0)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables;
    use likwid_x86_machine::MachinePreset;

    #[test]
    fn evtsel_encoding_round_trips() {
        let t = tables::for_arch(likwid_x86_machine::Microarch::Core2);
        let e = t.find("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE").unwrap();
        let v = encode_evtsel(e, true);
        assert!(is_enabled(v));
        assert_eq!(decode_selector(v), e.selector());
        let v_off = encode_evtsel(e, false);
        assert!(!is_enabled(v_off));
    }

    #[test]
    fn setup_writes_the_expected_registers() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let table = tables::for_arch(machine.arch());
        let pm = PerfMon::new(&machine, &[1]).unwrap();
        let event = table.find("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE").unwrap();
        pm.setup(1, CounterSlot::Pmc(0), event).unwrap();

        let dev = machine.msr(1, MsrPermission::ReadOnly).unwrap();
        let sel = dev.read(Msr::IA32_PERFEVTSEL0).unwrap();
        assert_eq!(decode_selector(sel), event.selector());
        assert!(!is_enabled(sel), "setup leaves the counter disabled");

        pm.start(1).unwrap();
        assert!(is_enabled(dev.read(Msr::IA32_PERFEVTSEL0).unwrap()));
        assert_ne!(dev.read(Msr::IA32_PERF_GLOBAL_CTRL).unwrap(), 0);

        pm.stop(1).unwrap();
        assert!(!is_enabled(dev.read(Msr::IA32_PERFEVTSEL0).unwrap()));
        assert_eq!(dev.read(Msr::IA32_PERF_GLOBAL_CTRL).unwrap(), 0);
    }

    #[test]
    fn fixed_counter_setup_uses_the_fixed_ctrl_register() {
        let machine = SimMachine::new(MachinePreset::NehalemEp2S);
        let table = tables::for_arch(machine.arch());
        let pm = PerfMon::new(&machine, &[0]).unwrap();
        let instr = table.find("INSTR_RETIRED_ANY").unwrap();
        pm.setup(0, CounterSlot::Fixed(0), instr).unwrap();
        let dev = machine.msr(0, MsrPermission::ReadOnly).unwrap();
        assert_eq!(dev.read(Msr::IA32_FIXED_CTR_CTRL).unwrap() & 0xF, 0b011);
    }

    #[test]
    fn uncore_counter_setup_and_read() {
        let machine = SimMachine::new(MachinePreset::NehalemEp2S);
        let table = tables::for_arch(machine.arch());
        let pm = PerfMon::new(&machine, &[0]).unwrap();
        let e = table.find("UNC_L3_LINES_IN_ANY").unwrap();
        pm.setup(0, CounterSlot::UncorePmc(0), e).unwrap();
        pm.start(0).unwrap();
        let dev = machine.msr(0, MsrPermission::ReadOnly).unwrap();
        assert!(is_enabled(dev.read(Msr::MSR_UNCORE_PERFEVTSEL0).unwrap()));
        assert_eq!(pm.read(0, CounterSlot::UncorePmc(0)).unwrap(), 0);
    }

    #[test]
    fn amd_counters_use_the_amd_register_block() {
        let machine = SimMachine::new(MachinePreset::IstanbulH2S);
        let table = tables::for_arch(machine.arch());
        let pm = PerfMon::new(&machine, &[3]).unwrap();
        let e = table.find("RETIRED_INSTRUCTIONS").unwrap();
        pm.setup(3, CounterSlot::Pmc(2), e).unwrap();
        pm.start(3).unwrap();
        let dev = machine.msr(3, MsrPermission::ReadOnly).unwrap();
        assert!(is_enabled(dev.read(Msr::AMD_PERFEVTSEL0 + 2).unwrap()));
        pm.stop(3).unwrap();
        assert!(!is_enabled(dev.read(Msr::AMD_PERFEVTSEL0 + 2).unwrap()));
    }

    #[test]
    fn reset_zeroes_a_counter() {
        let machine = SimMachine::new(MachinePreset::NehalemEp2S);
        let pm = PerfMon::new(&machine, &[0]).unwrap();
        // Put a value into PMC0 directly through the machine side.
        machine.msr_file().increment(0, Msr::IA32_PMC0, 123).unwrap();
        assert_eq!(pm.read(0, CounterSlot::Pmc(0)).unwrap(), 123);
        pm.reset(0, CounterSlot::Pmc(0)).unwrap();
        assert_eq!(pm.read(0, CounterSlot::Pmc(0)).unwrap(), 0);
    }

    #[test]
    fn unknown_cpu_is_an_error() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        assert!(PerfMon::new(&machine, &[99]).is_err());
        let pm = PerfMon::new(&machine, &[0]).unwrap();
        assert!(pm.read(3, CounterSlot::Pmc(0)).is_err(), "cpu 3 was not opened by this monitor");
    }
}

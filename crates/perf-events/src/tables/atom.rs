//! Event table for the Intel Atom microarchitecture (Bonnell).
//!
//! Atom exposes the Core-2-style SIMD retired-instruction events and the
//! architectural fixed counters, with two general-purpose counters.

use crate::event::{CounterClass, EventTable};
use crate::kinds::HwEventKind;
use crate::tables::{ev, intel_fixed_events};

/// Build the Atom event table.
pub fn table() -> EventTable {
    let mut events = intel_fixed_events();
    events.extend([
        ev(
            "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE",
            0xCA,
            0x04,
            CounterClass::AnyPmc,
            HwEventKind::SimdPackedDouble,
        ),
        ev(
            "SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE",
            0xCA,
            0x08,
            CounterClass::AnyPmc,
            HwEventKind::SimdScalarDouble,
        ),
        ev(
            "SIMD_COMP_INST_RETIRED_PACKED_SINGLE",
            0xCA,
            0x01,
            CounterClass::AnyPmc,
            HwEventKind::SimdPackedSingle,
        ),
        ev(
            "SIMD_COMP_INST_RETIRED_SCALAR_SINGLE",
            0xCA,
            0x02,
            CounterClass::AnyPmc,
            HwEventKind::SimdScalarSingle,
        ),
        ev("L1D_CACHE_LD", 0x40, 0x21, CounterClass::AnyPmc, HwEventKind::L1Accesses),
        ev("L1D_CACHE_REPL", 0x45, 0x0F, CounterClass::AnyPmc, HwEventKind::L1Misses),
        ev("L1D_M_EVICT", 0x47, 0x00, CounterClass::AnyPmc, HwEventKind::L2LinesOut),
        ev("L2_LINES_IN_ANY", 0x24, 0x70, CounterClass::AnyPmc, HwEventKind::L2LinesIn),
        ev("L2_LINES_OUT_ANY", 0x26, 0x70, CounterClass::AnyPmc, HwEventKind::L2LinesOut),
        ev("L2_RQSTS_REFERENCES", 0x2E, 0x41, CounterClass::AnyPmc, HwEventKind::L2Accesses),
        ev("L2_RQSTS_MISS", 0x2E, 0x4F, CounterClass::AnyPmc, HwEventKind::L2Misses),
        ev(
            "BUS_TRANS_MEM_THIS_CORE_THIS_A",
            0x6F,
            0x40,
            CounterClass::AnyPmc,
            HwEventKind::MemoryReads,
        ),
        ev(
            "BUS_TRANS_WB_THIS_CORE_THIS_A",
            0x67,
            0x40,
            CounterClass::AnyPmc,
            HwEventKind::MemoryWrites,
        ),
        ev("INST_RETIRED_LOADS", 0xC0, 0x01, CounterClass::AnyPmc, HwEventKind::LoadsRetired),
        ev("INST_RETIRED_STORES", 0xC0, 0x02, CounterClass::AnyPmc, HwEventKind::StoresRetired),
        ev("BR_INST_RETIRED_ANY", 0xC4, 0x00, CounterClass::AnyPmc, HwEventKind::BranchesRetired),
        ev(
            "BR_INST_RETIRED_MISPRED",
            0xC5,
            0x00,
            CounterClass::AnyPmc,
            HwEventKind::BranchMispredictions,
        ),
        ev("DATA_TLB_MISSES_DTLB_MISS", 0x08, 0x07, CounterClass::AnyPmc, HwEventKind::DtlbMisses),
    ]);
    EventTable {
        arch_name: "Intel Atom",
        num_pmc: 2,
        num_fixed: 3,
        num_uncore_pmc: 0,
        pmc_bits: 40,
        fixed_bits: 44,
        uncore_bits: 0,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_supports_the_flops_dp_events() {
        let t = table();
        assert!(t.has_event("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE"));
        assert!(t.has_event("SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE"));
        assert_eq!(t.num_pmc, 2);
    }
}

//! Event table for the Intel Core 2 microarchitecture (Merom/Penryn).
//!
//! This is the architecture of the paper's marker-API listing: the
//! `SIMD_COMP_INST_RETIRED_*` events measure retired computational SSE
//! instructions, and the fixed counters provide `INSTR_RETIRED_ANY` and
//! `CPU_CLK_UNHALTED_CORE` "for free".

use crate::event::{CounterClass, EventTable};
use crate::kinds::HwEventKind;
use crate::tables::{ev, intel_fixed_events};

/// Build the Core 2 event table.
pub fn table() -> EventTable {
    let mut events = intel_fixed_events();
    events.extend([
        // Floating point (the FLOPS_DP / FLOPS_SP groups).
        ev(
            "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE",
            0xCA,
            0x04,
            CounterClass::AnyPmc,
            HwEventKind::SimdPackedDouble,
        ),
        ev(
            "SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE",
            0xCA,
            0x08,
            CounterClass::AnyPmc,
            HwEventKind::SimdScalarDouble,
        ),
        ev(
            "SIMD_COMP_INST_RETIRED_PACKED_SINGLE",
            0xCA,
            0x01,
            CounterClass::AnyPmc,
            HwEventKind::SimdPackedSingle,
        ),
        ev(
            "SIMD_COMP_INST_RETIRED_SCALAR_SINGLE",
            0xCA,
            0x02,
            CounterClass::AnyPmc,
            HwEventKind::SimdScalarSingle,
        ),
        // L1 data cache (CACHE group, L2 bandwidth group).
        ev("L1D_ALL_REF", 0x43, 0x01, CounterClass::AnyPmc, HwEventKind::L1Accesses),
        ev("L1D_REPL", 0x45, 0x0F, CounterClass::AnyPmc, HwEventKind::L1Misses),
        ev("L1D_M_EVICT", 0x47, 0x00, CounterClass::AnyPmc, HwEventKind::L2LinesOut),
        // L2 cache (L2CACHE group and L3-less bandwidth estimates).
        ev("L2_LINES_IN_ANY", 0x24, 0x70, CounterClass::AnyPmc, HwEventKind::L2LinesIn),
        ev("L2_LINES_OUT_ANY", 0x26, 0x70, CounterClass::AnyPmc, HwEventKind::L2LinesOut),
        ev("L2_RQSTS_REFERENCES", 0x2E, 0x41, CounterClass::AnyPmc, HwEventKind::L2Accesses),
        ev("L2_RQSTS_MISS", 0x2E, 0x4F, CounterClass::AnyPmc, HwEventKind::L2Misses),
        // Memory (front-side bus transactions; MEM group on Core 2).
        ev(
            "BUS_TRANS_MEM_THIS_CORE_THIS_A",
            0x6F,
            0x40,
            CounterClass::AnyPmc,
            HwEventKind::MemoryReads,
        ),
        ev(
            "BUS_TRANS_WB_THIS_CORE_THIS_A",
            0x67,
            0x40,
            CounterClass::AnyPmc,
            HwEventKind::MemoryWrites,
        ),
        // Loads and stores (DATA group).
        ev("INST_RETIRED_LOADS", 0xC0, 0x01, CounterClass::AnyPmc, HwEventKind::LoadsRetired),
        ev("INST_RETIRED_STORES", 0xC0, 0x02, CounterClass::AnyPmc, HwEventKind::StoresRetired),
        // Branches (BRANCH group).
        ev("BR_INST_RETIRED_ANY", 0xC4, 0x00, CounterClass::AnyPmc, HwEventKind::BranchesRetired),
        ev(
            "BR_INST_RETIRED_MISPRED",
            0xC5,
            0x00,
            CounterClass::AnyPmc,
            HwEventKind::BranchMispredictions,
        ),
        // TLB (TLB group).
        ev("DTLB_MISSES_ANY", 0x08, 0x01, CounterClass::AnyPmc, HwEventKind::DtlbMisses),
    ]);
    EventTable {
        arch_name: "Intel Core 2",
        num_pmc: 2,
        num_fixed: 3,
        num_uncore_pmc: 0,
        pmc_bits: 40,
        fixed_bits: 44,
        uncore_bits: 0,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_and_scalar_double_have_distinct_selectors() {
        let t = table();
        let packed = t.find("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE").unwrap();
        let scalar = t.find("SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE").unwrap();
        assert_ne!(packed.selector(), scalar.selector());
        assert_eq!(packed.event_code, 0xCA);
        assert_eq!(packed.umask, 0x04);
    }

    #[test]
    fn core2_has_two_general_purpose_counters() {
        let t = table();
        assert_eq!(t.num_pmc, 2);
        let slots = t.allowed_slots(t.find("L1D_REPL").unwrap());
        assert_eq!(slots.len(), 2);
    }

    #[test]
    fn no_uncore_events_on_core2() {
        let t = table();
        assert_eq!(t.num_uncore_pmc, 0);
        assert!(t.events.iter().all(|e| !matches!(
            e.counters,
            CounterClass::AnyUncorePmc | CounterClass::UncoreFixed
        )));
    }
}

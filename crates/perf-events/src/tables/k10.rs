//! Event table for the AMD K10 family (Barcelona, Shanghai, Istanbul).
//!
//! AMD parts have four symmetric general-purpose counters, no fixed
//! counters and — in this generation — no separately counted uncore; the
//! L3 and DRAM events are exposed through the core counters (on real
//! hardware they are northbridge events readable from any core of the
//! package).

use crate::event::{CounterClass, EventTable};
use crate::kinds::HwEventKind;
use crate::tables::ev;

/// Build the K10 event table.
pub fn table() -> EventTable {
    let events = vec![
        ev(
            "RETIRED_INSTRUCTIONS",
            0xC0,
            0x00,
            CounterClass::AnyPmc,
            HwEventKind::InstructionsRetired,
        ),
        ev("CPU_CLOCKS_UNHALTED", 0x76, 0x00, CounterClass::AnyPmc, HwEventKind::CoreCycles),
        // Floating point: retired SSE operations split by precision and width.
        ev(
            "RETIRED_SSE_OPS_PACKED_DOUBLE",
            0x03,
            0x10,
            CounterClass::AnyPmc,
            HwEventKind::SimdPackedDouble,
        ),
        ev(
            "RETIRED_SSE_OPS_SCALAR_DOUBLE",
            0x03,
            0x20,
            CounterClass::AnyPmc,
            HwEventKind::SimdScalarDouble,
        ),
        ev(
            "RETIRED_SSE_OPS_PACKED_SINGLE",
            0x03,
            0x01,
            CounterClass::AnyPmc,
            HwEventKind::SimdPackedSingle,
        ),
        ev(
            "RETIRED_SSE_OPS_SCALAR_SINGLE",
            0x03,
            0x02,
            CounterClass::AnyPmc,
            HwEventKind::SimdScalarSingle,
        ),
        // Data cache.
        ev("DATA_CACHE_ACCESSES", 0x40, 0x00, CounterClass::AnyPmc, HwEventKind::L1Accesses),
        ev(
            "DATA_CACHE_REFILLS_L2_OR_NORTHBRIDGE",
            0x42,
            0x1E,
            CounterClass::AnyPmc,
            HwEventKind::L1Misses,
        ),
        ev("DATA_CACHE_EVICTED_ALL", 0x44, 0x3F, CounterClass::AnyPmc, HwEventKind::L2LinesOut),
        // L2.
        ev("L2_REQUESTS_ALL", 0x7D, 0x1F, CounterClass::AnyPmc, HwEventKind::L2Accesses),
        ev("L2_MISSES_ALL", 0x7E, 0x1F, CounterClass::AnyPmc, HwEventKind::L2Misses),
        ev("L2_FILL_WRITEBACK_FILLS", 0x7F, 0x01, CounterClass::AnyPmc, HwEventKind::L2LinesIn),
        // L3 (northbridge).
        ev(
            "L3_READ_REQUEST_ALL_ALL_CORES",
            0xE0,
            0xF7,
            CounterClass::AnyPmc,
            HwEventKind::L3Accesses,
        ),
        ev("L3_MISSES_ALL_ALL_CORES", 0xE1, 0xF7, CounterClass::AnyPmc, HwEventKind::L3Misses),
        ev("L3_FILLS_ALL_ALL_CORES", 0xE2, 0xF7, CounterClass::AnyPmc, HwEventKind::L3LinesIn),
        ev("L3_EVICTIONS_ALL_ALL_CORES", 0xE3, 0xF7, CounterClass::AnyPmc, HwEventKind::L3LinesOut),
        // DRAM controller.
        ev("DRAM_ACCESSES_DCT0_ALL", 0xE8, 0x07, CounterClass::AnyPmc, HwEventKind::MemoryReads),
        ev("DRAM_ACCESSES_DCT1_ALL", 0xE9, 0x07, CounterClass::AnyPmc, HwEventKind::MemoryWrites),
        // Loads/stores.
        ev("LS_DISPATCH_LOADS", 0x29, 0x01, CounterClass::AnyPmc, HwEventKind::LoadsRetired),
        ev("LS_DISPATCH_STORES", 0x29, 0x02, CounterClass::AnyPmc, HwEventKind::StoresRetired),
        // Branches.
        ev("RETIRED_BRANCH_INSTR", 0xC2, 0x00, CounterClass::AnyPmc, HwEventKind::BranchesRetired),
        ev(
            "RETIRED_MISPREDICTED_BRANCH_INSTR",
            0xC3,
            0x00,
            CounterClass::AnyPmc,
            HwEventKind::BranchMispredictions,
        ),
        // TLB.
        ev("DTLB_L2_MISS_ALL", 0x46, 0x07, CounterClass::AnyPmc, HwEventKind::DtlbMisses),
    ];
    EventTable {
        arch_name: "AMD K10",
        num_pmc: 4,
        num_fixed: 0,
        num_uncore_pmc: 0,
        pmc_bits: 48,
        fixed_bits: 0,
        uncore_bits: 0,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k10_has_four_symmetric_counters_and_no_fixed() {
        let t = table();
        assert_eq!(t.num_pmc, 4);
        assert_eq!(t.num_fixed, 0);
        assert_eq!(t.allowed_slots(t.find("RETIRED_INSTRUCTIONS").unwrap()).len(), 4);
    }

    #[test]
    fn k10_exposes_l3_events_through_core_counters() {
        let t = table();
        let e = t.find("L3_FILLS_ALL_ALL_CORES").unwrap();
        assert!(matches!(e.counters, CounterClass::AnyPmc));
        assert_eq!(e.kind, HwEventKind::L3LinesIn);
    }
}

//! Event table for the AMD K8 family (Opteron / Athlon 64).
//!
//! K8 is the L3-less predecessor of K10: the same four-counter layout, but
//! no on-die L3 and a narrower floating-point event set.

use crate::event::{CounterClass, EventTable};
use crate::kinds::HwEventKind;
use crate::tables::ev;

/// Build the K8 event table.
pub fn table() -> EventTable {
    let events = vec![
        ev(
            "RETIRED_INSTRUCTIONS",
            0xC0,
            0x00,
            CounterClass::AnyPmc,
            HwEventKind::InstructionsRetired,
        ),
        ev("CPU_CLOCKS_UNHALTED", 0x76, 0x00, CounterClass::AnyPmc, HwEventKind::CoreCycles),
        ev(
            "DISPATCHED_FPU_OPS_ADD_MUL",
            0x00,
            0x03,
            CounterClass::AnyPmc,
            HwEventKind::SimdScalarDouble,
        ),
        ev(
            "SSE_PACKED_DOUBLE_OPS",
            0xCB,
            0x04,
            CounterClass::AnyPmc,
            HwEventKind::SimdPackedDouble,
        ),
        ev(
            "SSE_PACKED_SINGLE_OPS",
            0xCB,
            0x01,
            CounterClass::AnyPmc,
            HwEventKind::SimdPackedSingle,
        ),
        ev(
            "SSE_SCALAR_SINGLE_OPS",
            0xCB,
            0x02,
            CounterClass::AnyPmc,
            HwEventKind::SimdScalarSingle,
        ),
        ev("DATA_CACHE_ACCESSES", 0x40, 0x00, CounterClass::AnyPmc, HwEventKind::L1Accesses),
        ev(
            "DATA_CACHE_REFILLS_L2_OR_SYSTEM",
            0x42,
            0x1E,
            CounterClass::AnyPmc,
            HwEventKind::L1Misses,
        ),
        ev("DATA_CACHE_EVICTED", 0x44, 0x3F, CounterClass::AnyPmc, HwEventKind::L2LinesOut),
        ev("L2_REQUESTS_ALL", 0x7D, 0x1F, CounterClass::AnyPmc, HwEventKind::L2Accesses),
        ev("L2_MISSES_ALL", 0x7E, 0x1F, CounterClass::AnyPmc, HwEventKind::L2Misses),
        ev("L2_FILL_WRITEBACK_FILLS", 0x7F, 0x01, CounterClass::AnyPmc, HwEventKind::L2LinesIn),
        ev("DRAM_ACCESSES_PAGE_HIT", 0xE0, 0x01, CounterClass::AnyPmc, HwEventKind::MemoryReads),
        ev("DRAM_ACCESSES_PAGE_MISS", 0xE0, 0x06, CounterClass::AnyPmc, HwEventKind::MemoryWrites),
        ev("LS_DISPATCH_LOADS", 0x29, 0x01, CounterClass::AnyPmc, HwEventKind::LoadsRetired),
        ev("LS_DISPATCH_STORES", 0x29, 0x02, CounterClass::AnyPmc, HwEventKind::StoresRetired),
        ev("RETIRED_BRANCH_INSTR", 0xC2, 0x00, CounterClass::AnyPmc, HwEventKind::BranchesRetired),
        ev(
            "RETIRED_MISPREDICTED_BRANCH_INSTR",
            0xC3,
            0x00,
            CounterClass::AnyPmc,
            HwEventKind::BranchMispredictions,
        ),
        ev("DTLB_L2_MISS", 0x46, 0x00, CounterClass::AnyPmc, HwEventKind::DtlbMisses),
    ];
    EventTable {
        arch_name: "AMD K8",
        num_pmc: 4,
        num_fixed: 0,
        num_uncore_pmc: 0,
        pmc_bits: 48,
        fixed_bits: 0,
        uncore_bits: 0,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k8_has_no_l3_events() {
        let t = table();
        assert!(t.event_names().iter().all(|n| !n.starts_with("L3_")));
        assert_eq!(t.num_pmc, 4);
    }
}

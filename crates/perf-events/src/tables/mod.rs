//! Per-microarchitecture event tables.
//!
//! Each submodule mirrors one of LIKWID's per-architecture event header
//! files: the documented event names of that CPU generation together with
//! their event-select codes, unit masks, and the counters that can carry
//! them. [`for_arch`] returns the table matching a
//! [`likwid_x86_machine::Microarch`], which is how `likwid-perfctr`
//! dispatches after CPU identification.
//!
//! Event codes follow the vendor documentation where the exact value
//! matters for the reproduced experiments (fixed counters, SIMD retired
//! instruction events, the Nehalem uncore L3/QMC events of Table II); for
//! the remaining events the codes are representative. The simulator keys
//! its counting on the `(code, umask)` selector, so all that is required
//! for correctness is that selectors are unique per architecture — a
//! property the tests check for every table.

use likwid_x86_machine::Microarch;

use crate::event::{CounterClass, EventDefinition, EventTable};
use crate::kinds::HwEventKind;

pub mod atom;
pub mod core2;
pub mod k10;
pub mod k8;
pub mod nehalem;
pub mod pentium_m;
pub mod westmere;

/// Shorthand used by the per-architecture tables.
pub(crate) fn ev(
    name: &'static str,
    event_code: u16,
    umask: u8,
    counters: CounterClass,
    kind: HwEventKind,
) -> EventDefinition {
    EventDefinition { name, event_code, umask, counters, kind }
}

/// The event table for a microarchitecture.
pub fn for_arch(arch: Microarch) -> EventTable {
    match arch {
        Microarch::PentiumM => pentium_m::table(),
        Microarch::Atom => atom::table(),
        Microarch::Core2 => core2::table(),
        Microarch::NehalemEp => nehalem::table(),
        Microarch::WestmereEp => westmere::table(),
        Microarch::K8 => k8::table(),
        Microarch::K10 => k10::table(),
    }
}

/// The Intel fixed-counter events shared by Core 2 and newer (the events the
/// paper notes are "always counted" so that CPI is available for free).
pub(crate) fn intel_fixed_events() -> Vec<EventDefinition> {
    vec![
        ev(
            "INSTR_RETIRED_ANY",
            0xC0,
            0x00,
            CounterClass::Fixed(0),
            HwEventKind::InstructionsRetired,
        ),
        ev("CPU_CLK_UNHALTED_CORE", 0x3C, 0x00, CounterClass::Fixed(1), HwEventKind::CoreCycles),
        ev(
            "CPU_CLK_UNHALTED_REF",
            0x3C,
            0x01,
            CounterClass::Fixed(2),
            HwEventKind::ReferenceCycles,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_arch_has_a_table_with_unique_names_and_selectors() {
        for &arch in Microarch::all() {
            let table = for_arch(arch);
            assert!(!table.events.is_empty(), "{arch:?} table is empty");

            let mut names: Vec<&str> = table.events.iter().map(|e| e.name).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(before, names.len(), "{arch:?} has duplicate event names");

            // Selectors must be unique within the core and uncore spaces.
            for uncore in [false, true] {
                let mut sels: Vec<u16> = table
                    .events
                    .iter()
                    .filter(|e| {
                        matches!(e.counters, CounterClass::AnyUncorePmc | CounterClass::UncoreFixed)
                            == uncore
                    })
                    .map(|e| e.selector())
                    .collect();
                sels.sort_unstable();
                let before = sels.len();
                sels.dedup();
                assert_eq!(
                    before,
                    sels.len(),
                    "{arch:?} has duplicate selectors (uncore={uncore})"
                );
            }
        }
    }

    #[test]
    fn counter_counts_match_the_machine_description() {
        for &arch in Microarch::all() {
            let table = for_arch(arch);
            assert_eq!(table.num_pmc, arch.num_pmc(), "{arch:?} PMC count");
            assert_eq!(table.num_fixed, arch.num_fixed_counters(), "{arch:?} fixed count");
            assert_eq!(table.num_uncore_pmc, arch.num_uncore_pmc(), "{arch:?} uncore count");
        }
    }

    #[test]
    fn counter_widths_match_the_msr_register_map() {
        // The session layer corrects wraparound using the widths advertised
        // here, so they must agree with the widths the MSR substrate
        // actually wraps at.
        use likwid_x86_machine::msr::{register_map, Msr};
        for &arch in Microarch::all() {
            let table = for_arch(arch);
            let map = register_map(arch);
            let width_of = |address: u32| {
                map.iter().find(|d| d.address == address).map(|d| d.width).unwrap_or(0)
            };
            let pmc0 = match arch {
                Microarch::K8 | Microarch::K10 => Msr::AMD_PMC0,
                _ => Msr::IA32_PMC0,
            };
            assert_eq!(table.pmc_bits, width_of(pmc0), "{arch:?} PMC width");
            assert_eq!(table.fixed_bits, width_of(Msr::IA32_FIXED_CTR0), "{arch:?} fixed width");
            assert_eq!(table.uncore_bits, width_of(Msr::MSR_UNCORE_PMC0), "{arch:?} uncore width");
            assert_eq!(
                table.uncore_bits,
                width_of(Msr::MSR_UNCORE_FIXED_CTR0),
                "{arch:?} uncore fixed width"
            );
        }
    }

    #[test]
    fn the_papers_core2_events_exist() {
        let t = for_arch(Microarch::Core2);
        for name in [
            "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE",
            "SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE",
            "INSTR_RETIRED_ANY",
            "CPU_CLK_UNHALTED_CORE",
        ] {
            assert!(t.has_event(name), "Core 2 table is missing {name}");
        }
    }

    #[test]
    fn the_papers_nehalem_uncore_events_exist() {
        let t = for_arch(Microarch::NehalemEp);
        for name in ["UNC_L3_LINES_IN_ANY", "UNC_L3_LINES_OUT_ANY"] {
            assert!(t.has_event(name), "Nehalem table is missing {name}");
            let e = t.find(name).unwrap();
            assert!(matches!(e.counters, CounterClass::AnyUncorePmc));
        }
    }

    #[test]
    fn fixed_events_only_exist_on_architectures_with_fixed_counters() {
        for &arch in Microarch::all() {
            let t = for_arch(arch);
            let has_fixed_event =
                t.events.iter().any(|e| matches!(e.counters, CounterClass::Fixed(_)));
            assert_eq!(
                has_fixed_event,
                arch.num_fixed_counters() > 0,
                "{arch:?} fixed-event presence mismatch"
            );
        }
    }

    #[test]
    fn every_documented_event_resolves_to_a_valid_counter_assignment() {
        use crate::event::CounterSlot;
        for &arch in Microarch::all() {
            let table = for_arch(arch);
            for event in &table.events {
                let slots = table.allowed_slots(event);
                assert!(
                    !slots.is_empty(),
                    "{arch:?} event {} has no counter it can be scheduled on",
                    event.name
                );
                for slot in slots {
                    // Every advertised slot must exist on the machine.
                    match slot {
                        CounterSlot::Pmc(n) => assert!(
                            (n as usize) < table.num_pmc,
                            "{arch:?} {}: PMC{n} beyond num_pmc={}",
                            event.name,
                            table.num_pmc
                        ),
                        CounterSlot::Fixed(n) => assert!(
                            (n as usize) < table.num_fixed,
                            "{arch:?} {}: FIXC{n} beyond num_fixed={}",
                            event.name,
                            table.num_fixed
                        ),
                        CounterSlot::UncorePmc(n) => assert!(
                            (n as usize) < table.num_uncore_pmc,
                            "{arch:?} {}: UPMC{n} beyond num_uncore_pmc={}",
                            event.name,
                            table.num_uncore_pmc
                        ),
                        CounterSlot::UncoreFixed => assert!(
                            arch.has_uncore(),
                            "{arch:?} {}: UPMCFIX on a machine without an uncore",
                            event.name
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn selector_lookup_round_trips_for_every_event() {
        for &arch in Microarch::all() {
            let table = for_arch(arch);
            for event in &table.events {
                let uncore = matches!(
                    event.counters,
                    CounterClass::AnyUncorePmc | CounterClass::UncoreFixed
                );
                let found = table
                    .find_by_selector(event.selector(), uncore)
                    .unwrap_or_else(|| panic!("{arch:?} {} lost by selector lookup", event.name));
                assert_eq!(found.name, event.name, "{arch:?} selector collision");
            }
        }
    }

    #[test]
    fn uncore_events_only_exist_on_uncore_architectures() {
        for &arch in Microarch::all() {
            let t = for_arch(arch);
            let has_uncore = t.events.iter().any(|e| {
                matches!(e.counters, CounterClass::AnyUncorePmc | CounterClass::UncoreFixed)
            });
            assert_eq!(has_uncore, arch.has_uncore(), "{arch:?} uncore-event presence mismatch");
        }
    }
}

//! Event table for the Intel Nehalem EP microarchitecture.
//!
//! Nehalem introduces the uncore: the L3 cache and the integrated memory
//! controller are package-level resources with their own counters. The
//! uncore events `UNC_L3_LINES_IN_ANY` / `UNC_L3_LINES_OUT_ANY` are the ones
//! measured in Table II of the paper, and the `UNC_QMC_*` events provide the
//! memory bandwidth of the MEM group.

use crate::event::{CounterClass, EventTable};
use crate::kinds::HwEventKind;
use crate::tables::{ev, intel_fixed_events};

/// Build the Nehalem EP event table.
pub fn table() -> EventTable {
    let mut events = intel_fixed_events();
    events.extend(core_events());
    events.extend(uncore_events());
    EventTable {
        arch_name: "Intel Nehalem EP",
        num_pmc: 4,
        num_fixed: 3,
        num_uncore_pmc: 8,
        pmc_bits: 48,
        fixed_bits: 44,
        uncore_bits: 48,
        events,
    }
}

/// Core (per hardware thread) events shared by Nehalem and Westmere.
pub(crate) fn core_events() -> Vec<crate::event::EventDefinition> {
    vec![
        // Floating point.
        ev(
            "FP_COMP_OPS_EXE_SSE_FP_PACKED",
            0x10,
            0x10,
            CounterClass::AnyPmc,
            HwEventKind::SimdPackedDouble,
        ),
        ev(
            "FP_COMP_OPS_EXE_SSE_FP_SCALAR",
            0x10,
            0x20,
            CounterClass::AnyPmc,
            HwEventKind::SimdScalarDouble,
        ),
        ev(
            "FP_COMP_OPS_EXE_SSE_SINGLE_PRECISION",
            0x10,
            0x40,
            CounterClass::AnyPmc,
            HwEventKind::SimdPackedSingle,
        ),
        ev(
            "FP_COMP_OPS_EXE_SSE_DOUBLE_PRECISION",
            0x10,
            0x80,
            CounterClass::AnyPmc,
            HwEventKind::SimdScalarSingle,
        ),
        // L1 / L2 traffic.
        ev("L1D_ALL_REF_ANY", 0x43, 0x01, CounterClass::AnyPmc, HwEventKind::L1Accesses),
        ev("L1D_REPL", 0x51, 0x01, CounterClass::AnyPmc, HwEventKind::L1Misses),
        ev("L1D_M_EVICT", 0x51, 0x04, CounterClass::AnyPmc, HwEventKind::L2LinesOut),
        ev("L2_LINES_IN_ANY", 0xF1, 0x07, CounterClass::AnyPmc, HwEventKind::L2LinesIn),
        ev("L2_LINES_OUT_ANY", 0xF2, 0x0F, CounterClass::AnyPmc, HwEventKind::L2LinesOut),
        ev("L2_RQSTS_REFERENCES", 0x24, 0xFF, CounterClass::AnyPmc, HwEventKind::L2Accesses),
        ev("L2_RQSTS_MISS", 0x24, 0xAA, CounterClass::AnyPmc, HwEventKind::L2Misses),
        // Loads/stores.
        ev("MEM_INST_RETIRED_LOADS", 0x0B, 0x01, CounterClass::AnyPmc, HwEventKind::LoadsRetired),
        ev("MEM_INST_RETIRED_STORES", 0x0B, 0x02, CounterClass::AnyPmc, HwEventKind::StoresRetired),
        // Branches.
        ev(
            "BR_INST_RETIRED_ALL_BRANCHES",
            0xC4,
            0x04,
            CounterClass::AnyPmc,
            HwEventKind::BranchesRetired,
        ),
        ev(
            "BR_MISP_RETIRED_ALL_BRANCHES",
            0xC5,
            0x04,
            CounterClass::AnyPmc,
            HwEventKind::BranchMispredictions,
        ),
        // TLB.
        ev("DTLB_MISSES_ANY", 0x49, 0x01, CounterClass::AnyPmc, HwEventKind::DtlbMisses),
    ]
}

/// Uncore (per package) events shared by Nehalem and Westmere.
pub(crate) fn uncore_events() -> Vec<crate::event::EventDefinition> {
    vec![
        ev("UNC_L3_HITS_ANY", 0x08, 0x03, CounterClass::AnyUncorePmc, HwEventKind::L3Accesses),
        ev("UNC_L3_MISS_ANY", 0x09, 0x03, CounterClass::AnyUncorePmc, HwEventKind::L3Misses),
        ev("UNC_L3_LINES_IN_ANY", 0x0A, 0x0F, CounterClass::AnyUncorePmc, HwEventKind::L3LinesIn),
        ev("UNC_L3_LINES_OUT_ANY", 0x0B, 0x0F, CounterClass::AnyUncorePmc, HwEventKind::L3LinesOut),
        ev(
            "UNC_QMC_NORMAL_READS_ANY",
            0x2C,
            0x07,
            CounterClass::AnyUncorePmc,
            HwEventKind::MemoryReads,
        ),
        ev(
            "UNC_QMC_WRITES_FULL_ANY",
            0x2D,
            0x07,
            CounterClass::AnyUncorePmc,
            HwEventKind::MemoryWrites,
        ),
        ev("UNC_CLK_UNHALTED", 0x00, 0x01, CounterClass::UncoreFixed, HwEventKind::UncoreCycles),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_events_are_uncore_events() {
        let t = table();
        for name in ["UNC_L3_LINES_IN_ANY", "UNC_L3_LINES_OUT_ANY"] {
            let e = t.find(name).unwrap();
            assert!(matches!(e.counters, CounterClass::AnyUncorePmc), "{name} must be uncore");
        }
    }

    #[test]
    fn nehalem_has_four_pmcs_and_eight_uncore_pmcs() {
        let t = table();
        assert_eq!(t.num_pmc, 4);
        assert_eq!(t.num_uncore_pmc, 8);
        assert_eq!(t.allowed_slots(t.find("L1D_REPL").unwrap()).len(), 4);
        assert_eq!(t.allowed_slots(t.find("UNC_L3_LINES_IN_ANY").unwrap()).len(), 8);
    }

    #[test]
    fn memory_bandwidth_events_exist() {
        let t = table();
        assert!(t.has_event("UNC_QMC_NORMAL_READS_ANY"));
        assert!(t.has_event("UNC_QMC_WRITES_FULL_ANY"));
    }
}

//! Event table for the Intel Pentium M microarchitecture (Banias/Dothan).
//!
//! Pentium M predates the architectural fixed counters: instructions and
//! cycles are ordinary programmable events competing for the two counters,
//! exactly the constraint that motivates the multiplexing mode.

use crate::event::{CounterClass, EventTable};
use crate::kinds::HwEventKind;
use crate::tables::ev;

/// Build the Pentium M event table.
pub fn table() -> EventTable {
    let events = vec![
        ev("INSTR_RETIRED_ANY", 0xC0, 0x00, CounterClass::AnyPmc, HwEventKind::InstructionsRetired),
        ev("CPU_CLK_UNHALTED", 0x79, 0x00, CounterClass::AnyPmc, HwEventKind::CoreCycles),
        ev(
            "EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_DP",
            0xD8,
            0x04,
            CounterClass::AnyPmc,
            HwEventKind::SimdPackedDouble,
        ),
        ev(
            "EMON_SSE_SSE2_COMP_INST_RETIRED_SCALAR_DP",
            0xD8,
            0x08,
            CounterClass::AnyPmc,
            HwEventKind::SimdScalarDouble,
        ),
        ev(
            "EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_SP",
            0xD8,
            0x01,
            CounterClass::AnyPmc,
            HwEventKind::SimdPackedSingle,
        ),
        ev(
            "EMON_SSE_SSE2_COMP_INST_RETIRED_SCALAR_SP",
            0xD8,
            0x02,
            CounterClass::AnyPmc,
            HwEventKind::SimdScalarSingle,
        ),
        ev("DATA_MEM_REFS", 0x43, 0x00, CounterClass::AnyPmc, HwEventKind::L1Accesses),
        ev("DCU_LINES_IN", 0x45, 0x00, CounterClass::AnyPmc, HwEventKind::L1Misses),
        ev("L2_LINES_IN", 0x24, 0x00, CounterClass::AnyPmc, HwEventKind::L2LinesIn),
        ev("L2_LINES_OUT", 0x26, 0x00, CounterClass::AnyPmc, HwEventKind::L2LinesOut),
        ev("L2_RQSTS", 0x2E, 0x41, CounterClass::AnyPmc, HwEventKind::L2Accesses),
        ev("L2_RQSTS_MISS", 0x2E, 0x4F, CounterClass::AnyPmc, HwEventKind::L2Misses),
        ev("BUS_TRAN_MEM", 0x6F, 0x00, CounterClass::AnyPmc, HwEventKind::MemoryReads),
        ev("BR_INST_RETIRED", 0xC4, 0x00, CounterClass::AnyPmc, HwEventKind::BranchesRetired),
        ev(
            "BR_MISS_PRED_RETIRED",
            0xC5,
            0x00,
            CounterClass::AnyPmc,
            HwEventKind::BranchMispredictions,
        ),
        ev("DTLB_MISS", 0x49, 0x00, CounterClass::AnyPmc, HwEventKind::DtlbMisses),
    ];
    EventTable {
        arch_name: "Intel Pentium M",
        num_pmc: 2,
        num_fixed: 0,
        num_uncore_pmc: 0,
        pmc_bits: 40,
        fixed_bits: 0,
        uncore_bits: 0,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pentium_m_has_no_fixed_counters() {
        let t = table();
        assert_eq!(t.num_fixed, 0);
        // Instructions/cycles are programmable events here.
        assert!(matches!(t.find("INSTR_RETIRED_ANY").unwrap().counters, CounterClass::AnyPmc));
        assert!(matches!(t.find("CPU_CLK_UNHALTED").unwrap().counters, CounterClass::AnyPmc));
    }
}

//! Event table for the Intel Westmere EP microarchitecture.
//!
//! Westmere is the 32 nm shrink of Nehalem; its core and uncore event sets
//! are, for the events used by the preconfigured groups, identical to
//! Nehalem's. LIKWID handles the two generations with largely shared tables
//! and so does this reproduction.

use crate::event::EventTable;
use crate::tables::{intel_fixed_events, nehalem};

/// Build the Westmere EP event table.
pub fn table() -> EventTable {
    let mut events = intel_fixed_events();
    events.extend(nehalem::core_events());
    events.extend(nehalem::uncore_events());
    EventTable {
        arch_name: "Intel Westmere EP",
        num_pmc: 4,
        num_fixed: 3,
        num_uncore_pmc: 8,
        pmc_bits: 48,
        fixed_bits: 44,
        uncore_bits: 48,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn westmere_carries_the_nehalem_event_set() {
        let w = table();
        let n = nehalem::table();
        assert_eq!(w.events.len(), n.events.len());
        for e in &n.events {
            assert!(w.has_event(e.name), "Westmere is missing {}", e.name);
        }
    }
}

//! A multi-socket store-coherence workload for the sharded simulator.
//!
//! `StoreCoherence` models the pattern the sequential simulator was slowest
//! at: producer/consumer ring traffic inside every socket plus a private
//! store stream per thread. All addresses are partitioned by socket with
//! multi-megabyte guard gaps, so the emitted [`ReplayQueue`] epochs are
//! provably independent across sockets and the sharded engine replays them
//! in parallel — while staying bit-identical to the sequential drain.
//!
//! Per epoch, each socket group runs a fixed number of rounds; one round is
//!
//! 1. the group's *producer* thread storing the socket-local ring,
//! 2. the group's *consumer* thread loading the ring back (paying the
//!    producer's invalidations), and
//! 3. every thread of the group storing the next block of its private
//!    stream (the position advances round-robin across the private
//!    region, so the stream keeps missing the upper cache levels once the
//!    region exceeds them).

use likwid_cache_sim::{HierarchyConfig, NumaPolicy, ReplayQueue, RunOp, ShardedCacheSystem};
use likwid_x86_machine::SimMachine;

use crate::exec::ExecutionProfile;
use crate::perfmodel::{BandwidthModel, StreamKernelModel};
use crate::workload::{Placement, Workload, WorkloadRun};

/// Cache lines in each socket's producer/consumer ring.
const RING_LINES: u64 = 128;
/// Private-stream lines stored per thread per round.
const PRIVATE_RUN_LINES: u64 = 256;
/// Rounds batched into one replay epoch.
const ROUNDS_PER_EPOCH: u64 = 16;
/// Byte gap between the per-thread private regions of a socket group.
const PRIVATE_GAP: u64 = 1 << 25;

/// The store-coherence workload (registered as the `coherence` kernel).
#[derive(Debug, Clone)]
pub struct StoreCoherence {
    /// Private-stream bytes per thread (the `-w` working set).
    private_bytes: u64,
    passes: u64,
    /// Worker threads for the sharded replay (never changes any result).
    workers: usize,
}

impl StoreCoherence {
    /// A coherence run whose per-thread private stream covers
    /// `working_set_bytes`, replayed `passes` times with one worker.
    pub fn new(working_set_bytes: u64, passes: u64) -> Self {
        StoreCoherence { private_bytes: working_set_bytes, passes: passes.max(1), workers: 1 }
    }

    /// Set the sharded-replay worker count (`likwid-bench -W`).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Private-stream lines per thread: the working set in whole lines,
    /// clamped so degenerate `-w` values still stream something and huge
    /// ones keep the guard gaps intact.
    fn private_lines(&self) -> u64 {
        (self.private_bytes / 64).clamp(PRIVATE_RUN_LINES, (PRIVATE_GAP / 64) / 2)
    }

    /// Rounds so that every thread streams its private region once per pass.
    fn rounds(&self) -> u64 {
        self.passes * self.private_lines().div_ceil(PRIVATE_RUN_LINES)
    }

    /// Group the compute placement by socket, preserving order. Returns
    /// `(socket, members)` with members as global hw-thread ids.
    fn socket_groups(machine: &SimMachine, placement: &Placement) -> Vec<(u32, Vec<usize>)> {
        let topo = machine.topology();
        let mut groups: Vec<(u32, Vec<usize>)> = Vec::new();
        for &hw in &placement.compute {
            let socket = topo.hw_thread(hw).map(|t| t.socket).unwrap_or(0);
            match groups.iter_mut().find(|(s, _)| *s == socket) {
                Some((_, members)) => members.push(hw),
                None => groups.push((socket, vec![hw])),
            }
        }
        groups
    }

    /// Emit the whole run as an epoch-batched replay queue.
    pub fn replay_queue(&self, machine: &SimMachine, placement: &Placement) -> ReplayQueue {
        let groups = Self::socket_groups(machine, placement);
        let private_lines = self.private_lines();
        let mut queue = ReplayQueue::new(machine.topology().num_hw_threads());
        let mut cursor = 0u64;
        let mut round = 0u64;
        let rounds = self.rounds();
        while round < rounds {
            queue.begin_epoch();
            for _ in 0..ROUNDS_PER_EPOCH.min(rounds - round) {
                for (g, (_, members)) in groups.iter().enumerate() {
                    let region = (g as u64 + 1) << 32;
                    let producer = members[0];
                    let consumer = members.get(1).copied().unwrap_or(producer);
                    queue.push(producer, RunOp::store_lines(region, RING_LINES));
                    queue.push(consumer, RunOp::load_lines(region, RING_LINES));
                    for (j, &hw) in members.iter().enumerate() {
                        let base = region + (j as u64 + 1) * PRIVATE_GAP;
                        let start = cursor % private_lines;
                        let first = PRIVATE_RUN_LINES.min(private_lines - start);
                        queue.push(hw, RunOp::store_lines(base + start * 64, first));
                        if first < PRIVATE_RUN_LINES {
                            // The stream wrapped: finish the block from the
                            // region start (two analyzable contiguous runs).
                            queue.push(hw, RunOp::store_lines(base, PRIVATE_RUN_LINES - first));
                        }
                    }
                }
                cursor += PRIVATE_RUN_LINES;
                round += 1;
            }
        }
        queue
    }
}

impl Workload for StoreCoherence {
    fn name(&self) -> &str {
        "coherence"
    }

    fn flops_per_iteration(&self) -> f64 {
        0.0
    }

    fn bytes_per_iteration(&self) -> f64 {
        // Modelled traffic per access: the private stores stream through
        // memory with write allocate (16 B per 8 B element amortised over
        // the 8 elements of a line → 16), the ring mostly stays
        // cache-resident; the blend is dominated by the private streams
        // (2·PRIVATE_RUN vs 2·RING lines per round per thread).
        12.0
    }

    fn working_set_bytes(&self) -> u64 {
        self.private_lines() * 64 + RING_LINES * 64
    }

    fn run(&self, machine: &SimMachine, placement: &Placement) -> WorkloadRun {
        let threads = &placement.compute;
        assert!(!threads.is_empty(), "at least one thread is required");
        let topo = machine.topology();
        let hierarchy = HierarchyConfig::from_machine(
            machine,
            NumaPolicy::interleave_over(4096, topo.sockets.max(1)),
        );
        let mut sys = ShardedCacheSystem::with_workers(hierarchy, self.workers);
        let queue = self.replay_queue(machine, placement);
        sys.replay(&queue);
        let stats = sys.stats();
        let iterations = queue.total_accesses();

        // Roofline: measured traffic over the achievable bandwidth vs. an
        // in-core bound of 2 cycles per access on the busiest thread, plus
        // the cross-core ring handoffs at cache-to-cache latency.
        let memory = machine.memory_system();
        let model = BandwidthModel::new(topo, memory);
        let kernel_model = StreamKernelModel {
            traffic_bytes_per_iteration: self.bytes_per_iteration(),
            useful_bytes_per_iteration: 8.0,
            per_core_traffic_bps: memory.per_core_bandwidth_bps,
            smt_benefit: 0.05,
        };
        let homes = model.home_sockets(threads.len(), &placement.init);
        let achieved_bps = model.achieved_traffic_bps(threads, &homes, &kernel_model);
        let memory_time = stats.total_memory_bytes() as f64 / achieved_bps;
        let groups = Self::socket_groups(machine, placement);
        let max_members = groups.iter().map(|(_, m)| m.len() as u64).max().unwrap_or(1).max(1);
        let per_thread_accesses =
            self.rounds() * (PRIVATE_RUN_LINES + 2 * RING_LINES / max_members);
        let ring_handoff_cycles = self.rounds() * RING_LINES * 30 / max_members;
        let compute_time =
            (per_thread_accesses * 2 + ring_handoff_cycles) as f64 / machine.clock().frequency_hz;
        let runtime_s = memory_time.max(compute_time);

        let mut profile = ExecutionProfile::new(topo.num_hw_threads());
        let cycles = machine.clock().seconds_to_cycles(runtime_s);
        for &hw in threads {
            profile.credit_streaming_thread(hw, cycles, per_thread_accesses, 2, 0.0);
        }

        WorkloadRun {
            iterations,
            runtime_s,
            bandwidth_mbs: iterations as f64 * 8.0 / runtime_s / 1e6,
            mflops: 0.0,
            stats,
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use likwid_cache_sim::NodeCacheSystem;
    use likwid_x86_machine::MachinePreset;

    #[test]
    fn the_queue_is_socket_partitioned_and_replays_in_parallel() {
        let machine = SimMachine::new(MachinePreset::NehalemEp2S);
        let placement = Placement::pinned(vec![0, 1, 4, 5]);
        let kernel = StoreCoherence::new(1 << 20, 2);
        let queue = kernel.replay_queue(&machine, &placement);
        assert!(queue.num_epochs() > 1);

        let hierarchy = HierarchyConfig::from_machine(
            &machine,
            NumaPolicy::interleave_over(4096, machine.topology().sockets),
        );
        let mut sequential = NodeCacheSystem::new(hierarchy.clone());
        sequential.replay(&queue);
        let mut sharded = ShardedCacheSystem::with_workers(hierarchy, 2);
        sharded.replay(&queue);
        assert_eq!(sharded.stats(), sequential.stats(), "bit-identical to the sequential drain");
        assert_eq!(sharded.num_shards(), 2);
        assert_eq!(sharded.epochs_serial(), 0, "socket partitioning keeps every epoch parallel");
        assert!(sharded.epochs_parallel() > 0);
    }

    #[test]
    fn runs_on_a_single_socket_machine_and_single_thread() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        for placement in [Placement::pinned(vec![0, 1]), Placement::pinned(vec![2])] {
            let run = StoreCoherence::new(2 << 20, 1).run(&machine, &placement);
            assert!(run.iterations > 0);
            assert!(run.runtime_s > 0.0);
            assert!(run.stats.thread_loads.iter().sum::<u64>() > 0);
        }
    }

    #[test]
    fn worker_count_does_not_change_the_measured_stats() {
        let machine = SimMachine::new(MachinePreset::NehalemEp2S);
        let placement = Placement::pinned(vec![0, 1, 4, 5]);
        let base = StoreCoherence::new(512 << 10, 1).run(&machine, &placement);
        for workers in [2, 4] {
            let run =
                StoreCoherence::new(512 << 10, 1).with_workers(workers).run(&machine, &placement);
            assert_eq!(run.stats, base.stats, "{workers} workers");
            assert_eq!(run.iterations, base.iterations);
        }
    }
}

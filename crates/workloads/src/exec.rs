//! Glue between simulated execution and the hardware-event layer.
//!
//! A workload run produces two things: cache/memory statistics from the
//! cache simulator and an execution profile (instructions, cycles, SIMD
//! operation counts per thread) from the workload itself. `likwid-perfctr`
//! does not read either directly — it reads *counters*. This module
//! assembles an [`EventSample`] from both sources so the counting engine
//! can credit whatever events the tool programmed, closing the loop
//! tool → MSRs → counting engine → tool output.

use likwid_cache_sim::NodeStats;
use likwid_perf_events::{EventSample, HwEventKind};
use likwid_x86_machine::SimMachine;

/// Per-thread execution profile of a workload run (what the core pipelines
/// did, as opposed to what the memory hierarchy did).
#[derive(Debug, Clone, Default)]
pub struct ExecutionProfile {
    /// Retired instructions per hardware thread.
    pub instructions: Vec<u64>,
    /// Unhalted core cycles per hardware thread.
    pub cycles: Vec<u64>,
    /// Packed double-precision SIMD operations per hardware thread.
    pub simd_packed_double: Vec<u64>,
    /// Scalar double-precision operations per hardware thread.
    pub simd_scalar_double: Vec<u64>,
    /// Retired branch instructions per hardware thread.
    pub branches: Vec<u64>,
    /// Mispredicted branches per hardware thread.
    pub branch_misses: Vec<u64>,
}

impl ExecutionProfile {
    /// An empty profile for a machine.
    pub fn new(num_threads: usize) -> Self {
        ExecutionProfile {
            instructions: vec![0; num_threads],
            cycles: vec![0; num_threads],
            simd_packed_double: vec![0; num_threads],
            simd_scalar_double: vec![0; num_threads],
            branches: vec![0; num_threads],
            branch_misses: vec![0; num_threads],
        }
    }

    /// Credit one application thread's streaming-loop execution to hardware
    /// thread `hw`. The busy time is assigned (`cycles` is wall-clock on
    /// the hardware thread, the same however many application threads share
    /// it); the work counters accumulate, so an oversubscribed hardware
    /// thread carries the work of every application thread placed on it.
    /// Loop model: `instructions_per_element` retired instructions per
    /// element, flops carried by packed SSE (two per operation), one branch
    /// per eight elements with a 1/64 misprediction rate.
    pub fn credit_streaming_thread(
        &mut self,
        hw: usize,
        cycles: u64,
        elements: u64,
        instructions_per_element: u64,
        flops_per_element: f64,
    ) {
        self.cycles[hw] = cycles;
        self.instructions[hw] += elements * instructions_per_element;
        self.simd_packed_double[hw] += (elements as f64 * flops_per_element / 2.0) as u64;
        self.branches[hw] += elements / 8;
        self.branch_misses[hw] += elements / 512;
    }
}

/// Build an [`EventSample`] from cache-simulator statistics and an execution
/// profile.
///
/// * Per-thread kinds (instructions, cycles, SIMD, loads, stores, branches)
///   come from the profile and the simulator's per-thread access counters.
/// * Per-core cache kinds (L1 misses, L2 lines in/out) are taken from the
///   per-instance statistics of the owning cache and attributed to the
///   hardware threads of that instance in proportion to their access counts.
/// * Uncore kinds (L3 lines in/out, memory reads/writes, uncore cycles) come
///   from the socket-level L3 instance and memory-controller counters.
pub fn sample_from_simulation(
    machine: &SimMachine,
    stats: &NodeStats,
    profile: &ExecutionProfile,
) -> EventSample {
    let topo = machine.topology();
    let num_threads = topo.num_hw_threads();
    let num_sockets = topo.sockets as usize;
    let line = machine.caches().first().map(|c| c.line_size as u64).unwrap_or(64);
    let mut sample = EventSample::new(num_threads, num_sockets);

    for cpu in 0..num_threads {
        let t = &mut sample.threads[cpu];
        t.set(
            HwEventKind::InstructionsRetired,
            profile.instructions.get(cpu).copied().unwrap_or(0),
        );
        t.set(HwEventKind::CoreCycles, profile.cycles.get(cpu).copied().unwrap_or(0));
        t.set(
            HwEventKind::SimdPackedDouble,
            profile.simd_packed_double.get(cpu).copied().unwrap_or(0),
        );
        t.set(
            HwEventKind::SimdScalarDouble,
            profile.simd_scalar_double.get(cpu).copied().unwrap_or(0),
        );
        t.set(HwEventKind::BranchesRetired, profile.branches.get(cpu).copied().unwrap_or(0));
        t.set(
            HwEventKind::BranchMispredictions,
            profile.branch_misses.get(cpu).copied().unwrap_or(0),
        );
        t.set(HwEventKind::LoadsRetired, stats.thread_loads.get(cpu).copied().unwrap_or(0));
        t.set(HwEventKind::StoresRetired, stats.thread_stores.get(cpu).copied().unwrap_or(0));
        t.set(
            HwEventKind::L1Accesses,
            stats.thread_loads.get(cpu).copied().unwrap_or(0)
                + stats.thread_stores.get(cpu).copied().unwrap_or(0),
        );
    }

    // Per-core cache levels: attribute instance totals evenly over the
    // threads of the instance that issued any accesses at all.
    let weights: Vec<u64> = (0..num_threads)
        .map(|c| {
            stats.thread_loads.get(c).copied().unwrap_or(0)
                + stats.thread_stores.get(c).copied().unwrap_or(0)
        })
        .collect();
    for level in &stats.levels {
        // The last level is handled as uncore below.
        let is_llc = level.level == stats.levels.last().map(|l| l.level).unwrap_or(3)
            && stats.levels.len() > 1;
        if is_llc && machine.arch().has_uncore() {
            continue;
        }
        let instances = level.instances.len().max(1);
        let threads_per_instance = (num_threads / instances).max(1);
        for (inst_idx, inst) in level.instances.iter().enumerate() {
            // Hardware threads mapped to this instance, in (socket, core, smt) order.
            let mut order: Vec<usize> = (0..num_threads).collect();
            order.sort_by_key(|&t| {
                let h = &topo.hw_threads[t];
                (h.socket, h.core_index, h.smt_id)
            });
            let members: Vec<usize> = order[inst_idx * threads_per_instance
                ..((inst_idx + 1) * threads_per_instance).min(num_threads)]
                .to_vec();
            let active: Vec<usize> = members.iter().copied().filter(|&m| weights[m] > 0).collect();
            let share_over = if active.is_empty() { members.clone() } else { active };
            if share_over.is_empty() {
                continue;
            }
            let n = share_over.len() as u64;
            for &m in &share_over {
                let t = &mut sample.threads[m];
                match level.level {
                    1 => {
                        t.add(HwEventKind::L1Misses, inst.misses / n);
                    }
                    2 => {
                        t.add(HwEventKind::L2Accesses, inst.accesses / n);
                        t.add(HwEventKind::L2Misses, inst.misses / n);
                        t.add(HwEventKind::L2LinesIn, inst.lines_in / n);
                        t.add(HwEventKind::L2LinesOut, inst.lines_out / n);
                    }
                    _ => {
                        t.add(HwEventKind::L3Accesses, inst.accesses / n);
                        t.add(HwEventKind::L3Misses, inst.misses / n);
                        t.add(HwEventKind::L3LinesIn, inst.lines_in / n);
                        t.add(HwEventKind::L3LinesOut, inst.lines_out / n);
                    }
                }
            }
        }
    }

    // Uncore: LLC per socket plus the memory controllers.
    if let Some(llc) = stats.levels.last() {
        if stats.levels.len() > 1 {
            let instances = llc.instances.len().max(1);
            for (inst_idx, inst) in llc.instances.iter().enumerate() {
                let socket = (inst_idx * num_sockets / instances).min(num_sockets - 1);
                let s = &mut sample.sockets[socket];
                s.add(HwEventKind::L3Accesses, inst.accesses);
                s.add(HwEventKind::L3Misses, inst.misses);
                s.add(HwEventKind::L3LinesIn, inst.lines_in);
                s.add(HwEventKind::L3LinesOut, inst.lines_out);
            }
        }
    }
    for (socket, mem) in stats.memory.iter().enumerate().take(num_sockets) {
        let s = &mut sample.sockets[socket];
        s.add(HwEventKind::MemoryReads, mem.bytes_read / line);
        s.add(HwEventKind::MemoryWrites, mem.bytes_written / line);
    }
    let max_cycles = profile.cycles.iter().copied().max().unwrap_or(0);
    for socket in 0..num_sockets {
        sample.sockets[socket].add(HwEventKind::UncoreCycles, max_cycles);
    }

    sample
}

#[cfg(test)]
mod tests {
    use super::*;
    use likwid_cache_sim::{Access, HierarchyConfig, NodeCacheSystem, NumaPolicy};
    use likwid_x86_machine::MachinePreset;

    #[test]
    fn uncore_lines_reach_the_right_socket_record() {
        let machine = SimMachine::new(MachinePreset::NehalemEp2S);
        let cfg = HierarchyConfig::from_machine(&machine, NumaPolicy::interleave(4096));
        let mut sys = NodeCacheSystem::new(cfg);
        // Thread 0 (socket 0) streams 1000 lines; thread 4 (socket 1) streams 10.
        for i in 0..1000u64 {
            sys.access(0, Access::load(i * 64));
        }
        for i in 0..10u64 {
            sys.access(4, Access::load((1 << 30) + i * 64));
        }
        let stats = sys.stats();
        let profile = ExecutionProfile::new(machine.num_hw_threads());
        let sample = sample_from_simulation(&machine, &stats, &profile);
        assert!(sample.sockets[0].get(HwEventKind::L3LinesIn) >= 1000);
        assert!(sample.sockets[1].get(HwEventKind::L3LinesIn) >= 10);
        assert!(
            sample.sockets[0].get(HwEventKind::L3LinesIn)
                > sample.sockets[1].get(HwEventKind::L3LinesIn)
        );
        // Memory reads counted in cache lines: at least the 1010 demanded
        // lines, plus a handful of prefetches running past the stream ends.
        let total_reads: u64 =
            (0..2).map(|s| sample.sockets[s].get(HwEventKind::MemoryReads)).sum();
        assert!((1010..=1030).contains(&total_reads), "got {total_reads}");
    }

    #[test]
    fn per_thread_loads_and_profile_values_are_copied() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let cfg = HierarchyConfig::from_machine(&machine, NumaPolicy::SingleNode { socket: 0 });
        let mut sys = NodeCacheSystem::new(cfg);
        sys.access(2, Access::load(0));
        sys.access(2, Access::store(64));
        let stats = sys.stats();
        let mut profile = ExecutionProfile::new(machine.num_hw_threads());
        profile.instructions[2] = 500;
        profile.cycles[2] = 900;
        profile.simd_packed_double[2] = 16;
        let sample = sample_from_simulation(&machine, &stats, &profile);
        assert_eq!(sample.threads[2].get(HwEventKind::LoadsRetired), 1);
        assert_eq!(sample.threads[2].get(HwEventKind::StoresRetired), 1);
        assert_eq!(sample.threads[2].get(HwEventKind::InstructionsRetired), 500);
        assert_eq!(sample.threads[2].get(HwEventKind::SimdPackedDouble), 16);
        assert_eq!(sample.threads[0].get(HwEventKind::LoadsRetired), 0);
    }

    #[test]
    fn l1_misses_are_attributed_to_the_issuing_thread() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let cfg = HierarchyConfig::from_machine(&machine, NumaPolicy::SingleNode { socket: 0 });
        let mut sys = NodeCacheSystem::new(cfg);
        for i in 0..100u64 {
            sys.access(1, Access::load(i * 64));
        }
        let stats = sys.stats();
        let profile = ExecutionProfile::new(machine.num_hw_threads());
        let sample = sample_from_simulation(&machine, &stats, &profile);
        assert!(sample.threads[1].get(HwEventKind::L1Misses) > 0);
        assert_eq!(sample.threads[0].get(HwEventKind::L1Misses), 0);
    }
}

//! Glue between simulated execution and the hardware-event layer.
//!
//! A workload run produces two things: cache/memory statistics from the
//! cache simulator and an execution profile (instructions, cycles, SIMD
//! operation counts per thread) from the workload itself. `likwid-perfctr`
//! does not read either directly — it reads *counters*. This module
//! assembles an [`EventSample`] from both sources so the counting engine
//! can credit whatever events the tool programmed, closing the loop
//! tool → MSRs → counting engine → tool output.

use likwid_cache_sim::NodeStats;
use likwid_perf_events::{EventSample, HwEventKind};
use likwid_x86_machine::SimMachine;

/// Per-thread execution profile of a workload run (what the core pipelines
/// did, as opposed to what the memory hierarchy did).
#[derive(Debug, Clone, Default)]
pub struct ExecutionProfile {
    /// Retired instructions per hardware thread.
    pub instructions: Vec<u64>,
    /// Unhalted core cycles per hardware thread.
    pub cycles: Vec<u64>,
    /// Packed double-precision SIMD operations per hardware thread.
    pub simd_packed_double: Vec<u64>,
    /// Scalar double-precision operations per hardware thread.
    pub simd_scalar_double: Vec<u64>,
    /// Retired branch instructions per hardware thread.
    pub branches: Vec<u64>,
    /// Mispredicted branches per hardware thread.
    pub branch_misses: Vec<u64>,
}

impl ExecutionProfile {
    /// An empty profile for a machine.
    pub fn new(num_threads: usize) -> Self {
        ExecutionProfile {
            instructions: vec![0; num_threads],
            cycles: vec![0; num_threads],
            simd_packed_double: vec![0; num_threads],
            simd_scalar_double: vec![0; num_threads],
            branches: vec![0; num_threads],
            branch_misses: vec![0; num_threads],
        }
    }

    /// Credit one application thread's streaming-loop execution to hardware
    /// thread `hw`. The busy time is assigned (`cycles` is wall-clock on
    /// the hardware thread, the same however many application threads share
    /// it); the work counters accumulate, so an oversubscribed hardware
    /// thread carries the work of every application thread placed on it.
    /// Loop model: `instructions_per_element` retired instructions per
    /// element, flops carried by packed SSE (two per operation), one branch
    /// per eight elements with a 1/64 misprediction rate.
    pub fn credit_streaming_thread(
        &mut self,
        hw: usize,
        cycles: u64,
        elements: u64,
        instructions_per_element: u64,
        flops_per_element: f64,
    ) {
        self.cycles[hw] = cycles;
        self.instructions[hw] += elements * instructions_per_element;
        self.simd_packed_double[hw] += (elements as f64 * flops_per_element / 2.0) as u64;
        self.branches[hw] += elements / 8;
        self.branch_misses[hw] += elements / 512;
    }

    /// The profile scaled to `fraction` of its counts (floored; fraction
    /// 1.0 reproduces the profile exactly). Workload drivers use this to
    /// spread a run's totals over its progress ticks.
    pub fn scaled(&self, fraction: f64) -> ExecutionProfile {
        let scale = |v: &[u64]| v.iter().map(|&x| (x as f64 * fraction).floor() as u64).collect();
        ExecutionProfile {
            instructions: scale(&self.instructions),
            cycles: scale(&self.cycles),
            simd_packed_double: scale(&self.simd_packed_double),
            simd_scalar_double: scale(&self.simd_scalar_double),
            branches: scale(&self.branches),
            branch_misses: scale(&self.branch_misses),
        }
    }
}

/// Build an [`EventSample`] from cache-simulator statistics and an execution
/// profile.
///
/// * Per-thread kinds (instructions, cycles, SIMD, loads, stores, branches)
///   come from the profile and the simulator's per-thread access counters.
/// * Per-core cache kinds (L1 misses, L2 lines in/out) are taken from the
///   per-instance statistics of the owning cache and attributed to the
///   hardware threads of that instance in proportion to their access counts.
/// * Uncore kinds (L3 lines in/out, memory reads/writes, uncore cycles) come
///   from the socket-level L3 instance and memory-controller counters.
pub fn sample_from_simulation(
    machine: &SimMachine,
    stats: &NodeStats,
    profile: &ExecutionProfile,
) -> EventSample {
    let topo = machine.topology();
    let num_threads = topo.num_hw_threads();
    let num_sockets = topo.sockets as usize;
    let line = machine.caches().first().map(|c| c.line_size as u64).unwrap_or(64);
    let mut sample = EventSample::new(num_threads, num_sockets);

    for cpu in 0..num_threads {
        let t = &mut sample.threads[cpu];
        t.set(
            HwEventKind::InstructionsRetired,
            profile.instructions.get(cpu).copied().unwrap_or(0),
        );
        t.set(HwEventKind::CoreCycles, profile.cycles.get(cpu).copied().unwrap_or(0));
        t.set(
            HwEventKind::SimdPackedDouble,
            profile.simd_packed_double.get(cpu).copied().unwrap_or(0),
        );
        t.set(
            HwEventKind::SimdScalarDouble,
            profile.simd_scalar_double.get(cpu).copied().unwrap_or(0),
        );
        t.set(HwEventKind::BranchesRetired, profile.branches.get(cpu).copied().unwrap_or(0));
        t.set(
            HwEventKind::BranchMispredictions,
            profile.branch_misses.get(cpu).copied().unwrap_or(0),
        );
        t.set(HwEventKind::LoadsRetired, stats.thread_loads.get(cpu).copied().unwrap_or(0));
        t.set(HwEventKind::StoresRetired, stats.thread_stores.get(cpu).copied().unwrap_or(0));
        t.set(
            HwEventKind::L1Accesses,
            stats.thread_loads.get(cpu).copied().unwrap_or(0)
                + stats.thread_stores.get(cpu).copied().unwrap_or(0),
        );
    }

    // Per-core cache levels: attribute instance totals evenly over the
    // threads of the instance that issued any accesses at all.
    let weights: Vec<u64> = (0..num_threads)
        .map(|c| {
            stats.thread_loads.get(c).copied().unwrap_or(0)
                + stats.thread_stores.get(c).copied().unwrap_or(0)
        })
        .collect();
    for level in &stats.levels {
        // The last level is handled as uncore below.
        let is_llc = level.level == stats.levels.last().map(|l| l.level).unwrap_or(3)
            && stats.levels.len() > 1;
        if is_llc && machine.arch().has_uncore() {
            continue;
        }
        let instances = level.instances.len().max(1);
        let threads_per_instance = (num_threads / instances).max(1);
        for (inst_idx, inst) in level.instances.iter().enumerate() {
            // Hardware threads mapped to this instance, in (socket, core, smt) order.
            let mut order: Vec<usize> = (0..num_threads).collect();
            order.sort_by_key(|&t| {
                let h = &topo.hw_threads[t];
                (h.socket, h.core_index, h.smt_id)
            });
            let members: Vec<usize> = order[inst_idx * threads_per_instance
                ..((inst_idx + 1) * threads_per_instance).min(num_threads)]
                .to_vec();
            let active: Vec<usize> = members.iter().copied().filter(|&m| weights[m] > 0).collect();
            let share_over = if active.is_empty() { members.clone() } else { active };
            if share_over.is_empty() {
                continue;
            }
            let n = share_over.len() as u64;
            for &m in &share_over {
                let t = &mut sample.threads[m];
                match level.level {
                    1 => {
                        t.add(HwEventKind::L1Misses, inst.misses / n);
                    }
                    2 => {
                        t.add(HwEventKind::L2Accesses, inst.accesses / n);
                        t.add(HwEventKind::L2Misses, inst.misses / n);
                        t.add(HwEventKind::L2LinesIn, inst.lines_in / n);
                        t.add(HwEventKind::L2LinesOut, inst.lines_out / n);
                    }
                    _ => {
                        t.add(HwEventKind::L3Accesses, inst.accesses / n);
                        t.add(HwEventKind::L3Misses, inst.misses / n);
                        t.add(HwEventKind::L3LinesIn, inst.lines_in / n);
                        t.add(HwEventKind::L3LinesOut, inst.lines_out / n);
                    }
                }
            }
        }
    }

    // Uncore: LLC per socket plus the memory controllers.
    if let Some(llc) = stats.levels.last() {
        if stats.levels.len() > 1 {
            let instances = llc.instances.len().max(1);
            for (inst_idx, inst) in llc.instances.iter().enumerate() {
                let socket = (inst_idx * num_sockets / instances).min(num_sockets - 1);
                let s = &mut sample.sockets[socket];
                s.add(HwEventKind::L3Accesses, inst.accesses);
                s.add(HwEventKind::L3Misses, inst.misses);
                s.add(HwEventKind::L3LinesIn, inst.lines_in);
                s.add(HwEventKind::L3LinesOut, inst.lines_out);
            }
        }
    }
    for (socket, mem) in stats.memory.iter().enumerate().take(num_sockets) {
        let s = &mut sample.sockets[socket];
        s.add(HwEventKind::MemoryReads, mem.bytes_read / line);
        s.add(HwEventKind::MemoryWrites, mem.bytes_written / line);
    }
    let max_cycles = profile.cycles.iter().copied().max().unwrap_or(0);
    for socket in 0..num_sockets {
        sample.sockets[socket].add(HwEventKind::UncoreCycles, max_cycles);
    }

    sample
}

/// One progress tick of a workload run: the *cumulative* simulation state
/// at a virtual timestamp. Workload drivers push ticks while they execute
/// (after each sweep, pass or pipeline batch); the timeline harness slices
/// the run at sampling boundaries by interpolating between ticks.
#[derive(Debug, Clone)]
pub struct ProgressTick {
    /// Virtual time since run start, in seconds.
    pub t_s: f64,
    /// Cache/memory statistics accumulated from run start through this
    /// tick.
    pub stats: NodeStats,
    /// Execution profile accumulated from run start through this tick.
    pub profile: ExecutionProfile,
}

/// The progress trace of one workload run: cumulative ticks in
/// non-decreasing virtual-time order, the last one covering the full run.
#[derive(Debug, Clone, Default)]
pub struct ProgressTrace {
    /// The recorded ticks.
    pub ticks: Vec<ProgressTick>,
}

impl ProgressTrace {
    /// Record a cumulative tick. Timestamps must be non-decreasing.
    pub fn record(&mut self, t_s: f64, stats: NodeStats, profile: ExecutionProfile) {
        debug_assert!(
            self.ticks.last().map(|t| t.t_s <= t_s).unwrap_or(true),
            "progress ticks must advance in time"
        );
        self.ticks.push(ProgressTick { t_s, stats, profile });
    }

    /// Total virtual runtime covered by the trace.
    pub fn runtime_s(&self) -> f64 {
        self.ticks.last().map(|t| t.t_s).unwrap_or(0.0)
    }
}

/// Linear interpolation of one event record between two cumulative
/// snapshots at fraction `alpha`, floored to whole counts. Floor of a
/// monotone interpolant is monotone and hits both endpoints exactly, so
/// deltas between consecutive boundaries telescope to the total.
fn lerp_pairs(
    prev_pairs: &[(HwEventKind, u64)],
    next_pairs: &[(HwEventKind, u64)],
    alpha: f64,
    mut set: impl FnMut(HwEventKind, u64),
) {
    let prev_of = |kind: HwEventKind| {
        prev_pairs.iter().find(|(k, _)| *k == kind).map(|(_, v)| *v).unwrap_or(0)
    };
    for &(kind, next_v) in next_pairs {
        let prev_v = prev_of(kind);
        let value = prev_v + ((next_v.saturating_sub(prev_v)) as f64 * alpha).floor() as u64;
        set(kind, value);
    }
    // Kinds present only in the earlier snapshot keep their value (a
    // consistent cumulative trace never loses a kind, but stay safe).
    for &(kind, prev_v) in prev_pairs {
        if !next_pairs.iter().any(|(k, _)| *k == kind) {
            set(kind, prev_v);
        }
    }
}

/// The cumulative event sample at fraction `alpha` between two cumulative
/// samples.
fn lerp_sample(prev: &EventSample, next: &EventSample, alpha: f64) -> EventSample {
    let mut out = EventSample::new(next.threads.len(), next.sockets.len());
    for (cpu, next_rec) in next.threads.iter().enumerate() {
        let prev_pairs: Vec<(HwEventKind, u64)> =
            prev.threads.get(cpu).map(|r| r.iter().collect()).unwrap_or_default();
        let next_pairs: Vec<(HwEventKind, u64)> = next_rec.iter().collect();
        let slot = &mut out.threads[cpu];
        lerp_pairs(&prev_pairs, &next_pairs, alpha, |k, v| {
            slot.set(k, v);
        });
    }
    for (socket, next_rec) in next.sockets.iter().enumerate() {
        let prev_pairs: Vec<(HwEventKind, u64)> =
            prev.sockets.get(socket).map(|r| r.iter().collect()).unwrap_or_default();
        let next_pairs: Vec<(HwEventKind, u64)> = next_rec.iter().collect();
        let slot = &mut out.sockets[socket];
        lerp_pairs(&prev_pairs, &next_pairs, alpha, |k, v| {
            slot.set(k, v);
        });
    }
    out
}

/// The per-count difference of two cumulative samples (`next - prev`).
fn diff_sample(prev: &EventSample, next: &EventSample) -> EventSample {
    let mut out = EventSample::new(next.threads.len(), next.sockets.len());
    for (cpu, next_rec) in next.threads.iter().enumerate() {
        for (kind, v) in next_rec.iter() {
            let prev_v = prev.threads.get(cpu).map(|r| r.get(kind)).unwrap_or(0);
            out.threads[cpu].set(kind, v.saturating_sub(prev_v));
        }
    }
    for (socket, next_rec) in next.sockets.iter().enumerate() {
        for (kind, v) in next_rec.iter() {
            let prev_v = prev.sockets.get(socket).map(|r| r.get(kind)).unwrap_or(0);
            out.sockets[socket].set(kind, v.saturating_sub(prev_v));
        }
    }
    out
}

/// Slice a progress trace into timeline intervals of (at most)
/// `interval_s` seconds of virtual time: returns `(t_start, t_end,
/// slice sample)` triples whose samples sum — count by count — exactly to
/// the sample of the full run (the last tick). Sampling points that fall
/// between two ticks interpolate the cumulative counts linearly, so even a
/// single-tick (constant-rate) trace yields mid-run sampling points.
pub fn slice_samples(
    machine: &SimMachine,
    trace: &ProgressTrace,
    interval_s: f64,
) -> Vec<(f64, f64, EventSample)> {
    assert!(interval_s > 0.0, "interval must be positive");
    let cumulative: Vec<(f64, EventSample)> = trace
        .ticks
        .iter()
        .map(|tick| (tick.t_s, sample_from_simulation(machine, &tick.stats, &tick.profile)))
        .collect();
    let runtime = trace.runtime_s();
    let num_threads = machine.num_hw_threads();
    let num_sockets = machine.topology().sockets as usize;
    let empty = EventSample::new(num_threads, num_sockets);

    // Cumulative sample at virtual time `t`.
    let at = |t: f64| -> EventSample {
        if cumulative.is_empty() {
            return empty.clone();
        }
        let mut prev_t = 0.0;
        let mut prev_sample = &empty;
        for (tick_t, sample) in &cumulative {
            if t <= *tick_t {
                let span = tick_t - prev_t;
                let alpha = if span > 0.0 { ((t - prev_t) / span).clamp(0.0, 1.0) } else { 1.0 };
                return lerp_sample(prev_sample, sample, alpha);
            }
            prev_t = *tick_t;
            prev_sample = sample;
        }
        cumulative.last().map(|(_, s)| s.clone()).unwrap_or(empty.clone())
    };

    // Walk boundaries until the runtime is covered instead of
    // pre-computing `ceil(runtime/interval)`: float rounding of the ratio
    // must never produce a trailing zero-length slice.
    let mut out = Vec::new();
    let mut prev_boundary = empty.clone();
    let mut t0 = 0.0;
    let mut i = 0usize;
    loop {
        let t1 = ((i + 1) as f64 * interval_s).min(runtime);
        let boundary = at(t1);
        out.push((t0, t1, diff_sample(&prev_boundary, &boundary)));
        prev_boundary = boundary;
        t0 = t1;
        i += 1;
        if t1 >= runtime {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use likwid_cache_sim::{Access, HierarchyConfig, NodeCacheSystem, NumaPolicy};
    use likwid_x86_machine::MachinePreset;

    #[test]
    fn uncore_lines_reach_the_right_socket_record() {
        let machine = SimMachine::new(MachinePreset::NehalemEp2S);
        let cfg = HierarchyConfig::from_machine(&machine, NumaPolicy::interleave(4096));
        let mut sys = NodeCacheSystem::new(cfg);
        // Thread 0 (socket 0) streams 1000 lines; thread 4 (socket 1) streams 10.
        for i in 0..1000u64 {
            sys.access(0, Access::load(i * 64));
        }
        for i in 0..10u64 {
            sys.access(4, Access::load((1 << 30) + i * 64));
        }
        let stats = sys.stats();
        let profile = ExecutionProfile::new(machine.num_hw_threads());
        let sample = sample_from_simulation(&machine, &stats, &profile);
        assert!(sample.sockets[0].get(HwEventKind::L3LinesIn) >= 1000);
        assert!(sample.sockets[1].get(HwEventKind::L3LinesIn) >= 10);
        assert!(
            sample.sockets[0].get(HwEventKind::L3LinesIn)
                > sample.sockets[1].get(HwEventKind::L3LinesIn)
        );
        // Memory reads counted in cache lines: at least the 1010 demanded
        // lines, plus a handful of prefetches running past the stream ends.
        let total_reads: u64 =
            (0..2).map(|s| sample.sockets[s].get(HwEventKind::MemoryReads)).sum();
        assert!((1010..=1030).contains(&total_reads), "got {total_reads}");
    }

    #[test]
    fn per_thread_loads_and_profile_values_are_copied() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let cfg = HierarchyConfig::from_machine(&machine, NumaPolicy::SingleNode { socket: 0 });
        let mut sys = NodeCacheSystem::new(cfg);
        sys.access(2, Access::load(0));
        sys.access(2, Access::store(64));
        let stats = sys.stats();
        let mut profile = ExecutionProfile::new(machine.num_hw_threads());
        profile.instructions[2] = 500;
        profile.cycles[2] = 900;
        profile.simd_packed_double[2] = 16;
        let sample = sample_from_simulation(&machine, &stats, &profile);
        assert_eq!(sample.threads[2].get(HwEventKind::LoadsRetired), 1);
        assert_eq!(sample.threads[2].get(HwEventKind::StoresRetired), 1);
        assert_eq!(sample.threads[2].get(HwEventKind::InstructionsRetired), 500);
        assert_eq!(sample.threads[2].get(HwEventKind::SimdPackedDouble), 16);
        assert_eq!(sample.threads[0].get(HwEventKind::LoadsRetired), 0);
    }

    #[test]
    fn slice_samples_telescope_exactly_to_the_full_run() {
        let machine = SimMachine::new(MachinePreset::NehalemEp2S);
        let cfg = HierarchyConfig::from_machine(&machine, NumaPolicy::SingleNode { socket: 0 });
        let mut sys = NodeCacheSystem::new(cfg);
        for i in 0..5000u64 {
            sys.access(0, Access::load(i * 64));
            if i % 2 == 0 {
                sys.access(1, Access::store((1 << 24) + i * 64));
            }
        }
        let mut profile = ExecutionProfile::new(machine.num_hw_threads());
        profile.cycles[0] = 1_000_003; // deliberately not divisible by the slices
        profile.instructions[0] = 777_777;
        profile.cycles[1] = 999_999;
        let stats = sys.stats();
        let total = sample_from_simulation(&machine, &stats, &profile);

        let mut trace = ProgressTrace::default();
        trace.record(1e-3, stats, profile);
        // 7 intervals over a single-tick (constant-rate) trace: sampling
        // points are interpolated mid-tick, and the slice deltas must sum
        // count-by-count to the full-run sample.
        let slices = slice_samples(&machine, &trace, 1e-3 / 7.0);
        assert_eq!(slices.len(), 7);
        let mut summed = EventSample::new(total.threads.len(), total.sockets.len());
        for (t0, t1, sample) in &slices {
            assert!(t1 > t0);
            summed.merge(sample);
        }
        assert_eq!(summed, total, "slice samples must telescope to the total");
        // Interior slices actually carry activity (not everything lumped
        // into one interval).
        let mid_cycles = slices[3].2.threads[0].get(HwEventKind::CoreCycles);
        assert!(mid_cycles > 0, "mid-run sampling points exist");
    }

    #[test]
    fn slice_samples_follow_multi_tick_phase_structure() {
        // Two ticks: all activity in the first half, nothing in the second.
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let cfg = HierarchyConfig::from_machine(&machine, NumaPolicy::SingleNode { socket: 0 });
        let mut sys = NodeCacheSystem::new(cfg);
        for i in 0..1000u64 {
            sys.access(0, Access::load(i * 64));
        }
        let stats = sys.stats();
        let mut profile = ExecutionProfile::new(machine.num_hw_threads());
        profile.cycles[0] = 500_000;
        let mut trace = ProgressTrace::default();
        trace.record(1e-3, stats.clone(), profile.clone());
        profile.cycles[0] = 1_000_000;
        trace.record(2e-3, stats, profile); // same stats: an idle phase
        let slices = slice_samples(&machine, &trace, 5e-4);
        assert_eq!(slices.len(), 4);
        let loads = |s: &EventSample| s.threads[0].get(HwEventKind::LoadsRetired);
        assert!(loads(&slices[0].2) > 0 && loads(&slices[1].2) > 0);
        assert_eq!(loads(&slices[2].2), 0, "the idle phase moves no data");
        assert_eq!(loads(&slices[3].2), 0);
        assert!(slices[3].2.threads[0].get(HwEventKind::CoreCycles) > 0, "but burns cycles");
    }

    #[test]
    fn scaled_profile_is_exact_at_unity() {
        let mut profile = ExecutionProfile::new(2);
        profile.cycles[0] = 12345;
        profile.instructions[1] = 999;
        assert_eq!(profile.scaled(1.0).cycles, profile.cycles);
        assert_eq!(profile.scaled(1.0).instructions, profile.instructions);
        assert_eq!(profile.scaled(0.5).cycles[0], 6172);
        assert_eq!(profile.scaled(0.0).instructions[1], 0);
    }

    #[test]
    fn l1_misses_are_attributed_to_the_issuing_thread() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let cfg = HierarchyConfig::from_machine(&machine, NumaPolicy::SingleNode { socket: 0 });
        let mut sys = NodeCacheSystem::new(cfg);
        for i in 0..100u64 {
            sys.access(1, Access::load(i * 64));
        }
        let stats = sys.stats();
        let profile = ExecutionProfile::new(machine.num_hw_threads());
        let sample = sample_from_simulation(&machine, &stats, &profile);
        assert!(sample.threads[1].get(HwEventKind::L1Misses) > 0);
        assert_eq!(sample.threads[0].get(HwEventKind::L1Misses), 0);
    }
}

//! The experiment harness: machine × placement × sampling × counters.
//!
//! An [`Experiment`] composes everything around a [`Workload`] that the
//! paper's figures vary — machine preset, [`PlacementPolicy`], number of
//! samples, and optionally a `likwid-perfctr` measurement — and runs any
//! workload under it. One sample resolves the placement (drawing from a
//! per-sample RNG stream for unpinned policies), executes the workload, and
//! — when counters are configured — drives the whole tool path: program the
//! counters through the MSRs, wrap the run in a marker-API region, credit
//! the simulated activity through the counting engine, and read the region
//! results back. The figure generators of `likwid-bench` (the crate) and
//! the `likwid-bench` microbenchmark tool are both thin layers over this
//! builder.

use likwid::marker::MarkerApi;
use likwid::perfctr::{
    MeasurementSpec, PerfCtr, PerfCtrConfig, PerfCtrResults, TimelineResult, TimelineSession,
};
use likwid_perf_events::EventEngine;
use likwid_x86_machine::{FaultPlan, MachinePreset, Msr, Prefetcher, SimMachine, Vendor};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::exec::{sample_from_simulation, slice_samples, ProgressTrace};
use crate::openmp::{CompilerPersonality, OpenMpRuntime, PlacementPolicy};
use crate::stats::BoxStats;
use crate::workload::{Placement, Workload, WorkloadRun};

/// Derive the RNG seed of sample `index` from the experiment's base seed
/// (splitmix64 finalizer). Every sample owns an independent stream, so
/// adding samples never perturbs the ones already drawn.
pub fn sample_seed(base: u64, index: usize) -> u64 {
    let mut z = base ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builder for one experiment configuration.
#[derive(Debug, Clone)]
pub struct Experiment {
    preset: MachinePreset,
    personality: CompilerPersonality,
    policy: PlacementPolicy,
    threads: Option<usize>,
    samples: usize,
    seed: u64,
    counters: Option<MeasurementSpec>,
    timeline: Option<f64>,
    inject: Option<FaultPlan>,
    prefetchers_off: Vec<Prefetcher>,
}

impl Experiment {
    /// A new experiment on a machine preset. Defaults: one sample, one
    /// thread, unpinned placement, Intel personality, no counters.
    pub fn on(preset: MachinePreset) -> Self {
        Experiment {
            preset,
            personality: CompilerPersonality::IntelIcc,
            policy: PlacementPolicy::Unpinned,
            threads: None,
            samples: 1,
            seed: 0,
            counters: None,
            timeline: None,
            inject: None,
            prefetchers_off: Vec::new(),
        }
    }

    /// The compiler/runtime personality resolving the placement policy.
    pub fn personality(mut self, personality: CompilerPersonality) -> Self {
        self.personality = personality;
        self
    }

    /// How the application threads are placed.
    pub fn placement(mut self, policy: PlacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of application threads. Defaults to the pin-list length for
    /// [`PlacementPolicy::LikwidPin`], 1 otherwise.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Number of samples (placement draws × runs). The paper uses 100 for
    /// the STREAM figures.
    pub fn samples(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Base RNG seed; each sample derives its own stream via
    /// [`sample_seed`].
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Measure the first sample through `likwid-perfctr` with this
    /// specification (event group or custom event list).
    pub fn counters(mut self, spec: MeasurementSpec) -> Self {
        self.counters = Some(spec);
        self
    }

    /// Sugar for [`Experiment::counters`] with a preconfigured group.
    pub fn group(self, kind: likwid::perfctr::EventGroupKind) -> Self {
        self.counters(MeasurementSpec::Group(kind))
    }

    /// Measure the first sample time-resolved: sample the counter state
    /// every `interval_s` seconds of *virtual* time while the workload
    /// runs, yielding a [`TimelineResult`] with per-interval deltas and
    /// derived metrics next to the aggregate. Requires
    /// [`Experiment::counters`]; unlike aggregate mode, a multiplexed
    /// group list is allowed — the groups rotate across intervals and the
    /// aggregates are extrapolated by schedule coverage.
    pub fn timeline(mut self, interval_s: f64) -> Self {
        self.timeline = Some(interval_s);
        self
    }

    /// Attach a fault-injection plan to the machine before any MSR device
    /// is opened (robustness testing: the measurement session must heal or
    /// degrade gracefully, the workload itself is unaffected).
    pub fn inject(mut self, plan: FaultPlan) -> Self {
        self.inject = Some(plan);
        self
    }

    /// Disable the given hardware prefetchers before the run by clearing
    /// their `IA32_MISC_ENABLE` bits on every core, the `likwid-features`
    /// mechanism. The list is stored sorted and deduplicated, so call order
    /// never changes the canonical spec. AMD presets have no switchable
    /// prefetcher bits in this model (they always report enabled); the
    /// request is a documented no-op there.
    pub fn prefetchers_off(mut self, prefetchers: &[Prefetcher]) -> Self {
        for &p in prefetchers {
            if !self.prefetchers_off.contains(&p) {
                self.prefetchers_off.push(p);
            }
        }
        self.prefetchers_off.sort_by_key(|p| p.cli_name());
        self
    }

    /// The canonical one-line serialization of the full experiment spec:
    /// every field in a fixed order under a version tag. This is the memo
    /// key of the fleet runner, so its stability contract is strict —
    /// reordering builder calls must not change it, and any change to the
    /// format (new field, different rendering) must bump the version tag
    /// AND the fleet's `CODE_EPOCH`, invalidating old cache entries instead
    /// of aliasing them. Pinned by digest-constant regression tests.
    pub fn canonical_spec(&self) -> String {
        let prefetchers: Vec<&str> = self.prefetchers_off.iter().map(|p| p.cli_name()).collect();
        format!(
            "experiment/v1;preset={};personality={:?};policy={:?};threads={:?};samples={};\
             seed={};counters={:?};timeline={:?};inject={:?};prefetchers_off={:?}",
            self.preset.id(),
            self.personality,
            self.policy,
            self.threads,
            self.samples,
            self.seed,
            self.counters,
            self.timeline,
            self.inject,
            prefetchers,
        )
    }

    /// FNV-1a digest of [`Experiment::canonical_spec`] with a splitmix64
    /// finalizer (avalanche over the weak low bits of plain FNV).
    pub fn spec_digest(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in self.canonical_spec().bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^ (h >> 31)
    }

    fn resolved_threads(&self) -> usize {
        match self.threads {
            Some(n) => n,
            None => match &self.policy {
                PlacementPolicy::LikwidPin(list) => list.len().max(1),
                _ => 1,
            },
        }
    }

    /// Clear the disable-requested prefetchers' `IA32_MISC_ENABLE` bits on
    /// every hardware thread, before fault injection is armed (the knob is
    /// part of the machine configuration, not of the measured run).
    fn apply_prefetchers(&self, machine: &SimMachine) -> likwid::Result<()> {
        if self.prefetchers_off.is_empty() || machine.vendor() == Vendor::Amd {
            return Ok(());
        }
        let file = machine.msr_file();
        for cpu in 0..machine.topology().num_hw_threads() {
            for &p in &self.prefetchers_off {
                let value = file.read(cpu, Msr::IA32_MISC_ENABLE)?;
                file.write(cpu, Msr::IA32_MISC_ENABLE, value | p.disable_bit())?;
            }
        }
        Ok(())
    }

    /// Run a workload under this configuration.
    ///
    /// Sample 0 is the measured one when counters are configured: the
    /// session is programmed and started, the run is wrapped in a marker
    /// region named after the workload, the simulated activity is credited
    /// through the counting engine, and the region results are read back.
    pub fn run(&self, workload: &dyn Workload) -> likwid::Result<ExperimentResult> {
        if matches!(&self.policy, PlacementPolicy::LikwidPin(list) if list.is_empty()) {
            return Err(likwid::LikwidError::Usage("empty pin list".into()));
        }
        if self.timeline.is_some() && self.counters.is_none() {
            return Err(likwid::LikwidError::Usage(
                "timeline mode requires a counter specification (-g)".into(),
            ));
        }
        // Aggregate mode measures exactly one group per run; a multiplexed
        // group list would silently report only the active group. Timeline
        // mode rotates the groups across intervals, so the list is allowed
        // there.
        if self.timeline.is_none()
            && matches!(&self.counters, Some(MeasurementSpec::Groups(kinds)) if kinds.len() > 1)
        {
            return Err(likwid::LikwidError::Usage(
                "the experiment harness measures one event group per aggregate run; multiplexed \
                 group lists are supported in timeline mode and by the likwid-perfctr session API"
                    .into(),
            ));
        }
        let machine = SimMachine::new(self.preset);
        self.apply_prefetchers(&machine)?;
        if let Some(plan) = &self.inject {
            machine.inject_faults(plan.clone());
        }
        let runtime = OpenMpRuntime::new(self.personality, self.preset);
        let topo = machine.topology();
        let threads = self.resolved_threads();

        let mut runs = Vec::with_capacity(self.samples);
        let mut placements = Vec::with_capacity(self.samples);
        let mut counters = None;
        let mut timeline = None;
        let mut measured_cpus = Vec::new();

        for i in 0..self.samples {
            let sample_started = likwid::trace::now();
            let mut rng = StdRng::seed_from_u64(sample_seed(self.seed, i));
            let placement = runtime.resolve_placement(topo, threads, &self.policy, &mut rng);

            let run = match (&self.counters, i) {
                (Some(spec), 0) if self.timeline.is_some() => {
                    let interval_s = self.timeline.expect("checked above");
                    let cpus = placement.measured_cpus();
                    let mut session = TimelineSession::new(
                        &machine,
                        PerfCtrConfig { cpus: cpus.clone(), spec: spec.clone() },
                        interval_s,
                    )?;
                    session.start()?;
                    let mut trace = ProgressTrace::default();
                    let run = workload.run_traced(&machine, &placement, &mut trace);
                    let estimated = (trace.runtime_s() / interval_s).ceil();
                    if estimated > likwid::perfctr::timeline::MAX_INTERVALS as f64 {
                        return Err(likwid::LikwidError::Usage(format!(
                            "interval {interval_s} s yields {estimated:.0} sampling points over \
                             a {} s run (max {})",
                            trace.runtime_s(),
                            likwid::perfctr::timeline::MAX_INTERVALS
                        )));
                    }
                    let engine = EventEngine::new(&machine);
                    for (t0, t1, sample) in slice_samples(&machine, &trace, interval_s) {
                        engine.apply(&machine, &sample);
                        session.tick(t1 - t0)?;
                    }
                    let result = session.finish()?;
                    // Single-group timelines expose their aggregate through
                    // the familiar counters field too; multiplexed lists
                    // live in the timeline result only.
                    if result.group_names.len() == 1 {
                        counters = Some(result.aggregate_results[0].clone());
                    }
                    timeline = Some(result);
                    measured_cpus = cpus;
                    run
                }
                (Some(spec), 0) => {
                    let cpus = placement.measured_cpus();
                    let mut session = PerfCtr::new(
                        &machine,
                        PerfCtrConfig { cpus: cpus.clone(), spec: spec.clone() },
                    )?;
                    session.start()?;
                    let mut marker = MarkerApi::init(cpus.len(), 1);
                    let region = marker.register_region(workload.name());
                    for (t, &cpu) in cpus.iter().enumerate() {
                        marker.start_region(t, cpu, &session)?;
                    }
                    let run = workload.run(&machine, &placement);
                    let sample = sample_from_simulation(&machine, &run.stats, &run.profile);
                    EventEngine::new(&machine).apply(&machine, &sample);
                    for (t, &cpu) in cpus.iter().enumerate() {
                        marker.stop_region(t, cpu, region, &session)?;
                    }
                    session.stop()?;
                    counters = Some(marker.region_results(region, &session)?);
                    measured_cpus = cpus;
                    run
                }
                _ => workload.run(&machine, &placement),
            };
            likwid::trace::complete_since(
                likwid::trace::cat::WORKLOADS,
                sample_started,
                || "sample".to_string(),
                || {
                    vec![
                        ("workload", workload.name().to_string()),
                        ("index", i.to_string()),
                        ("measured", (i == 0 && self.counters.is_some()).to_string()),
                    ]
                },
            );
            runs.push(run);
            placements.push(placement);
        }

        Ok(ExperimentResult {
            workload: workload.name().to_string(),
            preset: self.preset,
            runs,
            placements,
            counters,
            timeline,
            measured_cpus,
        })
    }

    /// [`Experiment::run`], but the measured sample's counter session is
    /// served by a measurement daemon instead of a private session: the
    /// workload runs traced on the daemon's machine, its activity is
    /// sliced at the interval boundaries, and the slices are replayed
    /// through a daemon session
    /// ([`likwid_daemon::ActivitySource::Replay`]), subject to the
    /// daemon's admission, arbitration and time-slicing. On an otherwise
    /// idle daemon the result is bit-identical to [`Experiment::run`];
    /// under contention the extrapolated aggregates carry the coverage
    /// scale.
    ///
    /// Requires [`Experiment::timeline`] and [`Experiment::counters`], and
    /// the experiment's preset must match the daemon's machine. Fault
    /// injection belongs to the daemon's machine in this mode, so
    /// [`Experiment::inject`] is rejected.
    pub fn via_daemon(
        &self,
        workload: &dyn Workload,
        daemon: &likwid_daemon::Daemon<'_>,
    ) -> likwid::Result<ExperimentResult> {
        let interval_s = self.timeline.ok_or_else(|| {
            likwid::LikwidError::Usage(
                "via_daemon requires timeline mode (Experiment::timeline)".into(),
            )
        })?;
        let spec = self.counters.clone().ok_or_else(|| {
            likwid::LikwidError::Usage(
                "via_daemon requires a counter specification (Experiment::counters)".into(),
            )
        })?;
        if self.preset != daemon.machine().preset() {
            return Err(likwid::LikwidError::Usage(format!(
                "machine mismatch: the experiment wants '{}', the daemon simulates '{}'",
                self.preset.id(),
                daemon.machine().preset().id()
            )));
        }
        if self.inject.is_some() {
            return Err(likwid::LikwidError::Usage(
                "via_daemon measures the daemon's machine; arm fault injection there instead"
                    .into(),
            ));
        }
        if matches!(&self.policy, PlacementPolicy::LikwidPin(list) if list.is_empty()) {
            return Err(likwid::LikwidError::Usage("empty pin list".into()));
        }

        let machine = daemon.machine();
        let runtime = OpenMpRuntime::new(self.personality, self.preset);
        let topo = machine.topology();
        let threads = self.resolved_threads();

        let mut runs = Vec::with_capacity(self.samples);
        let mut placements = Vec::with_capacity(self.samples);
        let mut counters = None;
        let mut timeline = None;
        let mut measured_cpus = Vec::new();

        for i in 0..self.samples {
            let sample_started = likwid::trace::now();
            let mut rng = StdRng::seed_from_u64(sample_seed(self.seed, i));
            let placement = runtime.resolve_placement(topo, threads, &self.policy, &mut rng);

            let run = if i == 0 {
                let cpus = placement.measured_cpus();
                let mut trace = ProgressTrace::default();
                let run = workload.run_traced(machine, &placement, &mut trace);
                let duration_s = trace.runtime_s();
                let estimated = (duration_s / interval_s).ceil();
                if estimated > likwid::perfctr::timeline::MAX_INTERVALS as f64 {
                    return Err(likwid::LikwidError::Usage(format!(
                        "interval {interval_s} s yields {estimated:.0} sampling points over \
                         a {duration_s} s run (max {})",
                        likwid::perfctr::timeline::MAX_INTERVALS
                    )));
                }
                let samples = slice_samples(machine, &trace, interval_s)
                    .into_iter()
                    .map(|(_, _, sample)| sample)
                    .collect();
                let config = likwid_daemon::SessionConfig {
                    cpus: cpus.clone(),
                    spec: spec.clone(),
                    interval_s,
                    duration_s,
                };
                let mut handle =
                    daemon.open_session(config, likwid_daemon::ActivitySource::Replay(samples))?;
                while handle.next_interval()?.is_some() {}
                let (_done, result) = handle.finish()?;
                if result.group_names.len() == 1 {
                    counters = Some(result.aggregate_results[0].clone());
                }
                timeline = Some(result);
                measured_cpus = cpus;
                run
            } else {
                workload.run(machine, &placement)
            };
            likwid::trace::complete_since(
                likwid::trace::cat::WORKLOADS,
                sample_started,
                || "sample.daemon".to_string(),
                || {
                    vec![
                        ("workload", workload.name().to_string()),
                        ("index", i.to_string()),
                        ("measured", (i == 0).to_string()),
                    ]
                },
            );
            runs.push(run);
            placements.push(placement);
        }

        Ok(ExperimentResult {
            workload: workload.name().to_string(),
            preset: self.preset,
            runs,
            placements,
            counters,
            timeline,
            measured_cpus,
        })
    }
}

/// The outcome of an experiment: one [`WorkloadRun`] per sample, plus the
/// counter results of the measured sample when counters were configured.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Name of the workload that ran.
    pub workload: String,
    /// The machine preset the experiment ran on.
    pub preset: MachinePreset,
    /// One run per sample.
    pub runs: Vec<WorkloadRun>,
    /// The resolved placement of each sample.
    pub placements: Vec<Placement>,
    /// `likwid-perfctr` results of the measured sample (sample 0), when
    /// counters were configured (for timeline runs: the aggregate of the
    /// single measured group; empty for multiplexed timeline lists).
    pub counters: Option<PerfCtrResults>,
    /// The time-resolved measurement of sample 0, when
    /// [`Experiment::timeline`] was configured.
    pub timeline: Option<TimelineResult>,
    /// The hardware threads the counter session measured.
    pub measured_cpus: Vec<usize>,
}

impl ExperimentResult {
    /// The first (measured) run. Experiments always have at least one
    /// sample.
    pub fn first(&self) -> &WorkloadRun {
        &self.runs[0]
    }

    /// The per-sample reported bandwidths.
    pub fn bandwidths(&self) -> Vec<f64> {
        self.runs.iter().map(|r| r.bandwidth_mbs).collect()
    }

    /// Box statistics over the per-sample bandwidths.
    pub fn bandwidth_stats(&self) -> Option<BoxStats> {
        BoxStats::from_samples(&self.bandwidths())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::StreamingKernel;
    use crate::openmp::KmpAffinity;
    use likwid::perfctr::{EventGroupKind, MeasurementSpec};

    #[test]
    fn sample_seeds_are_distinct_streams() {
        let seeds: Vec<u64> = (0..32).map(|i| sample_seed(42, i)).collect();
        let distinct: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(distinct.len(), seeds.len());
        // And independent of each other: the same index always maps to the
        // same seed, whatever the total number of samples.
        assert_eq!(sample_seed(42, 3), seeds[3]);
    }

    #[test]
    fn pinned_experiment_is_deterministic_across_runs() {
        let kernel = StreamingKernel::triad(4 << 20, 1);
        let exp = Experiment::on(MachinePreset::NehalemEp2S)
            .placement(PlacementPolicy::LikwidPin(vec![0, 1]))
            .samples(2);
        let a = exp.run(&kernel).unwrap();
        let b = exp.run(&kernel).unwrap();
        assert_eq!(a.bandwidths(), b.bandwidths());
        assert_eq!(a.placements[0].compute, vec![0, 1]);
        assert_eq!(a.placements[0].init, a.placements[0].compute, "pinned runs first-touch local");
        assert!(a.bandwidth_stats().unwrap().median > 0.0);
    }

    #[test]
    fn multiplexed_group_lists_are_rejected_not_silently_truncated() {
        let kernel = StreamingKernel::copy(1 << 20, 1);
        let err = Experiment::on(MachinePreset::WestmereEp2S)
            .placement(PlacementPolicy::LikwidPin(vec![0]))
            .counters(MeasurementSpec::Groups(vec![EventGroupKind::FLOPS_DP, EventGroupKind::MEM]))
            .run(&kernel)
            .unwrap_err();
        assert!(matches!(err, likwid::LikwidError::Usage(_)), "got {err:?}");
        // A single-group list is equivalent to Group and works.
        let ok = Experiment::on(MachinePreset::WestmereEp2S)
            .placement(PlacementPolicy::LikwidPin(vec![0]))
            .counters(MeasurementSpec::Groups(vec![EventGroupKind::FLOPS_DP]))
            .run(&kernel)
            .unwrap();
        assert!(ok.counters.is_some());
    }

    #[test]
    fn empty_pin_list_is_a_usage_error_not_a_panic() {
        let kernel = StreamingKernel::copy(1 << 20, 1);
        let err = Experiment::on(MachinePreset::Core2Quad)
            .placement(PlacementPolicy::LikwidPin(vec![]))
            .run(&kernel)
            .unwrap_err();
        assert!(matches!(err, likwid::LikwidError::Usage(_)), "got {err:?}");
    }

    #[test]
    fn thread_count_defaults_to_the_pin_list_length() {
        let kernel = StreamingKernel::copy(1 << 20, 1);
        let result = Experiment::on(MachinePreset::Core2Quad)
            .placement(PlacementPolicy::LikwidPin(vec![0, 1, 2]))
            .run(&kernel)
            .unwrap();
        assert_eq!(result.placements[0].compute.len(), 3);
    }

    #[test]
    fn counters_measure_the_run_through_the_tool_path() {
        let kernel = StreamingKernel::daxpy(16 << 20, 1);
        let result = Experiment::on(MachinePreset::NehalemEp2S)
            .placement(PlacementPolicy::LikwidPin(vec![0, 1, 2, 3]))
            .group(EventGroupKind::MEM)
            .run(&kernel)
            .unwrap();
        let counters = result.counters.as_ref().expect("counters were configured");
        assert_eq!(result.measured_cpus, vec![0, 1, 2, 3]);
        // The uncore memory reads credited to the socket-lock owner must
        // reflect the simulated traffic: cpu 0 owns socket 0's uncore.
        let reads = counters.event_count("UNC_QMC_NORMAL_READS_ANY", 0).unwrap();
        let sim_reads = result.first().stats.memory.iter().map(|m| m.bytes_read).sum::<u64>() / 64;
        assert_eq!(reads, sim_reads, "counter reads match the simulated line reads");
        assert!(counters.metric("Memory bandwidth [MBytes/s]", 0).unwrap() > 0.0);
    }

    #[test]
    fn timeline_mode_produces_interval_series_that_sum_to_the_aggregate() {
        let kernel = StreamingKernel::triad(8 << 20, 1);
        let probe = Experiment::on(MachinePreset::NehalemEp2S)
            .placement(PlacementPolicy::LikwidPin(vec![0, 1]))
            .run(&kernel)
            .unwrap();
        let dt = probe.first().runtime_s / 6.0;
        let result = Experiment::on(MachinePreset::NehalemEp2S)
            .placement(PlacementPolicy::LikwidPin(vec![0, 1]))
            .group(EventGroupKind::MEM)
            .timeline(dt)
            .run(&kernel)
            .unwrap();
        let timeline = result.timeline.as_ref().expect("timeline was configured");
        assert_eq!(timeline.intervals.len(), 6);
        for ei in 0..timeline.aggregate[0].len() {
            for ci in 0..timeline.cpus.len() {
                let summed: u64 = timeline.intervals.iter().map(|iv| iv.counts[ei][ci]).sum();
                assert_eq!(summed, timeline.aggregate[0][ei][ci], "event {ei} cpu {ci}");
            }
        }
        // The familiar counters field carries the single group's aggregate,
        // and it matches a plain aggregate-mode run of the same kernel.
        let counters = result.counters.as_ref().expect("single group");
        let plain = Experiment::on(MachinePreset::NehalemEp2S)
            .placement(PlacementPolicy::LikwidPin(vec![0, 1]))
            .group(EventGroupKind::MEM)
            .run(&kernel)
            .unwrap();
        assert_eq!(
            counters.event_count("UNC_QMC_NORMAL_READS_ANY", 0),
            plain.counters.unwrap().event_count("UNC_QMC_NORMAL_READS_ANY", 0),
            "timeline slicing must not change the measured totals"
        );
    }

    #[test]
    fn timeline_mode_allows_multiplexed_group_lists() {
        let kernel = StreamingKernel::daxpy(4 << 20, 2);
        let result = Experiment::on(MachinePreset::WestmereEp2S)
            .placement(PlacementPolicy::LikwidPin(vec![0]))
            .counters(MeasurementSpec::Groups(vec![EventGroupKind::FLOPS_DP, EventGroupKind::MEM]))
            .timeline(1e-4)
            .run(&kernel)
            .unwrap();
        let timeline = result.timeline.as_ref().expect("timeline result");
        assert_eq!(timeline.group_names, vec!["FLOPS_DP", "MEM"]);
        assert!(result.counters.is_none(), "multiplexed aggregates live in the timeline result");
        let groups_seen: std::collections::HashSet<usize> =
            timeline.intervals.iter().map(|iv| iv.group).collect();
        assert_eq!(groups_seen.len(), 2, "both groups get intervals");
    }

    #[test]
    fn timeline_mode_rejects_bad_intervals_and_missing_counters() {
        let kernel = StreamingKernel::copy(1 << 20, 1);
        for bad in [0.0, -1.0, f64::NAN] {
            let err = Experiment::on(MachinePreset::Core2Quad)
                .placement(PlacementPolicy::LikwidPin(vec![0]))
                .group(EventGroupKind::FLOPS_DP)
                .timeline(bad)
                .run(&kernel)
                .unwrap_err();
            assert!(matches!(err, likwid::LikwidError::Usage(_)), "{bad}: {err:?}");
        }
        let err = Experiment::on(MachinePreset::Core2Quad)
            .placement(PlacementPolicy::LikwidPin(vec![0]))
            .timeline(1e-3)
            .run(&kernel)
            .unwrap_err();
        assert!(matches!(err, likwid::LikwidError::Usage(_)), "timeline needs counters: {err:?}");
        // An absurdly small interval is rejected instead of slicing the
        // run into millions of samples.
        let err = Experiment::on(MachinePreset::Core2Quad)
            .placement(PlacementPolicy::LikwidPin(vec![0]))
            .group(EventGroupKind::FLOPS_DP)
            .timeline(1e-15)
            .run(&kernel)
            .unwrap_err();
        assert!(matches!(err, likwid::LikwidError::Usage(_)), "tiny interval: {err:?}");
    }

    #[test]
    fn canonical_spec_is_builder_order_independent() {
        let a = Experiment::on(MachinePreset::WestmereEp2S)
            .seed(7)
            .samples(3)
            .threads(4)
            .placement(PlacementPolicy::Kmp(KmpAffinity::Scatter))
            .prefetchers_off(&[Prefetcher::Dcu, Prefetcher::Hardware]);
        let b = Experiment::on(MachinePreset::WestmereEp2S)
            .prefetchers_off(&[Prefetcher::Hardware])
            .prefetchers_off(&[Prefetcher::Dcu, Prefetcher::Hardware])
            .placement(PlacementPolicy::Kmp(KmpAffinity::Scatter))
            .threads(4)
            .samples(3)
            .seed(7);
        assert_eq!(a.canonical_spec(), b.canonical_spec());
        assert_eq!(a.spec_digest(), b.spec_digest());
    }

    #[test]
    fn distinct_specs_get_distinct_digests() {
        let base = Experiment::on(MachinePreset::WestmereEp2S).samples(3).seed(7);
        let variants = [
            base.clone().samples(4),
            base.clone().seed(8),
            base.clone().threads(2),
            base.clone().personality(crate::openmp::CompilerPersonality::Gcc),
            base.clone().placement(PlacementPolicy::LikwidPin(vec![0])),
            base.clone().prefetchers_off(&[Prefetcher::Ip]),
            base.clone().group(EventGroupKind::MEM),
            Experiment::on(MachinePreset::NehalemEp2S).samples(3).seed(7),
        ];
        let mut digests = vec![base.spec_digest()];
        digests.extend(variants.iter().map(|e| e.spec_digest()));
        let distinct: std::collections::HashSet<u64> = digests.iter().copied().collect();
        assert_eq!(distinct.len(), digests.len(), "every field must feed the digest");
    }

    #[test]
    fn canonical_spec_format_is_pinned() {
        // The memo keys of the fleet runner are derived from this string;
        // any change here aliases or orphans on-disk cache entries. If this
        // test fails because the format legitimately changed, bump the
        // `experiment/v1` version tag AND `likwid_fleet::memo::CODE_EPOCH`.
        let exp = Experiment::on(MachinePreset::Core2Quad)
            .placement(PlacementPolicy::LikwidPin(vec![0, 1]))
            .samples(2)
            .seed(42)
            .prefetchers_off(&[Prefetcher::Hardware]);
        assert_eq!(
            exp.canonical_spec(),
            "experiment/v1;preset=core2-quad;personality=IntelIcc;\
             policy=LikwidPin([0, 1]);threads=None;samples=2;seed=42;counters=None;\
             timeline=None;inject=None;prefetchers_off=[\"HW_PREFETCHER\"]"
        );
        // Splitmix-style pinned digest, like the sample_seed contract: a
        // silent change to the canonicalization cannot slip through.
        assert_eq!(exp.spec_digest(), fnv_splitmix(exp.canonical_spec().as_bytes()));
        let default = Experiment::on(MachinePreset::Core2Quad);
        assert_eq!(default.spec_digest(), fnv_splitmix(default.canonical_spec().as_bytes()));
    }

    /// Independent reimplementation of the digest, so the test fails if
    /// either the hash or the canonical string drifts.
    fn fnv_splitmix(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^ (h >> 31)
    }

    #[test]
    fn prefetchers_off_changes_the_machine_and_the_measurement() {
        let kernel = StreamingKernel::triad(4 << 20, 1);
        let on = Experiment::on(MachinePreset::WestmereEp2S)
            .placement(PlacementPolicy::LikwidPin(vec![0]))
            .run(&kernel)
            .unwrap();
        let off = Experiment::on(MachinePreset::WestmereEp2S)
            .placement(PlacementPolicy::LikwidPin(vec![0]))
            .prefetchers_off(Prefetcher::all())
            .run(&kernel)
            .unwrap();
        // Both runs complete; the knob must not corrupt the run itself.
        assert!(on.bandwidths()[0] > 0.0);
        assert!(off.bandwidths()[0] > 0.0);
        // AMD presets: documented no-op, the run still succeeds.
        let amd = Experiment::on(MachinePreset::IstanbulH2S)
            .placement(PlacementPolicy::LikwidPin(vec![0]))
            .prefetchers_off(Prefetcher::all())
            .run(&kernel)
            .unwrap();
        assert!(amd.bandwidths()[0] > 0.0);
    }

    #[test]
    fn unpinned_samples_vary_but_are_prefix_stable() {
        let kernel = StreamingKernel::copy(2 << 20, 1);
        let short = Experiment::on(MachinePreset::WestmereEp2S)
            .placement(PlacementPolicy::Unpinned)
            .threads(4)
            .samples(3)
            .seed(7)
            .run(&kernel)
            .unwrap();
        let long = Experiment::on(MachinePreset::WestmereEp2S)
            .placement(PlacementPolicy::Unpinned)
            .threads(4)
            .samples(6)
            .seed(7)
            .run(&kernel)
            .unwrap();
        assert_eq!(
            &long.placements[..3],
            &short.placements[..],
            "adding samples must not perturb earlier samples"
        );
        let distinct: std::collections::HashSet<Vec<usize>> =
            long.placements.iter().map(|p| p.compute.clone()).collect();
        assert!(distinct.len() > 1, "unpinned placements vary across samples");
    }
}

//! The 3D Jacobi smoother of case studies 2 and 3 (Figure 11, Table II).
//!
//! Three variants of an iterative 7-point Jacobi sweep over a cubic grid:
//!
//! * **threaded** — straightforward OpenMP-style domain decomposition over
//!   the outer (plane) dimension, ordinary (write-allocate) stores;
//! * **threaded (NT)** — the same with non-temporal stores, saving the
//!   write-allocate stream (about one third of the traffic, Table II);
//! * **wavefront** — the temporally blocked, pipeline-parallel variant of
//!   [Treibig et al.]: a group of four threads applies four time steps in a
//!   pipeline, passing intermediate planes through the *shared* cache, so
//!   that only the first read and the final write touch main memory.
//!
//! The variants are executed as cache-line-granularity address streams
//! through the cache simulator; the resulting traffic, combined with a
//! roofline model, yields MLUPS. The wavefront variant only works when its
//! four threads share a last-level cache — pinning the group 2+2 across the
//! sockets (Figure 11's "2 per socket" curve) turns the plane hand-off into
//! cross-socket memory traffic and performance collapses below the
//! baseline, which is exactly the effect the simulation reproduces.

use likwid_cache_sim::{
    AccessKind, HierarchyConfig, NodeCacheSystem, NodeStats, NumaPolicy, ReplayQueue, RunOp,
    ShardedCacheSystem,
};
use likwid_x86_machine::{MachinePreset, SimMachine};

use crate::exec::{ExecutionProfile, ProgressTrace};
use crate::workload::{Placement, Workload, WorkloadRun};

/// The Jacobi variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JacobiVariant {
    /// Standard threaded sweep with temporal (write-allocate) stores.
    Threaded,
    /// Standard threaded sweep with non-temporal stores.
    ThreadedNt,
    /// Pipeline-parallel temporal blocking through the shared cache
    /// (wavefront, one thread per pipeline stage).
    Wavefront,
}

impl JacobiVariant {
    /// Display name used in figures and tables.
    pub fn name(self) -> &'static str {
        match self {
            JacobiVariant::Threaded => "threaded",
            JacobiVariant::ThreadedNt => "threaded (NT)",
            JacobiVariant::Wavefront => "wavefront",
        }
    }

    /// Modelled pipeline cost per lattice-site update in core cycles. The
    /// wavefront kernel pays for the pipeline synchronisation and the
    /// in-cache copies, which is why its speedup stays well below the
    /// traffic reduction (Section IV-C).
    fn cycles_per_update(self) -> f64 {
        match self {
            JacobiVariant::Threaded | JacobiVariant::ThreadedNt => 6.0,
            JacobiVariant::Wavefront => 8.0,
        }
    }
}

/// Configuration of one Jacobi run.
#[derive(Debug, Clone, PartialEq)]
pub struct JacobiConfig {
    /// Grid size in every dimension (the paper sweeps 50–500).
    pub size: usize,
    /// Number of time steps. The wavefront variant processes
    /// [`JacobiConfig::WAVEFRONT_DEPTH`] steps per pass; use a multiple of
    /// it to compare equal work.
    pub time_steps: usize,
    /// The hardware threads the worker threads are pinned to, in pipeline
    /// order for the wavefront variant.
    pub placement: Vec<usize>,
    /// Which variant to run.
    pub variant: JacobiVariant,
}

impl JacobiConfig {
    /// Pipeline depth of the wavefront variant (the paper's 1×4 thread group).
    pub const WAVEFRONT_DEPTH: usize = 4;

    /// The paper's Table II setup: four threads on the physical cores of one
    /// socket of the Nehalem EP node.
    pub fn table2(variant: JacobiVariant, size: usize) -> Self {
        JacobiConfig {
            size,
            time_steps: Self::WAVEFRONT_DEPTH,
            placement: vec![0, 1, 2, 3],
            variant,
        }
    }
}

/// The outcome of one Jacobi run.
#[derive(Debug, Clone)]
pub struct JacobiResult {
    /// Million lattice site updates per second.
    pub mlups: f64,
    /// Modelled wall-clock time in seconds.
    pub runtime_s: f64,
    /// Total lattice site updates performed.
    pub updates: u64,
    /// Bytes moved to/from main memory (all sockets).
    pub memory_bytes: u64,
    /// Lines allocated into the last-level caches (`UNC_L3_LINES_IN_ANY`).
    pub l3_lines_in: u64,
    /// Lines victimized from the last-level caches (`UNC_L3_LINES_OUT_ANY`).
    pub l3_lines_out: u64,
    /// Full cache/memory statistics of the run.
    pub stats: NodeStats,
    /// Execution profile (cycles, instructions) consistent with the model.
    pub profile: ExecutionProfile,
}

/// The Jacobi workload bound to one machine.
pub struct Jacobi<'m> {
    machine: &'m SimMachine,
}

impl<'m> Jacobi<'m> {
    /// Bind the workload to a machine.
    pub fn new(machine: &'m SimMachine) -> Self {
        Jacobi { machine }
    }

    /// Run one configuration: simulate the address streams, then apply the
    /// performance model.
    pub fn run(&self, config: &JacobiConfig) -> JacobiResult {
        self.run_traced(config, None)
    }

    /// Run one configuration, optionally recording a progress trace for
    /// time-resolved measurement. The threaded variants tick after every
    /// sweep *and* after every fork/join barrier (the barrier moves no
    /// memory, so the timeline shows the alternating sweep/boundary phase
    /// structure); the wavefront variant ticks after every pipeline plane
    /// batch.
    pub fn run_traced(
        &self,
        config: &JacobiConfig,
        trace: Option<&mut ProgressTrace>,
    ) -> JacobiResult {
        assert!(!config.placement.is_empty(), "at least one worker thread is required");
        let line = 64u64;
        let n = config.size as u64;
        let elems_per_line = line / 8;
        let lines_per_row = n.div_ceil(elems_per_line);
        let plane_bytes = n * n * 8;
        let src_base = 0u64;
        let dst_base = plane_bytes * n + (1 << 20);

        // First-touch placement: the grid is initialised by the worker
        // threads themselves, so its pages are local to the socket the first
        // worker runs on (all workers, for the correctly pinned runs).
        let home_socket =
            self.machine.topology().hw_thread(config.placement[0]).map(|t| t.socket).unwrap_or(0);
        let hierarchy = HierarchyConfig::from_machine(
            self.machine,
            NumaPolicy::SingleNode { socket: home_socket },
        );
        let mut sys = NodeCacheSystem::new(hierarchy);

        let mut snapshots: Option<Vec<NodeStats>> = trace.as_ref().map(|_| Vec::new());
        match config.variant {
            JacobiVariant::Threaded | JacobiVariant::ThreadedNt => self.run_threaded(
                config,
                &mut sys,
                src_base,
                dst_base,
                lines_per_row,
                snapshots.as_mut(),
            ),
            JacobiVariant::Wavefront => self.run_wavefront(
                config,
                &mut sys,
                src_base,
                dst_base,
                lines_per_row,
                snapshots.as_mut(),
            ),
        }

        self.finish(config, sys.stats(), snapshots, trace)
    }

    /// Run a threaded variant through the parallel sharded engine with
    /// `workers` simulation worker threads. The address stream is emitted as
    /// an epoch-batched [`ReplayQueue`] (see
    /// [`Jacobi::threaded_replay_queue`]); results are bit-identical to a
    /// sequential drain of the same queue whatever the worker count. The
    /// wavefront variant pipelines every plane through shared ring buffers —
    /// there is no independent work to shard — so it falls back to the
    /// sequential path.
    pub fn run_sharded(&self, config: &JacobiConfig, workers: usize) -> JacobiResult {
        if config.variant == JacobiVariant::Wavefront {
            return self.run(config);
        }
        assert!(!config.placement.is_empty(), "at least one worker thread is required");
        let home_socket =
            self.machine.topology().hw_thread(config.placement[0]).map(|t| t.socket).unwrap_or(0);
        let hierarchy = HierarchyConfig::from_machine(
            self.machine,
            NumaPolicy::SingleNode { socket: home_socket },
        );
        let mut sys = ShardedCacheSystem::with_workers(hierarchy, workers);
        sys.replay(&self.threaded_replay_queue(config));
        self.finish(config, sys.stats(), None, None)
    }

    /// The threaded sweep as an epoch-batched replay queue. Each time step
    /// becomes two epochs: an *interior* epoch whose stores keep a two-plane
    /// margin to the thread's block boundaries (so each thread's loads stay
    /// inside its own block and socket shards proceed independently), and a
    /// *boundary* epoch with the remaining planes, whose stencil loads reach
    /// into the neighbour blocks and which the sharded engine therefore
    /// replays serially when the blocks straddle sockets.
    pub fn threaded_replay_queue(&self, config: &JacobiConfig) -> ReplayQueue {
        assert!(
            config.variant != JacobiVariant::Wavefront,
            "only the threaded variants replay as epochs"
        );
        let n = config.size as u64;
        let lines_per_row = n.div_ceil(8);
        let plane_bytes = n * n * 8;
        let src_base = 0u64;
        let dst_base = plane_bytes * n + (1 << 20);
        let threads = config.placement.len() as u64;
        let store_kind = if config.variant == JacobiVariant::ThreadedNt {
            AccessKind::NonTemporalStore
        } else {
            AccessKind::Store
        };

        let mut queue = ReplayQueue::new(self.machine.topology().num_hw_threads());
        let mut src = src_base;
        let mut dst = dst_base;
        for _step in 0..config.time_steps {
            // One plane's row sweep: the five stencil load runs, then the
            // destination store run, exactly as in `run_threaded`.
            let sweep_plane = |queue: &mut ReplayQueue, hw: usize, k: u64| {
                for j in 1..n - 1 {
                    for (kk, jj) in [(k, j), (k, j - 1), (k, j + 1), (k - 1, j), (k + 1, j)] {
                        queue.push(
                            hw,
                            RunOp::load_lines(
                                Self::line_addr(src, n, lines_per_row, kk, jj, 0),
                                lines_per_row,
                            ),
                        );
                    }
                    queue.push(
                        hw,
                        RunOp {
                            base: Self::line_addr(dst, n, lines_per_row, k, j, 0),
                            stride: 64,
                            count: lines_per_row,
                            size: 64,
                            kind: store_kind,
                        },
                    );
                }
            };

            queue.begin_epoch();
            for (t_index, &hw) in config.placement.iter().enumerate() {
                let k_begin = 1 + (t_index as u64) * (n - 2) / threads;
                let k_end = 1 + (t_index as u64 + 1) * (n - 2) / threads;
                for k in (k_begin + 2)..k_end.saturating_sub(2) {
                    sweep_plane(&mut queue, hw, k);
                }
            }
            queue.begin_epoch();
            for (t_index, &hw) in config.placement.iter().enumerate() {
                let k_begin = 1 + (t_index as u64) * (n - 2) / threads;
                let k_end = 1 + (t_index as u64 + 1) * (n - 2) / threads;
                for k in k_begin..k_end {
                    let interior = k >= k_begin + 2 && k + 2 < k_end;
                    if !interior {
                        sweep_plane(&mut queue, hw, k);
                    }
                }
            }
            std::mem::swap(&mut src, &mut dst);
        }
        queue
    }

    /// Address of the line `l` of row `j` of plane `k` of the array at `base`.
    fn line_addr(base: u64, n: u64, lines_per_row: u64, k: u64, j: u64, l: u64) -> u64 {
        base + ((k * n + j) * lines_per_row + l) * 64
    }

    /// The standard threaded sweep: every thread owns a contiguous block of
    /// planes; for every destination row it streams the five source rows of
    /// the stencil (same row, j±1, k±1; the i±1 neighbours live in the same
    /// line) and the destination row, each as one batched line run.
    fn run_threaded(
        &self,
        config: &JacobiConfig,
        sys: &mut NodeCacheSystem,
        src_base: u64,
        dst_base: u64,
        lines_per_row: u64,
        mut snapshots: Option<&mut Vec<NodeStats>>,
    ) {
        let n = config.size as u64;
        let threads = config.placement.len() as u64;
        let nt = config.variant == JacobiVariant::ThreadedNt;
        let mut src = src_base;
        let mut dst = dst_base;
        for _step in 0..config.time_steps {
            for (t_index, &hw) in config.placement.iter().enumerate() {
                let k_begin = 1 + (t_index as u64) * (n - 2) / threads;
                let k_end = 1 + (t_index as u64 + 1) * (n - 2) / threads;
                for k in k_begin..k_end {
                    for j in 1..n - 1 {
                        for (kk, jj) in [(k, j), (k, j - 1), (k, j + 1), (k - 1, j), (k + 1, j)] {
                            sys.access_run(
                                hw,
                                Self::line_addr(src, n, lines_per_row, kk, jj, 0),
                                64,
                                lines_per_row,
                                64,
                                likwid_cache_sim::AccessKind::Load,
                            );
                        }
                        let kind = if nt {
                            likwid_cache_sim::AccessKind::NonTemporalStore
                        } else {
                            likwid_cache_sim::AccessKind::Store
                        };
                        sys.access_run(
                            hw,
                            Self::line_addr(dst, n, lines_per_row, k, j, 0),
                            64,
                            lines_per_row,
                            64,
                            kind,
                        );
                    }
                }
            }
            std::mem::swap(&mut src, &mut dst);
            if let Some(snapshots) = snapshots.as_deref_mut() {
                snapshots.push(sys.stats());
            }
        }
    }

    /// The wavefront variant: `WAVEFRONT_DEPTH` threads form a pipeline.
    /// Stage 0 reads the source array from memory and writes into a small
    /// ring buffer; stages 1..d-1 read the previous stage's ring buffer and
    /// write their own; the last stage writes the result array with
    /// non-temporal stores. The ring buffers are sized to stay resident in
    /// the shared cache (the real code's temporal blocking), so when all
    /// stages share an L3 the intermediate traffic never reaches memory.
    fn run_wavefront(
        &self,
        config: &JacobiConfig,
        sys: &mut NodeCacheSystem,
        src_base: u64,
        dst_base: u64,
        lines_per_row: u64,
        mut snapshots: Option<&mut Vec<NodeStats>>,
    ) {
        let n = config.size as u64;
        let depth = JacobiConfig::WAVEFRONT_DEPTH.min(config.placement.len());
        let passes = (config.time_steps / JacobiConfig::WAVEFRONT_DEPTH).max(1);

        // Ring buffers: one per pipeline stage boundary, holding 4 planes of
        // a j-tile. The tile width is chosen so that all buffers together
        // use at most about half of one LLC instance.
        let llc_bytes = self.machine.caches().last().map(|c| c.size_bytes).unwrap_or(8 << 20);
        let bytes_per_row = lines_per_row * 64;
        let max_tile_rows = ((llc_bytes / 2) / ((depth as u64).max(1) * 4 * bytes_per_row)).max(4);
        let tile_rows = max_tile_rows.min(n);
        let ring_bytes = 4 * tile_rows * bytes_per_row;
        let ring_base = |stage: u64| dst_base + (1 << 28) + stage * (ring_bytes + (1 << 20));

        let ring_addr = |stage: u64, k: u64, j_in_tile: u64, l: u64| {
            ring_base(stage) + ((k % 4) * tile_rows + j_in_tile) * bytes_per_row + l * 64
        };

        for _pass in 0..passes {
            let mut j0 = 1;
            while j0 < n - 1 {
                let rows = tile_rows.min(n - 1 - j0);
                // Pipelined sweep over planes: in steady state stage p works
                // on plane k - p.
                for k in 1..(n - 1 + depth as u64) {
                    for (stage, &hw) in config.placement.iter().enumerate().take(depth) {
                        let stage = stage as u64;
                        let Some(plane) = k.checked_sub(stage) else { continue };
                        if plane < 1 || plane >= n - 1 {
                            continue;
                        }
                        for j_off in 0..rows {
                            let j = j0 + j_off;
                            // Input: memory for stage 0, the previous
                            // stage's ring buffer otherwise (three
                            // neighbouring planes of it) — one batched line
                            // run per plane row.
                            if stage == 0 {
                                for kk in [plane - 1, plane, plane + 1] {
                                    sys.access_run(
                                        hw,
                                        Self::line_addr(src_base, n, lines_per_row, kk, j, 0),
                                        64,
                                        lines_per_row,
                                        64,
                                        likwid_cache_sim::AccessKind::Load,
                                    );
                                }
                            } else {
                                for kk in [plane.saturating_sub(1), plane, plane + 1] {
                                    sys.access_run(
                                        hw,
                                        ring_addr(stage - 1, kk, j_off, 0),
                                        64,
                                        lines_per_row,
                                        64,
                                        likwid_cache_sim::AccessKind::Load,
                                    );
                                }
                            }
                            // Output: the own ring buffer, or the result
                            // array (streaming stores) for the last stage.
                            if stage == depth as u64 - 1 {
                                sys.access_run(
                                    hw,
                                    Self::line_addr(dst_base, n, lines_per_row, plane, j, 0),
                                    64,
                                    lines_per_row,
                                    64,
                                    likwid_cache_sim::AccessKind::NonTemporalStore,
                                );
                            } else {
                                sys.access_run(
                                    hw,
                                    ring_addr(stage, plane, j_off, 0),
                                    64,
                                    lines_per_row,
                                    64,
                                    likwid_cache_sim::AccessKind::Store,
                                );
                            }
                        }
                    }
                    if let Some(snapshots) = snapshots.as_deref_mut() {
                        snapshots.push(sys.stats());
                    }
                }
                j0 += rows;
            }
        }
    }

    /// Apply the roofline model to the simulated traffic and assemble the
    /// result.
    fn finish(
        &self,
        config: &JacobiConfig,
        stats: NodeStats,
        snapshots: Option<Vec<NodeStats>>,
        trace: Option<&mut ProgressTrace>,
    ) -> JacobiResult {
        let topo = self.machine.topology();
        let memory = self.machine.memory_system();
        let clock = self.machine.clock();
        let n = config.size as u64;
        let interior = (n - 2).max(1);
        let updates = interior * interior * interior * config.time_steps as u64;

        // Traffic.
        let local_bytes: u64 = stats
            .memory
            .iter()
            .map(|m| {
                // Local vs. remote by transaction counts.
                let total_tx = m.local_reads + m.remote_reads + m.local_writes + m.remote_writes;
                if total_tx == 0 {
                    return 0;
                }
                let local_tx = m.local_reads + m.local_writes;
                m.total_bytes() * local_tx / total_tx
            })
            .sum();
        let total_bytes = stats.total_memory_bytes();
        let remote_bytes = total_bytes - local_bytes;

        let llc_total =
            stats.level_total(self.machine.caches().last().map(|c| c.level).unwrap_or(3));
        let l3_bytes = (llc_total.lines_in + llc_total.lines_out) * 64;

        // Effective bandwidths for this placement.
        let sockets_used: std::collections::HashSet<u32> = config
            .placement
            .iter()
            .filter_map(|&hw| topo.hw_thread(hw).ok().map(|t| t.socket))
            .collect();
        let streamers = match config.variant {
            JacobiVariant::Threaded | JacobiVariant::ThreadedNt => config.placement.len(),
            // Only the first and last pipeline stage touch main memory.
            JacobiVariant::Wavefront => 2,
        };
        let local_bw = (streamers as f64 * memory.per_core_bandwidth_bps)
            .min(memory.socket_bandwidth_bps * sockets_used.len().max(1) as f64);

        // Pipeline hand-off penalty (wavefront only): every stage boundary
        // whose producer and consumer sit on different sockets cannot pass
        // the intermediate planes through a shared cache. The consumer's
        // full stencil input (three planes, 24 B/update), the producer's
        // store stream with its read-for-ownership (16 B/update) and the
        // per-plane pipeline synchronisation flushes (8 B/update) — 48 bytes
        // per update handled by that boundary — cross the interconnect
        // instead. The factor is calibrated so that the wrongly pinned
        // wavefront lands at/below the threaded baseline, the collapse the
        // paper reports in Figure 11.
        let cross_socket_handoff_bytes = if config.variant == JacobiVariant::Wavefront {
            let depth = JacobiConfig::WAVEFRONT_DEPTH.min(config.placement.len()).max(1);
            let crossing_boundaries = config
                .placement
                .windows(2)
                .take(depth - 1)
                .filter(|w| {
                    let a = topo.hw_thread(w[0]).map(|t| t.socket).unwrap_or(0);
                    let b = topo.hw_thread(w[1]).map(|t| t.socket).unwrap_or(0);
                    a != b
                })
                .count() as u64;
            crossing_boundaries * (updates / depth as u64) * 48
        } else {
            0
        };

        let memory_time = local_bytes as f64 / local_bw
            + (remote_bytes + cross_socket_handoff_bytes) as f64 / memory.remote_bandwidth_bps;

        let l3_bw = 2.5 * memory.socket_bandwidth_bps * sockets_used.len().max(1) as f64;
        let l3_time = l3_bytes as f64 / l3_bw;

        let compute_time = (updates as f64 / config.placement.len() as f64)
            * config.variant.cycles_per_update()
            / clock.frequency_hz;

        // The straightforward OpenMP variants pay a fork/join barrier per
        // sweep; at small grid sizes this overhead dominates, which is why
        // the threaded baseline curve of Figure 11 starts low. The wavefront
        // kernel's per-plane pipeline synchronisation is already folded into
        // its higher cycles-per-update cost.
        let sync_time = match config.variant {
            JacobiVariant::Threaded | JacobiVariant::ThreadedNt => config.time_steps as f64 * 60e-6,
            JacobiVariant::Wavefront => 0.0,
        };

        let runtime_s = memory_time.max(l3_time).max(compute_time) + sync_time;
        let mlups = updates as f64 / runtime_s / 1e6;

        // Execution profile consistent with the model (drives the counting
        // engine when the run is measured through likwid-perfctr).
        let mut profile = ExecutionProfile::new(topo.num_hw_threads());
        let cycles = clock.seconds_to_cycles(runtime_s);
        for &hw in &config.placement {
            profile.cycles[hw] = cycles;
            let per_thread_updates = updates / config.placement.len() as u64;
            profile.instructions[hw] = per_thread_updates * 10;
            profile.simd_packed_double[hw] = per_thread_updates * 4;
            profile.branches[hw] = per_thread_updates;
            profile.branch_misses[hw] = per_thread_updates / 64;
        }

        // Materialize the progress trace: convert the recorded cumulative
        // stats snapshots into ticks with virtual timestamps, spreading the
        // profile linearly over time. The threaded variants insert a
        // zero-traffic tick after every sweep for the fork/join barrier, so
        // the timeline shows the sweep/boundary alternation; the wavefront
        // spreads its plane batches uniformly (its pipeline sync cost is
        // folded into cycles-per-update).
        if let (Some(snapshots), Some(trace)) = (snapshots, trace) {
            let m = snapshots.len().max(1);
            match config.variant {
                JacobiVariant::Threaded | JacobiVariant::ThreadedNt => {
                    let sync_each = sync_time / config.time_steps.max(1) as f64;
                    let sweep_each = (runtime_s - sync_time) / m as f64;
                    let mut t = 0.0;
                    for (i, stats) in snapshots.iter().enumerate() {
                        t += sweep_each;
                        trace.record(t, stats.clone(), profile.scaled(t / runtime_s));
                        t = if i + 1 == m { runtime_s } else { t + sync_each };
                        trace.record(t, stats.clone(), profile.scaled(t / runtime_s));
                    }
                }
                JacobiVariant::Wavefront => {
                    for (i, stats) in snapshots.iter().enumerate() {
                        let t = if i + 1 == m {
                            runtime_s
                        } else {
                            runtime_s * (i + 1) as f64 / m as f64
                        };
                        trace.record(t, stats.clone(), profile.scaled(t / runtime_s));
                    }
                }
            }
        }

        JacobiResult {
            mlups,
            runtime_s,
            updates,
            memory_bytes: total_bytes,
            l3_lines_in: llc_total.lines_in,
            l3_lines_out: llc_total.lines_out,
            stats,
            profile,
        }
    }
}

/// Convenience: run one Table II style measurement on a machine preset.
pub fn run_on_preset(preset: MachinePreset, config: &JacobiConfig) -> JacobiResult {
    let machine = SimMachine::new(preset);
    Jacobi::new(&machine).run(config)
}

/// The Jacobi smoother as a pluggable [`Workload`]: one variant at one grid
/// size, executed for the placement the experiment harness resolves. An
/// iteration is one lattice-site update, so
/// [`WorkloadRun::iterations_per_second`] `/ 1e6` is the MLUPS figure of
/// the paper.
#[derive(Debug, Clone, Copy)]
pub struct JacobiWorkload {
    /// Which variant to run.
    pub variant: JacobiVariant,
    /// Grid size in every dimension.
    pub size: usize,
    /// Number of time steps.
    pub time_steps: usize,
}

impl Workload for JacobiWorkload {
    fn name(&self) -> &str {
        match self.variant {
            JacobiVariant::Threaded => "jacobi-threaded",
            JacobiVariant::ThreadedNt => "jacobi-threaded-nt",
            JacobiVariant::Wavefront => "jacobi-wavefront",
        }
    }

    fn flops_per_iteration(&self) -> f64 {
        8.0 // 7-point stencil: six adds and two multiplies per update
    }

    fn bytes_per_iteration(&self) -> f64 {
        // Streaming traffic per update once the grid exceeds the caches:
        // the stencil neighbours come from cache, so the source costs one
        // read; the destination costs write-allocate plus write-back (or a
        // streamed store); the wavefront touches memory only at the
        // pipeline's two ends, once per WAVEFRONT_DEPTH time steps.
        match self.variant {
            JacobiVariant::Threaded => 24.0,
            JacobiVariant::ThreadedNt => 16.0,
            JacobiVariant::Wavefront => 16.0 / JacobiConfig::WAVEFRONT_DEPTH as f64,
        }
    }

    fn working_set_bytes(&self) -> u64 {
        2 * (self.size as u64).pow(3) * 8
    }

    fn run(&self, machine: &SimMachine, placement: &Placement) -> WorkloadRun {
        self.traced(machine, placement, None)
    }

    fn run_traced(
        &self,
        machine: &SimMachine,
        placement: &Placement,
        trace: &mut ProgressTrace,
    ) -> WorkloadRun {
        self.traced(machine, placement, Some(trace))
    }
}

impl JacobiWorkload {
    fn traced(
        &self,
        machine: &SimMachine,
        placement: &Placement,
        trace: Option<&mut ProgressTrace>,
    ) -> WorkloadRun {
        let result = Jacobi::new(machine).run_traced(
            &JacobiConfig {
                size: self.size,
                time_steps: self.time_steps,
                placement: placement.compute.clone(),
                variant: self.variant,
            },
            trace,
        );
        WorkloadRun {
            iterations: result.updates,
            runtime_s: result.runtime_s,
            bandwidth_mbs: result.memory_bytes as f64 / result.runtime_s / 1e6,
            mflops: result.updates as f64 * self.flops_per_iteration() / result.runtime_s / 1e6,
            stats: result.stats,
            profile: result.profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Grid size used by the heavier tests: large enough that the two grids
    /// (≈18 MB) stream through the Nehalem preset's 8 MB L3 without reuse
    /// between sweeps, so the memory-traffic differences of Table II
    /// actually materialise.
    const TEST_SIZE: usize = 104;

    fn nehalem() -> SimMachine {
        SimMachine::new(MachinePreset::NehalemEp2S)
    }

    fn run_sized(
        machine: &SimMachine,
        variant: JacobiVariant,
        placement: Vec<usize>,
        size: usize,
    ) -> JacobiResult {
        Jacobi::new(machine).run(&JacobiConfig {
            size,
            time_steps: JacobiConfig::WAVEFRONT_DEPTH,
            placement,
            variant,
        })
    }

    fn run(machine: &SimMachine, variant: JacobiVariant, placement: Vec<usize>) -> JacobiResult {
        run_sized(machine, variant, placement, TEST_SIZE)
    }

    #[test]
    fn table2_traffic_performance_and_ballpark() {
        let machine = nehalem();
        let one_socket = vec![0, 1, 2, 3];
        let threaded = run(&machine, JacobiVariant::Threaded, one_socket.clone());
        let nt = run(&machine, JacobiVariant::ThreadedNt, one_socket.clone());
        let blocked = run(&machine, JacobiVariant::Wavefront, one_socket);

        // Traffic ordering of Table II: NT saves roughly the write-allocate
        // third, temporal blocking cuts traffic by several x.
        assert!(
            nt.memory_bytes as f64 <= 0.8 * threaded.memory_bytes as f64,
            "NT vs threaded traffic: {} vs {}",
            nt.memory_bytes,
            threaded.memory_bytes
        );
        assert!(
            (blocked.memory_bytes as f64) < 0.45 * threaded.memory_bytes as f64,
            "blocked vs threaded traffic: {} vs {}",
            blocked.memory_bytes,
            threaded.memory_bytes
        );
        // The same ordering shows up in the uncore L3 line counts.
        assert!(blocked.l3_lines_in < nt.l3_lines_in);
        assert!(nt.l3_lines_in < threaded.l3_lines_in);

        // Performance ordering: threaded < NT < blocked …
        assert!(nt.mlups > threaded.mlups, "{} !> {}", nt.mlups, threaded.mlups);
        assert!(blocked.mlups > nt.mlups, "{} !> {}", blocked.mlups, nt.mlups);
        // … but the speedup lags far behind the traffic reduction (IV-C).
        let speedup = blocked.mlups / threaded.mlups;
        let traffic_reduction = threaded.memory_bytes as f64 / blocked.memory_bytes as f64;
        assert!(
            speedup < 0.75 * traffic_reduction,
            "speedup {speedup} must lag the traffic reduction {traffic_reduction}"
        );

        // Paper Table II reports 784 / 1032 / 1331 MLUPS; the simulated
        // substrate is not the authors' testbed, so require the right
        // ballpark rather than exact values.
        assert!(threaded.mlups > 400.0 && threaded.mlups < 1100.0, "threaded {}", threaded.mlups);
        assert!(nt.mlups > 600.0 && nt.mlups < 1400.0, "NT {}", nt.mlups);
        assert!(blocked.mlups > 900.0 && blocked.mlups < 1800.0, "blocked {}", blocked.mlups);
    }

    #[test]
    fn figure11_wrong_pinning_ruins_the_wavefront() {
        let machine = nehalem();
        // Right: the four pipeline stages on the physical cores of socket 0.
        let right = run(&machine, JacobiVariant::Wavefront, vec![0, 1, 2, 3]);
        // Wrong: pairs of stages split across the two sockets.
        let wrong = run(&machine, JacobiVariant::Wavefront, vec![0, 1, 4, 5]);
        let baseline = run(&machine, JacobiVariant::Threaded, vec![0, 1, 2, 3]);
        assert!(
            right.mlups > 1.5 * wrong.mlups,
            "wrong pinning must cost about a factor of two: {} vs {}",
            right.mlups,
            wrong.mlups
        );
        assert!(
            wrong.memory_bytes as f64 > 1.25 * right.memory_bytes as f64,
            "the plane hand-off turns into measurable memory traffic: {} vs {}",
            wrong.memory_bytes,
            right.memory_bytes
        );
        // And the badly pinned wavefront drops to (or below) the plain
        // threaded baseline, as in Figure 11.
        assert!(wrong.mlups < 1.1 * baseline.mlups);
    }

    #[test]
    fn updates_and_runtime_are_consistent() {
        let machine = nehalem();
        let size = 32;
        let result = run_sized(&machine, JacobiVariant::Threaded, vec![0, 1, 2, 3], size);
        let n = (size - 2) as u64;
        assert_eq!(result.updates, n * n * n * 4);
        assert!(result.runtime_s > 0.0);
        assert!((result.mlups - result.updates as f64 / result.runtime_s / 1e6).abs() < 1e-6);
        // The profile charges cycles to exactly the worker threads.
        assert!(result.profile.cycles[0] > 0);
        assert_eq!(result.profile.cycles[7], 0);
    }

    #[test]
    fn workload_trait_run_matches_the_direct_run() {
        let machine = nehalem();
        let direct = run_sized(&machine, JacobiVariant::Wavefront, vec![0, 1, 2, 3], 48);
        let run = JacobiWorkload { variant: JacobiVariant::Wavefront, size: 48, time_steps: 4 }
            .run(&machine, &Placement::pinned(vec![0, 1, 2, 3]));
        assert_eq!(run.iterations, direct.updates);
        assert_eq!(run.runtime_s, direct.runtime_s);
        assert_eq!(run.stats, direct.stats);
        assert!((run.iterations_per_second() / 1e6 - direct.mlups).abs() < 1e-9);
    }

    #[test]
    fn sharded_replay_matches_the_sequential_drain_of_the_same_queue() {
        let machine = nehalem();
        // Socket-straddling placement on a grid whose planes span two
        // directory pages, so the interior epochs actually shard.
        for variant in [JacobiVariant::Threaded, JacobiVariant::ThreadedNt] {
            let config =
                JacobiConfig { size: 32, time_steps: 3, placement: vec![0, 1, 4, 5], variant };
            let jacobi = Jacobi::new(&machine);
            let queue = jacobi.threaded_replay_queue(&config);
            let home =
                machine.topology().hw_thread(config.placement[0]).map(|t| t.socket).unwrap_or(0);
            let hierarchy =
                HierarchyConfig::from_machine(&machine, NumaPolicy::SingleNode { socket: home });
            let mut sequential = NodeCacheSystem::new(hierarchy.clone());
            sequential.replay(&queue);
            for workers in [1, 2, 4] {
                let mut sharded = ShardedCacheSystem::with_workers(hierarchy.clone(), workers);
                sharded.replay(&queue);
                assert_eq!(
                    sharded.stats(),
                    sequential.stats(),
                    "{} with {workers} workers",
                    variant.name()
                );
                assert!(
                    sharded.epochs_parallel() > 0,
                    "{} interior epochs must shard",
                    variant.name()
                );
            }
            // The full sharded run agrees with itself at any worker count.
            let one = jacobi.run_sharded(&config, 1);
            let four = jacobi.run_sharded(&config, 4);
            assert_eq!(one.stats, four.stats);
            assert_eq!(one.mlups, four.mlups);
        }
    }

    #[test]
    fn sharded_wavefront_falls_back_to_the_sequential_run() {
        let machine = nehalem();
        let config = JacobiConfig {
            size: 48,
            time_steps: 4,
            placement: vec![0, 1, 2, 3],
            variant: JacobiVariant::Wavefront,
        };
        let jacobi = Jacobi::new(&machine);
        let direct = jacobi.run(&config);
        let sharded = jacobi.run_sharded(&config, 4);
        assert_eq!(sharded.stats, direct.stats);
        assert_eq!(sharded.mlups, direct.mlups);
    }

    #[test]
    fn wavefront_needs_the_shared_cache_not_just_any_four_cores() {
        // Same experiment on the Westmere preset with its 12 MB L3: the
        // correctly pinned wavefront must beat the split one there too.
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let size = 64;
        let right = run_sized(&machine, JacobiVariant::Wavefront, vec![0, 1, 2, 3], size);
        let wrong = run_sized(&machine, JacobiVariant::Wavefront, vec![0, 1, 6, 7], size);
        assert!(right.mlups > 1.3 * wrong.mlups, "{} vs {}", right.mlups, wrong.mlups);
    }
}

//! The registered microbenchmark kernels of the `likwid-bench` harness.
//!
//! Each kernel is a [`Workload`] driven as cache-line-granularity address
//! streams through the cache simulator, so its memory traffic — including
//! write-allocate transfers — is *measured*, not assumed. The modelled
//! runtime combines the measured traffic with the machine's bandwidth
//! model (roofline style), which makes bandwidth and MFlops/s fall out for
//! any placement on any machine preset.
//!
//! The registry covers the classic STREAM family plus a dependent-load
//! latency probe:
//!
//! | name    | kernel                | streams (R+W)     | flops/elem |
//! |---------|-----------------------|-------------------|------------|
//! | `copy`  | `a[i] = b[i]`         | 1 + 1             | 0          |
//! | `scale` | `a[i] = s*b[i]`       | 1 + 1             | 1          |
//! | `add`   | `a[i] = b[i] + c[i]`  | 2 + 1             | 1          |
//! | `triad` | `a[i] = b[i] + s*c[i]`| 2 + 1             | 2          |
//! | `daxpy` | `y[i] += a*x[i]`      | 2 + 1 (y is both) | 2          |
//! | `chase` | pointer chase         | 1 dependent load  | 0          |

use likwid_cache_sim::{Access, HierarchyConfig, NodeCacheSystem, NumaPolicy, ReplayQueue, RunOp};
use likwid_x86_machine::SimMachine;

use crate::coherence::StoreCoherence;
use crate::exec::ExecutionProfile;
use crate::perfmodel::{BandwidthModel, StreamKernelModel};
use crate::workload::{Placement, Workload, WorkloadRun};

/// Lines per blocked sub-run: small enough that all streams of a block stay
/// resident between their load and store passes (4 KiB per stream), so a
/// read-modify-write target is not write-allocated twice.
const BLOCK_LINES: u64 = 64;

/// Gap between consecutive arrays, so streams never share a page.
const ARRAY_GAP: u64 = 1 << 21;

/// A STREAM-style streaming kernel, parameterised by its stream counts.
#[derive(Debug, Clone)]
pub struct StreamingKernel {
    name: &'static str,
    /// Arrays that are only read.
    read_streams: u64,
    /// Whether the kernel writes an output array.
    writes: bool,
    /// Whether the written array is also one of the read streams (`daxpy`'s
    /// `y` — a read-modify-write target pays no write-allocate).
    store_is_read: bool,
    flops_per_element: f64,
    working_set_bytes: u64,
    /// Passes over the working set.
    passes: u64,
}

impl StreamingKernel {
    fn new(
        name: &'static str,
        read_streams: u64,
        store_is_read: bool,
        flops_per_element: f64,
        working_set_bytes: u64,
        passes: u64,
    ) -> Self {
        StreamingKernel {
            name,
            read_streams,
            writes: true,
            store_is_read,
            flops_per_element,
            working_set_bytes,
            passes: passes.max(1),
        }
    }

    /// STREAM copy: `a[i] = b[i]`.
    pub fn copy(working_set_bytes: u64, passes: u64) -> Self {
        Self::new("copy", 1, false, 0.0, working_set_bytes, passes)
    }

    /// STREAM scale: `a[i] = s*b[i]`.
    pub fn scale(working_set_bytes: u64, passes: u64) -> Self {
        Self::new("scale", 1, false, 1.0, working_set_bytes, passes)
    }

    /// STREAM add: `a[i] = b[i] + c[i]`.
    pub fn add(working_set_bytes: u64, passes: u64) -> Self {
        Self::new("add", 2, false, 1.0, working_set_bytes, passes)
    }

    /// STREAM triad: `a[i] = b[i] + s*c[i]`.
    pub fn triad(working_set_bytes: u64, passes: u64) -> Self {
        Self::new("triad", 2, false, 2.0, working_set_bytes, passes)
    }

    /// BLAS-1 daxpy: `y[i] = y[i] + a*x[i]` — the output vector is also an
    /// input, so its stores pay no write-allocate.
    pub fn daxpy(working_set_bytes: u64, passes: u64) -> Self {
        Self::new("daxpy", 2, true, 2.0, working_set_bytes, passes)
    }

    /// Number of distinct arrays the kernel touches.
    fn num_arrays(&self) -> u64 {
        self.read_streams + if self.writes && !self.store_is_read { 1 } else { 0 }
    }

    /// Elements per array: the working set split evenly, whole lines, and
    /// never zero — a degenerate `-w` still streams one line per array
    /// instead of producing a 0-iteration run with NaN-valued rates.
    fn elements_per_array(&self) -> u64 {
        ((self.working_set_bytes / (8 * self.num_arrays().max(1))) & !7).max(8)
    }

    /// Useful bytes per element as STREAM counts them (reads + writes, no
    /// write-allocate).
    fn useful_bytes_per_element(&self) -> f64 {
        8.0 * (self.read_streams + u64::from(self.writes)) as f64
    }

    /// The kernel's whole access stream as an epoch-batched replay queue
    /// (one epoch per pass), in exactly the order the blocked per-thread
    /// loop issues it.
    fn replay_queue(&self, num_hw_threads: usize, threads: &[usize]) -> ReplayQueue {
        let elems = self.elements_per_array();
        let lines = elems / 8;
        let array_bytes = elems * 8;
        let base_of = |array: u64| array * (array_bytes + ARRAY_GAP);
        let store_array = if self.store_is_read {
            // The last read stream is the read-modify-write target.
            self.read_streams - 1
        } else {
            self.read_streams
        };
        let num_threads = threads.len() as u64;
        let chunk = |t: u64| (t * lines / num_threads, (t + 1) * lines / num_threads);

        let mut queue = ReplayQueue::new(num_hw_threads);
        for _pass in 0..self.passes {
            queue.begin_epoch();
            for (t, &hw) in threads.iter().enumerate() {
                let (l0, l1) = chunk(t as u64);
                let mut block = l0;
                while block < l1 {
                    let count = BLOCK_LINES.min(l1 - block);
                    for array in 0..self.read_streams {
                        queue.push(hw, RunOp::load_lines(base_of(array) + block * 64, count));
                    }
                    if self.writes {
                        queue
                            .push(hw, RunOp::store_lines(base_of(store_array) + block * 64, count));
                    }
                    block += count;
                }
            }
        }
        queue
    }
}

impl Workload for StreamingKernel {
    fn name(&self) -> &str {
        self.name
    }

    fn flops_per_iteration(&self) -> f64 {
        self.flops_per_element
    }

    fn bytes_per_iteration(&self) -> f64 {
        let store_bytes = if !self.writes {
            0.0
        } else if self.store_is_read {
            8.0 // the line is already present from the read: write-back only
        } else {
            16.0 // write-allocate read plus eventual write-back
        };
        8.0 * self.read_streams as f64 + store_bytes
    }

    fn working_set_bytes(&self) -> u64 {
        // The bytes the kernel actually touches: the requested budget split
        // into equal whole-line arrays (with the one-line floor), not the
        // raw `-w` value.
        self.num_arrays() * self.elements_per_array() * 8
    }

    fn run(&self, machine: &SimMachine, placement: &Placement) -> WorkloadRun {
        let threads = &placement.compute;
        assert!(!threads.is_empty(), "at least one thread is required");
        let topo = machine.topology();
        let elems = self.elements_per_array();
        let lines = elems / 8;

        // First-touch placement, as in the Jacobi runs: the pages live on
        // the socket of the thread that initialised them.
        let home_socket = topo.hw_thread(placement.init[0]).map(|t| t.socket).unwrap_or(0);
        let hierarchy =
            HierarchyConfig::from_machine(machine, NumaPolicy::SingleNode { socket: home_socket });
        let mut sys = NodeCacheSystem::new(hierarchy);
        sys.replay(&self.replay_queue(topo.num_hw_threads(), threads));

        let num_threads = threads.len() as u64;
        let chunk = |t: u64| (t * lines / num_threads, (t + 1) * lines / num_threads);
        let stats = sys.stats();
        let iterations = self.passes * elems;

        // Roofline: the measured memory traffic over the bandwidth the
        // placement can achieve, against the in-core throughput limit.
        let memory = machine.memory_system();
        let model = BandwidthModel::new(topo, memory);
        let kernel_model = StreamKernelModel {
            traffic_bytes_per_iteration: self.bytes_per_iteration(),
            useful_bytes_per_iteration: self.useful_bytes_per_element(),
            per_core_traffic_bps: memory.per_core_bandwidth_bps,
            smt_benefit: 0.05,
        };
        let homes = model.home_sockets(threads.len(), &placement.init);
        let achieved_bps = model.achieved_traffic_bps(threads, &homes, &kernel_model);
        let memory_time = stats.total_memory_bytes() as f64 / achieved_bps;
        let cycles_per_element = 1.0 + self.flops_per_element / 2.0;
        // The in-core bound is set by the busiest thread's chunk (with a
        // degenerate working set some threads may own no lines at all).
        let max_thread_elems = (0..num_threads)
            .map(|t| {
                let (l0, l1) = chunk(t);
                (l1 - l0) * 8 * self.passes
            })
            .max()
            .unwrap_or(0);
        let compute_time =
            max_thread_elems as f64 * cycles_per_element / machine.clock().frequency_hz;
        let runtime_s = memory_time.max(compute_time);

        let mut profile = ExecutionProfile::new(topo.num_hw_threads());
        let cycles = machine.clock().seconds_to_cycles(runtime_s);
        for (t, &hw) in threads.iter().enumerate() {
            let (l0, l1) = chunk(t as u64);
            if l0 == l1 {
                continue; // this thread owned no lines and did no work
            }
            profile.credit_streaming_thread(
                hw,
                cycles,
                (l1 - l0) * 8 * self.passes,
                self.read_streams + u64::from(self.writes) + 1,
                self.flops_per_element,
            );
        }

        let useful_bytes = iterations as f64 * self.useful_bytes_per_element();
        WorkloadRun {
            iterations,
            runtime_s,
            bandwidth_mbs: useful_bytes / runtime_s / 1e6,
            mflops: iterations as f64 * self.flops_per_element / runtime_s / 1e6,
            stats,
            profile,
        }
    }
}

/// A serial pointer-chase latency workload: one thread follows a full-period
/// permutation of the cache lines of its working set, one dependent load at
/// a time. The modelled runtime charges every access the latency of the
/// cache level that satisfied it, so the time per iteration *is* the average
/// load-to-use latency — a scenario the paper never ran.
#[derive(Debug, Clone)]
pub struct PointerChase {
    working_set_bytes: u64,
    passes: u64,
}

impl PointerChase {
    /// A chase over `working_set_bytes` (rounded down to a power-of-two
    /// number of cache lines), `passes` rounds through the permutation.
    pub fn new(working_set_bytes: u64, passes: u64) -> Self {
        PointerChase { working_set_bytes, passes: passes.max(1) }
    }

    /// Cache lines in the chase (a power of two, so the permutation has
    /// full period).
    fn lines(&self) -> u64 {
        let lines = (self.working_set_bytes / 64).max(16);
        if lines.is_power_of_two() {
            lines
        } else {
            lines.next_power_of_two() / 2
        }
    }
}

impl Workload for PointerChase {
    fn name(&self) -> &str {
        "chase"
    }

    fn flops_per_iteration(&self) -> f64 {
        0.0
    }

    fn bytes_per_iteration(&self) -> f64 {
        64.0
    }

    fn working_set_bytes(&self) -> u64 {
        self.lines() * 64
    }

    fn run(&self, machine: &SimMachine, placement: &Placement) -> WorkloadRun {
        let thread = placement.compute[0];
        let topo = machine.topology();
        let home_socket = topo.hw_thread(placement.init[0]).map(|t| t.socket).unwrap_or(0);
        let hierarchy =
            HierarchyConfig::from_machine(machine, NumaPolicy::SingleNode { socket: home_socket });
        let mut sys = NodeCacheSystem::new(hierarchy);

        let lines = self.lines();
        let memory_latency = machine.memory_system().memory_latency_cycles;
        // Full-period LCG permutation over the power-of-two line count
        // (a ≡ 1 mod 4, c odd): visits every line once per pass, in an
        // order the strided prefetchers cannot follow.
        let (a, c) = (6364136223846793005u64, 1442695040888963407u64);
        let mut index = 0u64;
        let mut total_cycles = 0u64;
        for _pass in 0..self.passes {
            for _ in 0..lines {
                index = a.wrapping_mul(index).wrapping_add(c) & (lines - 1);
                let level = sys.access(thread, Access::load(index * 64));
                total_cycles += level.latency_cycles(memory_latency);
            }
        }

        let stats = sys.stats();
        let iterations = self.passes * lines;
        let runtime_s = total_cycles as f64 / machine.clock().frequency_hz;

        let mut profile = ExecutionProfile::new(topo.num_hw_threads());
        profile.cycles[thread] = total_cycles;
        profile.instructions[thread] = iterations * 4;
        profile.branches[thread] = iterations;
        profile.branch_misses[thread] = iterations / 512;

        WorkloadRun {
            iterations,
            runtime_s,
            bandwidth_mbs: iterations as f64 * 64.0 / runtime_s / 1e6,
            mflops: 0.0,
            stats,
            profile,
        }
    }
}

/// The registered kernel names, in listing order.
pub fn kernel_names() -> &'static [&'static str] {
    &["copy", "scale", "add", "triad", "daxpy", "chase", "coherence"]
}

/// One-line description of a registered kernel.
pub fn kernel_description(name: &str) -> Option<&'static str> {
    match name {
        "copy" => Some("STREAM copy: a[i] = b[i]"),
        "scale" => Some("STREAM scale: a[i] = s*b[i]"),
        "add" => Some("STREAM add: a[i] = b[i] + c[i]"),
        "triad" => Some("STREAM triad: a[i] = b[i] + s*c[i]"),
        "daxpy" => Some("BLAS-1 daxpy: y[i] = y[i] + a*x[i]"),
        "chase" => Some("serial pointer chase (load-to-use latency)"),
        "coherence" => Some("per-socket producer/consumer ring + private store streams"),
        _ => None,
    }
}

/// Instantiate a registered kernel by name — the only way the harness and
/// the `likwid-bench` tool construct kernels.
pub fn kernel_by_name(
    name: &str,
    working_set_bytes: u64,
    passes: u64,
) -> Option<Box<dyn Workload>> {
    kernel_by_name_with_workers(name, working_set_bytes, passes, 1)
}

/// Instantiate a registered kernel with an explicit simulation worker count
/// (`likwid-bench -W`). Workers parallelise the sharded replay of kernels
/// that use it (`coherence`); every other kernel ignores the value, and no
/// kernel's results depend on it.
pub fn kernel_by_name_with_workers(
    name: &str,
    working_set_bytes: u64,
    passes: u64,
    workers: usize,
) -> Option<Box<dyn Workload>> {
    Some(match name {
        "copy" => Box::new(StreamingKernel::copy(working_set_bytes, passes)),
        "scale" => Box::new(StreamingKernel::scale(working_set_bytes, passes)),
        "add" => Box::new(StreamingKernel::add(working_set_bytes, passes)),
        "triad" => Box::new(StreamingKernel::triad(working_set_bytes, passes)),
        "daxpy" => Box::new(StreamingKernel::daxpy(working_set_bytes, passes)),
        "chase" => Box::new(PointerChase::new(working_set_bytes, passes)),
        "coherence" => {
            Box::new(StoreCoherence::new(working_set_bytes, passes).with_workers(workers))
        }
        _ => return None,
    })
}

/// Parse a working-set size expression: a plain byte count or a number with
/// a binary `kB`/`MB`/`GB` suffix (case-insensitive), e.g. `64MB`.
pub fn parse_size(text: &str) -> Option<u64> {
    let text = text.trim();
    let lower = text.to_ascii_lowercase();
    let (digits, factor) = if let Some(d) = lower.strip_suffix("gb") {
        (d, 1u64 << 30)
    } else if let Some(d) = lower.strip_suffix("mb") {
        (d, 1u64 << 20)
    } else if let Some(d) = lower.strip_suffix("kb") {
        (d, 1u64 << 10)
    } else if let Some(d) = lower.strip_suffix('b') {
        (d, 1)
    } else {
        (lower.as_str(), 1)
    };
    let value: u64 = digits.trim().parse().ok()?;
    value.checked_mul(factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use likwid_x86_machine::MachinePreset;

    #[test]
    fn size_expressions_parse() {
        assert_eq!(parse_size("64MB"), Some(64 << 20));
        assert_eq!(parse_size("16kb"), Some(16 << 10));
        assert_eq!(parse_size("1GB"), Some(1 << 30));
        assert_eq!(parse_size("4096"), Some(4096));
        assert_eq!(parse_size("512B"), Some(512));
        assert_eq!(parse_size(" 2 MB "), Some(2 << 20));
        assert_eq!(parse_size("lots"), None);
        assert_eq!(parse_size(""), None);
    }

    #[test]
    fn every_registered_kernel_instantiates_and_declares_metadata() {
        for &name in kernel_names() {
            let k = kernel_by_name(name, 4 << 20, 1).expect(name);
            assert_eq!(k.name(), name);
            assert!(k.bytes_per_iteration() > 0.0, "{name}");
            assert!(k.working_set_bytes() > 0, "{name}");
            assert!(kernel_description(name).is_some(), "{name}");
        }
        assert!(kernel_by_name("frobnicate", 1 << 20, 1).is_none());
    }

    #[test]
    fn declared_traffic_reflects_the_write_allocate_model() {
        let ws = 8 << 20;
        // copy moves 16 useful bytes but 24 actual (write allocate).
        assert_eq!(StreamingKernel::copy(ws, 1).bytes_per_iteration(), 24.0);
        // daxpy reads its store target: no write allocate, 24 bytes total.
        assert_eq!(StreamingKernel::daxpy(ws, 1).bytes_per_iteration(), 24.0);
        // add streams three arrays plus the write allocate.
        assert_eq!(StreamingKernel::add(ws, 1).bytes_per_iteration(), 32.0);
    }

    #[test]
    fn copy_bandwidth_is_memory_bound_on_a_large_working_set() {
        let machine = SimMachine::new(MachinePreset::NehalemEp2S);
        let kernel = StreamingKernel::copy(64 << 20, 1);
        let run = kernel.run(&machine, &Placement::pinned(vec![0, 1, 2, 3]));
        // Four cores on one socket: bounded by the socket's controller.
        let socket_bw = machine.memory_system().socket_bandwidth_bps;
        let useful_fraction = 16.0 / 24.0;
        assert!(run.bandwidth_mbs * 1e6 < socket_bw, "useful rate below raw socket bandwidth");
        assert!(
            run.bandwidth_mbs * 1e6 > 0.5 * socket_bw * useful_fraction,
            "a four-core streaming copy should get close to the controller limit, got {} MB/s",
            run.bandwidth_mbs
        );
        assert!(run.stats.total_memory_bytes() > 0);
    }

    #[test]
    fn chase_latency_grows_with_the_working_set() {
        let machine = SimMachine::new(MachinePreset::NehalemEp2S);
        let l1 = PointerChase::new(16 << 10, 4); // fits in L1 (32 KB)
        let mem = PointerChase::new(64 << 20, 1); // far beyond the 8 MB L3
        let p = Placement::pinned(vec![0]);
        let lat_l1 = l1.run(&machine, &p).time_per_iteration_ns();
        let lat_mem = mem.run(&machine, &p).time_per_iteration_ns();
        assert!(
            lat_mem > 5.0 * lat_l1,
            "memory chase ({lat_mem} ns) must dwarf the in-cache chase ({lat_l1} ns)"
        );
    }
}

//! Evaluation workloads of the paper, behind one pluggable harness.
//!
//! Section IV of the paper demonstrates the tool suite on two codes:
//!
//! * the **OpenMP STREAM triad** (Figures 4–10): bandwidth as a function of
//!   thread count, compiler (icc vs. gcc), machine (Westmere EP vs. AMD
//!   Istanbul) and — most importantly — of whether and how the threads are
//!   pinned;
//! * a **temporally blocked 3D Jacobi smoother** (Figure 11 and Table II):
//!   a cache-topology-aware wavefront code whose performance collapses with
//!   the wrong thread placement, measured with `likwid-perfCtr` uncore
//!   events.
//!
//! # The `Workload`/`Experiment` contract
//!
//! Every workload — the paper's two case studies and the microbenchmark
//! kernels of the `likwid-bench` tool alike — implements the
//! [`workload::Workload`] trait:
//!
//! * **metadata** — `name()`, `flops_per_iteration()`,
//!   `bytes_per_iteration()` (modelled memory traffic *including* the
//!   write-allocate stream of regular stores) and `working_set_bytes()`;
//! * **execution** — `run(machine, placement)` drives the kernel's access
//!   streams (through the cache simulator, or an equivalent analytic
//!   model) for a given thread [`workload::Placement`] and returns a
//!   [`workload::WorkloadRun`]: iterations, modelled runtime, bandwidth,
//!   MFlops/s, plus the raw [`likwid_cache_sim::NodeStats`] and
//!   [`exec::ExecutionProfile`] that feed the counting engine.
//!
//! The [`experiment::Experiment`] builder composes everything *around* a
//! workload: machine preset × [`openmp::PlacementPolicy`] × sample count ×
//! optional perf-counter group. Running an experiment resolves the
//! placement per sample (per-sample RNG streams, so sample `i` is stable
//! whatever the total count), executes the workload, and — when counters
//! are configured — measures the run through the genuine tool path:
//! `likwid-perfctr` session programming, a marker-API region around the
//! run, event crediting via the counting engine, and a typed
//! [`likwid::PerfCtrResults`] read back. The figure generators and the
//! `likwid-bench` microbenchmark binary are thin layers over this harness;
//! new scenarios plug in by implementing the trait, not by wiring bespoke
//! run paths.
//!
//! Modules: an OpenMP-runtime model with compiler personalities
//! ([`openmp`]), a bandwidth/roofline performance model ([`perfmodel`]),
//! the STREAM triad sampling experiment ([`stream`]), the three Jacobi
//! variants driven through the cache simulator ([`jacobi`]), the
//! registered microbenchmark kernels ([`kernels`]), the harness itself
//! ([`workload`], [`experiment`]), and the glue that turns simulated runs
//! into hardware-event samples for `likwid-perfctr` ([`exec`]).

pub mod coherence;
pub mod exec;
pub mod experiment;
pub mod jacobi;
pub mod kernels;
pub mod openmp;
pub mod perfmodel;
pub mod stats;
pub mod stream;
pub mod workload;

pub use coherence::StoreCoherence;
pub use exec::{slice_samples, ExecutionProfile, ProgressTick, ProgressTrace};
pub use experiment::{sample_seed, Experiment, ExperimentResult};
pub use jacobi::{JacobiConfig, JacobiResult, JacobiVariant, JacobiWorkload};
pub use kernels::{
    kernel_by_name, kernel_by_name_with_workers, kernel_names, parse_size, PointerChase,
    StreamingKernel,
};
pub use openmp::{CompilerPersonality, KmpAffinity, OpenMpRuntime, PlacementPolicy};
pub use perfmodel::{BandwidthModel, StreamKernelModel};
pub use stats::BoxStats;
pub use stream::{StreamExperiment, StreamSample, StreamTriad};
pub use workload::{Placement, Workload, WorkloadRun};

//! Evaluation workloads of the paper.
//!
//! Section IV of the paper demonstrates the tool suite on two codes:
//!
//! * the **OpenMP STREAM triad** (Figures 4–10): bandwidth as a function of
//!   thread count, compiler (icc vs. gcc), machine (Westmere EP vs. AMD
//!   Istanbul) and — most importantly — of whether and how the threads are
//!   pinned;
//! * a **temporally blocked 3D Jacobi smoother** (Figure 11 and Table II):
//!   a cache-topology-aware wavefront code whose performance collapses with
//!   the wrong thread placement, measured with `likwid-perfCtr` uncore
//!   events.
//!
//! This crate implements both workloads against the simulated machine:
//! an OpenMP-runtime model with compiler personalities ([`openmp`]), a
//! bandwidth/roofline performance model ([`perfmodel`]), the STREAM triad
//! sampling experiment ([`stream`]), the three Jacobi variants driven
//! through the cache simulator ([`jacobi`]), and the glue that turns
//! simulated runs into hardware-event samples for `likwid-perfctr`
//! ([`exec`]).

pub mod exec;
pub mod jacobi;
pub mod openmp;
pub mod perfmodel;
pub mod stats;
pub mod stream;

pub use jacobi::{JacobiConfig, JacobiResult, JacobiVariant};
pub use openmp::{CompilerPersonality, KmpAffinity, OpenMpRuntime, PlacementPolicy};
pub use perfmodel::{BandwidthModel, StreamKernelModel};
pub use stats::BoxStats;
pub use stream::{StreamExperiment, StreamSample};

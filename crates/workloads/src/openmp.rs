//! A model of the OpenMP runtimes and compilers used in the evaluation.
//!
//! The paper's STREAM experiments compare Intel icc 11.1 and gcc 4.3.3.
//! Two properties of those toolchains matter for the reproduced figures:
//!
//! 1. **Thread creation behaviour** — the Intel runtime creates
//!    `OMP_NUM_THREADS` threads plus a shepherd, gcc creates
//!    `OMP_NUM_THREADS - 1` workers; this is what the skip masks of
//!    `likwid-pin` deal with and is modelled in `likwid-affinity`.
//! 2. **Code generation** — the icc triad is vectorised and uses
//!    non-temporal stores (three memory streams, a single core can draw
//!    close to 10 GB/s), while the gcc triad uses ordinary stores (four
//!    streams including the write-allocate, lower per-core throughput, and
//!    a visible benefit from SMT). These parameters feed the bandwidth
//!    model and give the two compilers their distinct figure shapes.

use likwid_affinity::{PlacementStrategy, SimScheduler, SkipMask, ThreadingModel};
use likwid_x86_machine::{MachinePreset, TopologySpec};
use rand::Rng;

use likwid_affinity::pinlist::{compact_placement, scatter_placement};

use crate::workload::Placement;

/// Compiler/runtime personality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompilerPersonality {
    /// Intel icc 11.1 with `-O3 -xSSE4.2`: vectorised, non-temporal stores.
    IntelIcc,
    /// gcc 4.3.3 with `-O3 -fopenmp`: scalar-ish code, regular stores.
    Gcc,
}

impl CompilerPersonality {
    /// The threading model (shepherd behaviour) of the runtime.
    pub fn threading_model(self) -> ThreadingModel {
        match self {
            CompilerPersonality::IntelIcc => ThreadingModel::IntelOpenMp,
            CompilerPersonality::Gcc => ThreadingModel::GccOpenMp,
        }
    }

    /// The default skip mask `likwid-pin` applies for this personality.
    pub fn skip_mask(self) -> SkipMask {
        self.threading_model().default_skip_mask()
    }

    /// Whether the compiled triad uses non-temporal (streaming) stores,
    /// avoiding the write-allocate stream.
    pub fn uses_nontemporal_stores(self) -> bool {
        matches!(self, CompilerPersonality::IntelIcc)
    }

    /// Memory traffic per triad iteration in bytes (a[i] = b[i] + s*c[i]
    /// moves two loads and one store of 8 bytes each, plus a write-allocate
    /// line read unless the store is non-temporal).
    pub fn triad_bytes_per_iteration(self) -> f64 {
        if self.uses_nontemporal_stores() {
            24.0
        } else {
            32.0
        }
    }

    /// The fraction of a physical core's maximum memory throughput a single
    /// thread of this code can request. The icc code is limited only by the
    /// core's load/store machinery; the scalar gcc loop cannot keep as many
    /// memory operations in flight.
    pub fn per_core_traffic_fraction(self) -> f64 {
        match self {
            CompilerPersonality::IntelIcc => 1.0,
            CompilerPersonality::Gcc => 0.55,
        }
    }

    /// Additional core throughput unlocked by running a second SMT thread on
    /// the same physical core. The paper observes that gcc "can probably
    /// benefit from SMT threads to a larger extent than the Intel icc code".
    pub fn smt_benefit(self) -> f64 {
        match self {
            CompilerPersonality::IntelIcc => 0.05,
            CompilerPersonality::Gcc => 0.45,
        }
    }

    /// Display name used in figure captions.
    pub fn name(self) -> &'static str {
        match self {
            CompilerPersonality::IntelIcc => "Intel icc",
            CompilerPersonality::Gcc => "gcc",
        }
    }
}

/// The affinity mechanism built into the Intel OpenMP runtime
/// (`KMP_AFFINITY`), reproduced for Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KmpAffinity {
    /// `KMP_AFFINITY=disabled` (the setting used for all likwid-pin runs).
    Disabled,
    /// `KMP_AFFINITY=scatter`: spread threads round-robin over sockets.
    Scatter,
    /// `KMP_AFFINITY=compact`: fill one socket before the next.
    Compact,
}

/// How the application threads get placed for a run.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementPolicy {
    /// No pinning at all: the simulated OS scheduler decides (Figures 4, 7, 9).
    Unpinned,
    /// Pinned from the outside with `likwid-pin` to an explicit OS-processor
    /// list (Figures 5, 8, 10).
    LikwidPin(Vec<usize>),
    /// The Intel runtime's own affinity interface (Figure 6).
    Kmp(KmpAffinity),
}

/// The OpenMP runtime model: resolves a placement policy into the hardware
/// threads each application thread runs on.
#[derive(Debug, Clone)]
pub struct OpenMpRuntime {
    /// Compiler personality of the binary.
    pub personality: CompilerPersonality,
    /// Machine the run happens on.
    pub machine: MachinePreset,
}

impl OpenMpRuntime {
    /// New runtime model.
    pub fn new(personality: CompilerPersonality, machine: MachinePreset) -> Self {
        OpenMpRuntime { personality, machine }
    }

    /// Resolve where `num_threads` application threads run under `policy`.
    ///
    /// For the unpinned policy each call draws a fresh placement (one sample
    /// of the experiment); pinned policies are deterministic.
    pub fn place<R: Rng + ?Sized>(
        &self,
        topo: &TopologySpec,
        num_threads: usize,
        policy: &PlacementPolicy,
        rng: &mut R,
    ) -> Vec<usize> {
        match policy {
            PlacementPolicy::Unpinned => {
                SimScheduler::new(PlacementStrategy::CfsLike).place(topo, num_threads, rng)
            }
            PlacementPolicy::LikwidPin(list) => {
                (0..num_threads).map(|i| list[i % list.len()]).collect()
            }
            PlacementPolicy::Kmp(KmpAffinity::Scatter) => scatter_placement(topo, num_threads),
            PlacementPolicy::Kmp(KmpAffinity::Compact) => compact_placement(topo, num_threads),
            PlacementPolicy::Kmp(KmpAffinity::Disabled) => {
                SimScheduler::new(PlacementStrategy::CfsLike).place(topo, num_threads, rng)
            }
        }
    }

    /// The pin list the paper uses for the pinned STREAM runs: threads
    /// distributed round robin across sockets, physical cores first, SMT
    /// threads last (equivalent to `-c S0:…@S1:…` with likwid-pin).
    pub fn paper_scatter_pin_list(&self, topo: &TopologySpec, num_threads: usize) -> Vec<usize> {
        scatter_placement(topo, num_threads)
    }

    /// Resolve one sample's full [`Placement`]: where the threads compute,
    /// and where they ran while first-touching their data. Pinned runs
    /// first-touch exactly where they later run; unpinned runs draw a
    /// second placement — the scheduler may have migrated threads between
    /// the initialisation loop and the measured kernel.
    pub fn resolve_placement<R: Rng + ?Sized>(
        &self,
        topo: &TopologySpec,
        num_threads: usize,
        policy: &PlacementPolicy,
        rng: &mut R,
    ) -> Placement {
        let compute = self.place(topo, num_threads, policy, rng);
        let init = match policy {
            PlacementPolicy::Unpinned | PlacementPolicy::Kmp(KmpAffinity::Disabled) => {
                self.place(topo, num_threads, policy, rng)
            }
            _ => compute.clone(),
        };
        Placement { compute, init }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn personalities_differ_in_store_type_and_throughput() {
        assert!(CompilerPersonality::IntelIcc.uses_nontemporal_stores());
        assert!(!CompilerPersonality::Gcc.uses_nontemporal_stores());
        assert_eq!(CompilerPersonality::IntelIcc.triad_bytes_per_iteration(), 24.0);
        assert_eq!(CompilerPersonality::Gcc.triad_bytes_per_iteration(), 32.0);
        assert!(
            CompilerPersonality::Gcc.per_core_traffic_fraction()
                < CompilerPersonality::IntelIcc.per_core_traffic_fraction()
        );
        assert!(
            CompilerPersonality::Gcc.smt_benefit() > CompilerPersonality::IntelIcc.smt_benefit()
        );
    }

    #[test]
    fn personalities_map_to_the_right_threading_model() {
        assert_eq!(CompilerPersonality::IntelIcc.threading_model(), ThreadingModel::IntelOpenMp);
        assert_eq!(CompilerPersonality::Gcc.threading_model(), ThreadingModel::GccOpenMp);
        assert_eq!(CompilerPersonality::IntelIcc.skip_mask(), SkipMask(0x1));
        assert_eq!(CompilerPersonality::Gcc.skip_mask(), SkipMask(0x0));
    }

    #[test]
    fn likwid_pin_policy_is_deterministic_and_scatter_spreads_sockets() {
        let preset = MachinePreset::WestmereEp2S;
        let topo = preset.topology();
        let runtime = OpenMpRuntime::new(CompilerPersonality::IntelIcc, preset);
        let mut rng = StdRng::seed_from_u64(1);

        let list = runtime.paper_scatter_pin_list(&topo, 4);
        let p1 = runtime.place(&topo, 4, &PlacementPolicy::LikwidPin(list.clone()), &mut rng);
        let p2 = runtime.place(&topo, 4, &PlacementPolicy::LikwidPin(list), &mut rng);
        assert_eq!(p1, p2, "pinned placements do not vary between samples");

        let scatter =
            runtime.place(&topo, 4, &PlacementPolicy::Kmp(KmpAffinity::Scatter), &mut rng);
        let sockets: std::collections::HashSet<u32> =
            scatter.iter().map(|&c| topo.hw_thread(c).unwrap().socket).collect();
        assert_eq!(sockets.len(), 2, "KMP scatter uses both sockets");

        let compact =
            runtime.place(&topo, 4, &PlacementPolicy::Kmp(KmpAffinity::Compact), &mut rng);
        let sockets: std::collections::HashSet<u32> =
            compact.iter().map(|&c| topo.hw_thread(c).unwrap().socket).collect();
        assert_eq!(sockets.len(), 1, "KMP compact fills one socket first");
    }

    #[test]
    fn unpinned_policy_varies_between_samples() {
        let preset = MachinePreset::WestmereEp2S;
        let topo = preset.topology();
        let runtime = OpenMpRuntime::new(CompilerPersonality::Gcc, preset);
        let mut rng = StdRng::seed_from_u64(7);
        let draws: Vec<Vec<usize>> = (0..20)
            .map(|_| runtime.place(&topo, 6, &PlacementPolicy::Unpinned, &mut rng))
            .collect();
        let distinct: std::collections::HashSet<Vec<usize>> = draws.into_iter().collect();
        assert!(distinct.len() > 1, "unpinned placements must vary");
    }
}

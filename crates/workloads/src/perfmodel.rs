//! Bandwidth-centric performance model.
//!
//! The STREAM figures of the paper are entirely about how a bandwidth-bound
//! loop's performance depends on where its threads run. The model here
//! captures the four mechanisms that produce those shapes:
//!
//! 1. **Per-core limits** — a single core cannot saturate a socket's memory
//!    controller; the achievable per-core traffic depends on the code
//!    generation (icc vs. gcc) and improves slightly (icc) or substantially
//!    (gcc) when the second SMT thread of the core is used.
//! 2. **Core sharing** — application threads placed on the same physical
//!    core (SMT siblings or oversubscription) share that core's capability.
//! 3. **Memory-controller saturation** — the summed demand on one socket's
//!    controller is capped by its sustainable bandwidth; this is the
//!    plateau of every STREAM figure.
//! 4. **ccNUMA placement** — pages live where they were first touched; a
//!    thread whose pages sit on the other socket pulls them across the
//!    inter-socket link, which has its own (lower) cap. This is why
//!    unpinned runs that migrate away from their data are slow.
//!
//! The same primitives feed the Jacobi model in [`crate::jacobi`].

use std::collections::HashMap;

use likwid_x86_machine::presets::MemorySystemSpec;
use likwid_x86_machine::TopologySpec;

use crate::openmp::CompilerPersonality;

/// Kernel parameters of the modelled streaming loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamKernelModel {
    /// Actual memory traffic per loop iteration in bytes (including write
    /// allocate if the stores are not non-temporal).
    pub traffic_bytes_per_iteration: f64,
    /// Bytes the benchmark counts as useful per iteration (STREAM counts
    /// 24 bytes for the triad regardless of the write-allocate stream).
    pub useful_bytes_per_iteration: f64,
    /// Maximum traffic one physical core can generate, in bytes/s.
    pub per_core_traffic_bps: f64,
    /// Fractional throughput gained by the core when its second SMT thread
    /// also runs the loop.
    pub smt_benefit: f64,
}

impl StreamKernelModel {
    /// The triad kernel as compiled by `personality` on `machine`.
    pub fn triad(personality: CompilerPersonality, memory: &MemorySystemSpec) -> Self {
        StreamKernelModel {
            traffic_bytes_per_iteration: personality.triad_bytes_per_iteration(),
            useful_bytes_per_iteration: 24.0,
            per_core_traffic_bps: memory.per_core_bandwidth_bps
                * personality.per_core_traffic_fraction(),
            smt_benefit: personality.smt_benefit(),
        }
    }
}

/// The bandwidth model for one node.
pub struct BandwidthModel<'a> {
    topo: &'a TopologySpec,
    memory: MemorySystemSpec,
}

impl<'a> BandwidthModel<'a> {
    /// Model for a topology and its memory system.
    pub fn new(topo: &'a TopologySpec, memory: MemorySystemSpec) -> Self {
        BandwidthModel { topo, memory }
    }

    /// The memory-system parameters.
    pub fn memory(&self) -> &MemorySystemSpec {
        &self.memory
    }

    /// The NUMA home socket of each application thread's array partition.
    ///
    /// STREAM initialises its arrays in a parallel loop, so thread *t*'s
    /// partition is first-touched — and therefore physically allocated — on
    /// whatever socket thread *t* happened to run on during initialisation.
    /// A serial initialisation (empty `init_placement`) puts everything on
    /// socket 0.
    pub fn home_sockets(&self, num_threads: usize, init_placement: &[usize]) -> Vec<usize> {
        (0..num_threads)
            .map(|t| {
                if init_placement.is_empty() {
                    0
                } else {
                    let hw = init_placement[t % init_placement.len()];
                    self.topo.hw_thread(hw).map(|h| h.socket as usize).unwrap_or(0)
                }
            })
            .collect()
    }

    /// The traffic each application thread can demand given the placement:
    /// threads sharing a physical core share its capability (with the SMT
    /// bonus when two distinct hardware threads of the core are used).
    pub fn per_thread_demand(&self, placement: &[usize], kernel: &StreamKernelModel) -> Vec<f64> {
        // Group application threads by physical core.
        let mut core_app_threads: HashMap<(u32, u32), Vec<usize>> = HashMap::new();
        let mut core_hw_threads: HashMap<(u32, u32), Vec<usize>> = HashMap::new();
        for (app, &hw) in placement.iter().enumerate() {
            let Ok(t) = self.topo.hw_thread(hw) else { continue };
            let key = (t.socket, t.core_index);
            core_app_threads.entry(key).or_default().push(app);
            let hw_list = core_hw_threads.entry(key).or_default();
            if !hw_list.contains(&hw) {
                hw_list.push(hw);
            }
        }

        let mut demand = vec![0.0; placement.len()];
        for (key, apps) in &core_app_threads {
            let distinct_hw = core_hw_threads[key].len();
            let capability = kernel.per_core_traffic_bps
                * (1.0 + kernel.smt_benefit * (distinct_hw.saturating_sub(1)) as f64);
            let per_thread = capability / apps.len() as f64;
            for &app in apps {
                demand[app] = per_thread;
            }
        }
        demand
    }

    /// Penalty applied to a single thread's achievable traffic when its data
    /// lives on the remote socket: besides the link bandwidth cap, the
    /// additional latency of crossing QPI/HyperTransport limits how much a
    /// single thread can keep in flight.
    const REMOTE_THREAD_FACTOR: f64 = 0.6;

    /// Total achieved memory traffic (bytes/s) of a placement, given the
    /// NUMA home socket of each thread's partition. Demand is capped per
    /// memory controller and per inter-socket link.
    pub fn achieved_traffic_bps(
        &self,
        placement: &[usize],
        home_sockets: &[usize],
        kernel: &StreamKernelModel,
    ) -> f64 {
        let sockets = self.topo.sockets as usize;
        let mut demand = self.per_thread_demand(placement, kernel);
        let thread_socket: Vec<usize> = placement
            .iter()
            .map(|&hw| self.topo.hw_thread(hw).map(|t| t.socket as usize).unwrap_or(0))
            .collect();

        // Remote threads cannot keep as many requests in flight.
        for (t, d) in demand.iter_mut().enumerate() {
            let home = home_sockets.get(t).copied().unwrap_or(0);
            if home != thread_socket[t] {
                *d *= Self::REMOTE_THREAD_FACTOR;
            }
        }

        // Aggregate demand per memory controller and on the interconnect.
        let mut controller_load = vec![0.0; sockets];
        let mut remote_load = 0.0;
        for (t, &d) in demand.iter().enumerate() {
            let home = home_sockets.get(t).copied().unwrap_or(0).min(sockets - 1);
            controller_load[home] += d;
            if home != thread_socket[t] {
                remote_load += d;
            }
        }

        let controller_scale: Vec<f64> = controller_load
            .iter()
            .map(|&load| {
                if load <= self.memory.socket_bandwidth_bps || load == 0.0 {
                    1.0
                } else {
                    self.memory.socket_bandwidth_bps / load
                }
            })
            .collect();
        let remote_scale = if remote_load <= self.memory.remote_bandwidth_bps || remote_load == 0.0
        {
            1.0
        } else {
            self.memory.remote_bandwidth_bps / remote_load
        };

        // Achieved traffic per thread: each thread's flow is scaled by its
        // home controller (and additionally by the link if it is remote).
        let mut total = 0.0;
        for (t, &d) in demand.iter().enumerate() {
            let home = home_sockets.get(t).copied().unwrap_or(0).min(sockets - 1);
            let mut scale = controller_scale[home];
            if home != thread_socket[t] {
                scale = scale.min(remote_scale);
            }
            total += d * scale;
        }
        total
    }

    /// The bandwidth a STREAM-style benchmark *reports* for a run with the
    /// given run-time placement and initialisation placement, in MB/s
    /// (decimal, as in the paper's figures).
    pub fn reported_stream_bandwidth(
        &self,
        placement: &[usize],
        init_placement: &[usize],
        kernel: &StreamKernelModel,
    ) -> f64 {
        let homes = self.home_sockets(placement.len(), init_placement);
        let traffic = self.achieved_traffic_bps(placement, &homes, kernel);
        let useful =
            traffic * kernel.useful_bytes_per_iteration / kernel.traffic_bytes_per_iteration;
        useful / 1e6
    }

    /// Effective bandwidth (bytes/s) available for a byte mix of local and
    /// remote traffic generated by `num_streaming_threads` threads on one
    /// socket — the roofline denominator used by the Jacobi model.
    pub fn effective_bandwidth_bps(
        &self,
        num_streaming_threads: usize,
        local_fraction: f64,
        per_core_traffic_bps: f64,
    ) -> f64 {
        let concurrency_limit = per_core_traffic_bps * num_streaming_threads.max(1) as f64;
        let local_bw = concurrency_limit.min(self.memory.socket_bandwidth_bps);
        let remote_bw = concurrency_limit.min(self.memory.remote_bandwidth_bps);
        // Harmonic combination of the local and remote portions.
        let remote_fraction = 1.0 - local_fraction;
        if remote_fraction <= 0.0 {
            local_bw
        } else if local_fraction <= 0.0 {
            remote_bw
        } else {
            1.0 / (local_fraction / local_bw + remote_fraction / remote_bw)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use likwid_x86_machine::MachinePreset;

    fn westmere_model(topo: &TopologySpec) -> BandwidthModel<'_> {
        BandwidthModel::new(topo, MachinePreset::WestmereEp2S.memory_system())
    }

    fn icc_kernel() -> StreamKernelModel {
        StreamKernelModel::triad(
            CompilerPersonality::IntelIcc,
            &MachinePreset::WestmereEp2S.memory_system(),
        )
    }

    fn gcc_kernel() -> StreamKernelModel {
        StreamKernelModel::triad(
            CompilerPersonality::Gcc,
            &MachinePreset::WestmereEp2S.memory_system(),
        )
    }

    #[test]
    fn single_thread_is_core_limited_not_socket_limited() {
        let topo = MachinePreset::WestmereEp2S.topology();
        let model = westmere_model(&topo);
        let bw = model.reported_stream_bandwidth(&[0], &[0], &icc_kernel());
        // One icc thread: ~9.5 GB/s, far below the ~20.5 GB/s socket limit.
        assert!(bw > 8_000.0 && bw < 11_000.0, "got {bw}");
    }

    #[test]
    fn full_machine_saturates_both_sockets() {
        let topo = MachinePreset::WestmereEp2S.topology();
        let model = westmere_model(&topo);
        // 12 threads pinned scatter (physical cores, 6 per socket), pages local.
        let placement: Vec<usize> = (0..12).collect();
        let bw = model.reported_stream_bandwidth(&placement, &placement, &icc_kernel());
        assert!(bw > 38_000.0 && bw < 43_000.0, "icc plateau ≈ 41 GB/s, got {bw}");

        let bw_gcc = model.reported_stream_bandwidth(&placement, &placement, &gcc_kernel());
        assert!(
            bw_gcc > 28_000.0 && bw_gcc < 33_000.0,
            "gcc plateau ≈ 31 GB/s (write allocate costs 25%), got {bw_gcc}"
        );
    }

    #[test]
    fn one_socket_placement_halves_the_plateau() {
        let topo = MachinePreset::WestmereEp2S.topology();
        let model = westmere_model(&topo);
        // 6 threads all on socket 0's physical cores.
        let placement: Vec<usize> = vec![0, 1, 2, 3, 4, 5];
        let both: Vec<usize> = vec![0, 1, 2, 6, 7, 8];
        let one_socket = model.reported_stream_bandwidth(&placement, &placement, &icc_kernel());
        let two_sockets = model.reported_stream_bandwidth(&both, &both, &icc_kernel());
        assert!(
            two_sockets > 1.8 * one_socket,
            "spreading over both sockets roughly doubles bandwidth: {one_socket} vs {two_sockets}"
        );
    }

    #[test]
    fn sharing_a_physical_core_hurts_icc_but_helps_less_than_a_second_core() {
        let topo = MachinePreset::WestmereEp2S.topology();
        let model = westmere_model(&topo);
        let kernel = icc_kernel();
        // Two threads on the SMT siblings of core 0 vs. on two distinct cores.
        let smt_pair = model.reported_stream_bandwidth(&[0, 12], &[0, 12], &kernel);
        let two_cores = model.reported_stream_bandwidth(&[0, 1], &[0, 1], &kernel);
        assert!(two_cores > 1.5 * smt_pair, "{two_cores} vs {smt_pair}");
    }

    #[test]
    fn gcc_benefits_from_smt_more_than_icc() {
        let topo = MachinePreset::WestmereEp2S.topology();
        let model = westmere_model(&topo);
        let gcc_one = model.reported_stream_bandwidth(&[0], &[0], &gcc_kernel());
        let gcc_smt = model.reported_stream_bandwidth(&[0, 12], &[0, 12], &gcc_kernel());
        let icc_one = model.reported_stream_bandwidth(&[0], &[0], &icc_kernel());
        let icc_smt = model.reported_stream_bandwidth(&[0, 12], &[0, 12], &icc_kernel());
        let gcc_gain = gcc_smt / gcc_one;
        let icc_gain = icc_smt / icc_one;
        assert!(gcc_gain > 1.3, "gcc SMT gain {gcc_gain}");
        assert!(icc_gain < 1.15, "icc SMT gain {icc_gain}");
    }

    #[test]
    fn remote_pages_are_limited_by_the_interconnect() {
        let topo = MachinePreset::WestmereEp2S.topology();
        let model = westmere_model(&topo);
        let kernel = icc_kernel();
        // Six threads run on socket 1 but all pages were touched on socket 0.
        let run: Vec<usize> = vec![6, 7, 8, 9, 10, 11];
        let init: Vec<usize> = vec![0, 1, 2, 3, 4, 5];
        let remote = model.reported_stream_bandwidth(&run, &init, &kernel);
        let local = model.reported_stream_bandwidth(&run, &run, &kernel);
        assert!(
            remote < 0.6 * local,
            "remote-only access must be much slower: {remote} vs {local}"
        );
    }

    #[test]
    fn istanbul_plateau_matches_the_paper_scale() {
        let topo = MachinePreset::IstanbulH2S.topology();
        let memory = MachinePreset::IstanbulH2S.memory_system();
        let model = BandwidthModel::new(&topo, memory);
        let kernel = StreamKernelModel::triad(CompilerPersonality::IntelIcc, &memory);
        let placement: Vec<usize> = (0..12).collect();
        let bw = model.reported_stream_bandwidth(&placement, &placement, &kernel);
        assert!(bw > 22_000.0 && bw < 26_000.0, "Istanbul plateau ≈ 24-25 GB/s, got {bw}");
    }

    #[test]
    fn home_sockets_follow_the_first_touch_placement() {
        let topo = MachinePreset::WestmereEp2S.topology();
        let model = westmere_model(&topo);
        assert_eq!(
            model.home_sockets(3, &[]),
            vec![0, 0, 0],
            "serial init puts all data on socket 0"
        );
        assert_eq!(model.home_sockets(2, &[0, 6]), vec![0, 1]);
        assert_eq!(
            model.home_sockets(4, &[0, 6]),
            vec![0, 1, 0, 1],
            "wraps around the init placement"
        );
    }

    #[test]
    fn effective_bandwidth_blends_local_and_remote() {
        let topo = MachinePreset::NehalemEp2S.topology();
        let memory = MachinePreset::NehalemEp2S.memory_system();
        let model = BandwidthModel::new(&topo, memory);
        let local = model.effective_bandwidth_bps(4, 1.0, memory.per_core_bandwidth_bps);
        let mixed = model.effective_bandwidth_bps(4, 0.5, memory.per_core_bandwidth_bps);
        let remote = model.effective_bandwidth_bps(4, 0.0, memory.per_core_bandwidth_bps);
        assert!(local > mixed && mixed > remote);
        assert!(local <= memory.socket_bandwidth_bps);
        assert!(remote <= memory.remote_bandwidth_bps);
    }
}

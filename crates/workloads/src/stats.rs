//! Box-plot statistics for the sampling experiments.
//!
//! The STREAM figures in the paper are box plots over 100 samples per
//! thread count ("the box plot shows the 25-50 range with the median
//! line"); this module computes those summary statistics.

/// Five-number summary of a set of samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Smallest sample.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of samples.
    pub count: usize,
}

impl BoxStats {
    /// Compute the summary of a sample set. NaN samples carry no ordering
    /// information and are filtered out; `None` when nothing (finite or
    /// infinite) remains.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|s| !s.is_nan()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(f64::total_cmp);
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(BoxStats {
            min: sorted[0],
            q1: percentile(&sorted, 0.25),
            median: percentile(&sorted, 0.5),
            q3: percentile(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
            mean,
            count: sorted.len(),
        })
    }

    /// Interquartile range, the height of the box.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Relative spread (IQR over median), used to compare the variance of
    /// pinned vs. unpinned runs. `None` when the median is zero — a
    /// spread relative to nothing is undefined, not `0.0`.
    pub fn relative_spread(&self) -> Option<f64> {
        if self.median == 0.0 {
            None
        } else {
            Some(self.iqr() / self.median)
        }
    }
}

/// Linear-interpolation percentile of a pre-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_number_summary_of_a_known_set() {
        let samples = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = BoxStats::from_samples(&samples).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.count, 5);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn unordered_input_is_handled() {
        let s = BoxStats::from_samples(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn single_sample_and_empty_input() {
        let s = BoxStats::from_samples(&[7.0]).unwrap();
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.median, 7.0);
        assert!(BoxStats::from_samples(&[]).is_none());
    }

    #[test]
    fn relative_spread_compares_variability() {
        let tight = BoxStats::from_samples(&[99.0, 100.0, 100.0, 100.0, 101.0]).unwrap();
        let wide = BoxStats::from_samples(&[50.0, 75.0, 100.0, 125.0, 150.0]).unwrap();
        assert!(wide.relative_spread().unwrap() > tight.relative_spread().unwrap());
    }

    #[test]
    fn nan_samples_are_filtered_not_fatal() {
        let s = BoxStats::from_samples(&[2.0, f64::NAN, 1.0, 3.0, f64::NAN]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(BoxStats::from_samples(&[f64::NAN, f64::NAN]).is_none());
    }

    #[test]
    fn zero_median_spread_is_undefined_not_zero() {
        let s = BoxStats::from_samples(&[-1.0, 0.0, 1.0]).unwrap();
        assert_eq!(s.median, 0.0);
        assert_eq!(s.relative_spread(), None);
        let nonzero = BoxStats::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert!(nonzero.relative_spread().is_some());
    }
}

//! The OpenMP STREAM triad experiment (Figures 4–10).
//!
//! One *sample* is one run of the benchmark at a fixed thread count: the
//! runtime places the threads (randomly if unpinned, deterministically if
//! pinned), the arrays are first-touched under an initialisation placement,
//! and the triad bandwidth follows from the bandwidth model. One *series*
//! is 100 samples per thread count, summarised as a box plot — exactly the
//! procedure behind the paper's figures.

use likwid_cache_sim::NodeStats;
use likwid_x86_machine::{MachinePreset, SimMachine};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::exec::ExecutionProfile;
use crate::experiment::sample_seed;
use crate::openmp::{CompilerPersonality, OpenMpRuntime, PlacementPolicy};
use crate::perfmodel::{BandwidthModel, StreamKernelModel};
use crate::stats::BoxStats;
use crate::workload::{Placement, Workload, WorkloadRun};

/// The OpenMP STREAM triad of Figures 4–10 as a pluggable [`Workload`]:
/// evaluated through the analytic bandwidth model (the figures need tens of
/// thousands of samples, far too many to replay full address streams), with
/// an execution profile consistent with the model so measured runs credit
/// the right FLOPS/memory counters.
#[derive(Debug, Clone, Copy)]
pub struct StreamTriad {
    /// The compiler that built the triad loop.
    pub personality: CompilerPersonality,
    /// Elements per array (the paper-scale default is 20 million — three
    /// arrays of 160 MB, far beyond every cache).
    pub array_elements: u64,
}

impl StreamTriad {
    /// The triad as compiled by `personality`, at the paper's array size.
    pub fn new(personality: CompilerPersonality) -> Self {
        StreamTriad { personality, array_elements: 20_000_000 }
    }
}

impl Workload for StreamTriad {
    fn name(&self) -> &str {
        "stream-triad"
    }

    fn flops_per_iteration(&self) -> f64 {
        2.0 // a[i] = b[i] + s*c[i]: one multiply, one add
    }

    fn bytes_per_iteration(&self) -> f64 {
        self.personality.triad_bytes_per_iteration()
    }

    fn working_set_bytes(&self) -> u64 {
        3 * self.array_elements * 8
    }

    fn run(&self, machine: &SimMachine, placement: &Placement) -> WorkloadRun {
        let topo = machine.topology();
        let memory = machine.memory_system();
        let model = BandwidthModel::new(topo, memory);
        let kernel = StreamKernelModel::triad(self.personality, &memory);
        let bandwidth_mbs =
            model.reported_stream_bandwidth(&placement.compute, &placement.init, &kernel);
        let useful_bytes = self.array_elements as f64 * kernel.useful_bytes_per_iteration;
        let runtime_s = useful_bytes / (bandwidth_mbs * 1e6);

        let mut profile = ExecutionProfile::new(topo.num_hw_threads());
        let cycles = machine.clock().seconds_to_cycles(runtime_s);
        let threads = placement.compute.len().max(1) as u64;
        for &hw in &placement.compute {
            profile.credit_streaming_thread(
                hw,
                cycles,
                self.array_elements / threads,
                4,
                self.flops_per_iteration(),
            );
        }

        WorkloadRun {
            iterations: self.array_elements,
            runtime_s,
            bandwidth_mbs,
            mflops: self.array_elements as f64 * self.flops_per_iteration() / runtime_s / 1e6,
            stats: NodeStats::default(),
            profile,
        }
    }
}

/// The result of one benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSample {
    /// Reported triad bandwidth in MB/s.
    pub bandwidth_mbs: f64,
    /// Where the application threads ran.
    pub placement: Vec<usize>,
    /// Where the arrays were first touched.
    pub init_placement: Vec<usize>,
}

/// One point of a figure series: a thread count and its box statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Number of application threads.
    pub threads: usize,
    /// Box statistics over all samples at this thread count.
    pub stats: BoxStats,
}

/// The STREAM triad experiment on one machine with one compiler.
pub struct StreamExperiment {
    machine: SimMachine,
    runtime: OpenMpRuntime,
    /// Number of samples per thread count (100 in the paper).
    pub samples_per_point: usize,
}

impl StreamExperiment {
    /// Set up the experiment.
    pub fn new(preset: MachinePreset, personality: CompilerPersonality) -> Self {
        StreamExperiment {
            machine: SimMachine::new(preset),
            runtime: OpenMpRuntime::new(personality, preset),
            samples_per_point: 100,
        }
    }

    /// The machine the experiment runs on.
    pub fn machine(&self) -> &SimMachine {
        &self.machine
    }

    /// The compiler personality.
    pub fn personality(&self) -> CompilerPersonality {
        self.runtime.personality
    }

    /// The pinned placement used in the paper's pinned figures: round robin
    /// across sockets, physical cores before SMT threads.
    pub fn paper_pinned_policy(&self, num_threads: usize) -> PlacementPolicy {
        PlacementPolicy::LikwidPin(
            self.runtime.paper_scatter_pin_list(self.machine.topology(), num_threads),
        )
    }

    /// Run one sample at `num_threads` threads under `policy`.
    pub fn run_once(
        &self,
        num_threads: usize,
        policy: &PlacementPolicy,
        rng: &mut StdRng,
    ) -> StreamSample {
        let topo = self.machine.topology();
        let placement = self.runtime.resolve_placement(topo, num_threads, policy, rng);
        let run = StreamTriad::new(self.runtime.personality).run(&self.machine, &placement);
        StreamSample {
            bandwidth_mbs: run.bandwidth_mbs,
            placement: placement.compute,
            init_placement: placement.init,
        }
    }

    /// Run the full sampling experiment at one thread count. Each sample
    /// draws from its own RNG stream derived from the base seed (see
    /// [`sample_seed`]), so raising `samples_per_point` extends the sample
    /// set without perturbing the samples already drawn.
    pub fn run_samples(&self, num_threads: usize, policy: &PlacementPolicy, seed: u64) -> Vec<f64> {
        (0..self.samples_per_point)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(sample_seed(seed, i));
                self.run_once(num_threads, policy, &mut rng).bandwidth_mbs
            })
            .collect()
    }

    /// Produce a figure series: box statistics for every thread count.
    pub fn series(
        &self,
        thread_counts: impl IntoIterator<Item = usize>,
        policy_for: impl Fn(usize) -> PlacementPolicy,
        seed: u64,
    ) -> Vec<SeriesPoint> {
        thread_counts
            .into_iter()
            .map(|threads| {
                let samples =
                    self.run_samples(threads, &policy_for(threads), seed ^ threads as u64);
                SeriesPoint {
                    threads,
                    stats: BoxStats::from_samples(&samples).expect("samples_per_point > 0"),
                }
            })
            .collect()
    }

    /// The thread counts of the paper's Westmere figures (1..=24).
    pub fn paper_thread_counts(&self) -> Vec<usize> {
        (1..=self.machine.num_hw_threads()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::openmp::KmpAffinity;

    fn experiment(personality: CompilerPersonality) -> StreamExperiment {
        let mut e = StreamExperiment::new(MachinePreset::WestmereEp2S, personality);
        e.samples_per_point = 30; // keep unit tests fast
        e
    }

    #[test]
    fn pinned_runs_are_deterministic_and_fast() {
        let e = experiment(CompilerPersonality::IntelIcc);
        let samples = e.run_samples(12, &e.paper_pinned_policy(12), 42);
        let stats = BoxStats::from_samples(&samples).unwrap();
        assert!(stats.iqr() < 1.0, "pinned samples are identical, spread {}", stats.iqr());
        assert!(
            stats.median > 38_000.0,
            "pinned 12-thread Westmere ≈ 41 GB/s, got {}",
            stats.median
        );
    }

    #[test]
    fn figure4_vs_figure5_unpinned_variance_and_pinned_stability() {
        let e = experiment(CompilerPersonality::IntelIcc);
        for threads in [2usize, 6, 12] {
            let unpinned =
                BoxStats::from_samples(&e.run_samples(threads, &PlacementPolicy::Unpinned, 7))
                    .unwrap();
            let pinned =
                BoxStats::from_samples(&e.run_samples(threads, &e.paper_pinned_policy(threads), 7))
                    .unwrap();
            assert!(
                unpinned.relative_spread().unwrap() > pinned.relative_spread().unwrap(),
                "{threads} threads: unpinned spread {:?} must exceed pinned spread {:?}",
                unpinned.relative_spread(),
                pinned.relative_spread()
            );
            assert!(
                pinned.median >= unpinned.median * 0.99,
                "{threads} threads: pinning must not lose bandwidth ({} vs {})",
                pinned.median,
                unpinned.median
            );
        }
    }

    #[test]
    fn figure6_kmp_scatter_matches_likwid_pin() {
        let e = experiment(CompilerPersonality::IntelIcc);
        for threads in [4usize, 8, 12] {
            let pinned =
                BoxStats::from_samples(&e.run_samples(threads, &e.paper_pinned_policy(threads), 3))
                    .unwrap();
            let kmp = BoxStats::from_samples(&e.run_samples(
                threads,
                &PlacementPolicy::Kmp(KmpAffinity::Scatter),
                3,
            ))
            .unwrap();
            let diff = (pinned.median - kmp.median).abs() / pinned.median;
            assert!(diff < 0.02, "KMP scatter ≈ likwid-pin at {threads} threads ({diff})");
        }
    }

    #[test]
    fn gcc_plateau_is_lower_than_icc_plateau() {
        let icc = experiment(CompilerPersonality::IntelIcc);
        let gcc = experiment(CompilerPersonality::Gcc);
        let icc_peak =
            BoxStats::from_samples(&icc.run_samples(12, &icc.paper_pinned_policy(12), 1)).unwrap();
        let gcc_peak =
            BoxStats::from_samples(&gcc.run_samples(12, &gcc.paper_pinned_policy(12), 1)).unwrap();
        assert!(
            gcc_peak.median < 0.85 * icc_peak.median,
            "gcc ({}) must stay well below icc ({})",
            gcc_peak.median,
            icc_peak.median
        );
        assert!(gcc_peak.median > 25_000.0, "but still reach ≈ 30 GB/s");
    }

    #[test]
    fn bandwidth_saturates_with_increasing_thread_count() {
        let e = experiment(CompilerPersonality::IntelIcc);
        let series = e.series([1usize, 2, 4, 6, 12, 24], |t| e.paper_pinned_policy(t), 5);
        let medians: Vec<f64> = series.iter().map(|p| p.stats.median).collect();
        assert!(medians[0] < 12_000.0);
        // Monotone non-decreasing up to the plateau, then flat within 10%.
        for w in medians.windows(2) {
            assert!(w[1] > w[0] * 0.9, "no drastic drop along the pinned curve: {medians:?}");
        }
        let plateau = medians.last().unwrap();
        assert!((plateau - medians[4]).abs() / plateau < 0.1, "plateau is flat: {medians:?}");
    }

    #[test]
    fn istanbul_figures_9_and_10_shape() {
        let mut e =
            StreamExperiment::new(MachinePreset::IstanbulH2S, CompilerPersonality::IntelIcc);
        e.samples_per_point = 30;
        let unpinned =
            BoxStats::from_samples(&e.run_samples(6, &PlacementPolicy::Unpinned, 9)).unwrap();
        let pinned =
            BoxStats::from_samples(&e.run_samples(6, &e.paper_pinned_policy(6), 9)).unwrap();
        assert!(unpinned.relative_spread().unwrap() > pinned.relative_spread().unwrap());
        let full =
            BoxStats::from_samples(&e.run_samples(12, &e.paper_pinned_policy(12), 9)).unwrap();
        assert!(
            full.median > 22_000.0 && full.median < 26_000.0,
            "Istanbul plateau ≈ 24-25 GB/s, got {}",
            full.median
        );
    }

    #[test]
    fn adding_samples_never_perturbs_earlier_samples() {
        // Regression: run_samples used to thread one sequential RNG through
        // all samples, so growing the sample count (or consuming a different
        // number of random draws per sample) shifted every later sample.
        // Per-sample seed streams make the prefix stable.
        let mut e = experiment(CompilerPersonality::IntelIcc);
        e.samples_per_point = 5;
        let short = e.run_samples(6, &PlacementPolicy::Unpinned, 11);
        e.samples_per_point = 20;
        let long = e.run_samples(6, &PlacementPolicy::Unpinned, 11);
        assert_eq!(&long[..5], &short[..], "the first five samples are identical");
        let distinct: std::collections::HashSet<u64> = long.iter().map(|b| b.to_bits()).collect();
        assert!(distinct.len() > 1, "unpinned samples still vary");
    }

    #[test]
    fn stream_triad_workload_matches_the_experiment_front_end() {
        let e = experiment(CompilerPersonality::IntelIcc);
        let placement: Vec<usize> = (0..12).collect();
        let run = StreamTriad::new(CompilerPersonality::IntelIcc)
            .run(e.machine(), &Placement::pinned(placement.clone()));
        let mut rng = StdRng::seed_from_u64(1);
        let sample = e.run_once(12, &PlacementPolicy::LikwidPin(placement), &mut rng);
        assert_eq!(run.bandwidth_mbs, sample.bandwidth_mbs);
        assert!(run.mflops > 0.0);
        assert!(run.runtime_s > 0.0);
        assert_eq!(run.iterations, 20_000_000);
    }

    #[test]
    fn paper_thread_counts_cover_the_machine() {
        let e = experiment(CompilerPersonality::IntelIcc);
        let counts = e.paper_thread_counts();
        assert_eq!(counts.first(), Some(&1));
        assert_eq!(counts.last(), Some(&24));
    }
}

//! The pluggable workload abstraction behind every experiment.
//!
//! The paper's case studies (STREAM triad, blocked Jacobi) are *consumers*
//! of the LIKWID tools; this module turns them — and any future kernel —
//! into interchangeable plug-ins. A [`Workload`] declares its static
//! metadata (name, per-iteration flops and modelled memory traffic,
//! working-set size) and knows how to execute itself against a
//! [`SimMachine`] for a given thread [`Placement`], producing a
//! [`WorkloadRun`]: the modelled runtime and throughput plus the raw
//! cache-simulator statistics and execution profile that feed the
//! counting engine when the run is measured through `likwid-perfctr`.
//!
//! Everything above this trait — the [`crate::experiment::Experiment`]
//! builder, the figure generators, the `likwid-bench` microbenchmark tool —
//! is workload-agnostic.

use likwid_cache_sim::NodeStats;
use likwid_x86_machine::SimMachine;

use crate::exec::{ExecutionProfile, ProgressTrace};

/// Where a run's threads execute and where its data was first touched.
///
/// The two lists differ only for unpinned runs, where the scheduler may
/// have migrated threads between the initialisation loop (which places the
/// pages, first-touch) and the measured kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// The hardware thread each application thread runs on.
    pub compute: Vec<usize>,
    /// The hardware thread each application thread ran on while
    /// first-touching its data partition.
    pub init: Vec<usize>,
}

impl Placement {
    /// A pinned placement: threads compute exactly where they initialised.
    pub fn pinned(threads: Vec<usize>) -> Self {
        Placement { init: threads.clone(), compute: threads }
    }

    /// The distinct hardware threads of the compute placement, in first-use
    /// order (the `-c` set a counter session measures).
    pub fn measured_cpus(&self) -> Vec<usize> {
        let mut cpus = Vec::new();
        for &hw in &self.compute {
            if !cpus.contains(&hw) {
                cpus.push(hw);
            }
        }
        cpus
    }
}

/// The outcome of one workload execution.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// Kernel iterations performed (array elements processed, lattice site
    /// updates, dependent loads — whatever the workload's unit of work is).
    pub iterations: u64,
    /// Modelled wall-clock time in seconds.
    pub runtime_s: f64,
    /// Reported useful bandwidth in MB/s (decimal, as in the paper).
    pub bandwidth_mbs: f64,
    /// Double-precision MFlops/s.
    pub mflops: f64,
    /// Cache/memory statistics of the run; empty (default) for workloads
    /// evaluated through an analytic model instead of the cache simulator.
    pub stats: NodeStats,
    /// Per-thread execution profile consistent with the model, for the
    /// counting engine.
    pub profile: ExecutionProfile,
}

impl WorkloadRun {
    /// Iterations per second — MLUPS × 1e6 for a stencil, updates/s for a
    /// streaming kernel.
    pub fn iterations_per_second(&self) -> f64 {
        self.iterations as f64 / self.runtime_s
    }

    /// Average time per iteration in nanoseconds (the access latency for a
    /// dependent-load workload).
    pub fn time_per_iteration_ns(&self) -> f64 {
        self.runtime_s / self.iterations as f64 * 1e9
    }
}

/// A workload that can run under the experiment harness.
pub trait Workload {
    /// The kernel name (`copy`, `triad`, `jacobi-wavefront`, …).
    fn name(&self) -> &str;

    /// Double-precision floating-point operations per iteration.
    fn flops_per_iteration(&self) -> f64;

    /// Modelled memory traffic per iteration in bytes, *including* the
    /// write-allocate stream of regular stores under the simulator's
    /// write-back/write-allocate model (non-temporal stores and
    /// read-modify-write targets do not pay it).
    fn bytes_per_iteration(&self) -> f64;

    /// Total bytes of the data the kernel touches.
    fn working_set_bytes(&self) -> u64;

    /// Execute the access streams of the kernel on `machine` with the
    /// application threads at `placement`.
    fn run(&self, machine: &SimMachine, placement: &Placement) -> WorkloadRun;

    /// Execute like [`Workload::run`], additionally recording progress
    /// ticks with virtual timestamps into `trace` so the timeline harness
    /// has sampling points mid-run. The default implementation records one
    /// tick covering the whole run — correct for constant-rate kernels,
    /// whose cumulative counts interpolate linearly; phase-structured
    /// workloads (the Jacobi variants) override it with per-phase ticks.
    fn run_traced(
        &self,
        machine: &SimMachine,
        placement: &Placement,
        trace: &mut ProgressTrace,
    ) -> WorkloadRun {
        let run = self.run(machine, placement);
        trace.record(run.runtime_s, run.stats.clone(), run.profile.clone());
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_cpus_deduplicates_preserving_order() {
        let p = Placement::pinned(vec![4, 1, 4, 1, 2]);
        assert_eq!(p.measured_cpus(), vec![4, 1, 2]);
        assert_eq!(p.init, p.compute);
    }

    #[test]
    fn run_derives_per_iteration_figures() {
        let run = WorkloadRun {
            iterations: 1000,
            runtime_s: 2e-6,
            bandwidth_mbs: 0.0,
            mflops: 0.0,
            stats: NodeStats::default(),
            profile: ExecutionProfile::new(1),
        };
        assert!((run.iterations_per_second() - 5e8).abs() < 1.0);
        assert!((run.time_per_iteration_ns() - 2.0).abs() < 1e-9);
    }
}

//! APIC ID construction and decomposition.
//!
//! The hardware numbers every logical processor with an APIC ID. The ID is a
//! bit field: the least significant bits select the SMT thread within a core,
//! the next field selects the core within the package, and the remaining bits
//! select the package (socket). `likwid-topology` reconstructs the node
//! topology from these IDs, either through cpuid leaf 0xB (Nehalem and newer,
//! which reports the field widths directly) or through the legacy method of
//! leaf 0x1/0x4 (maximum logical processor counts rounded up to powers of
//! two).
//!
//! Real BIOSes frequently leave holes in the core-ID space — the Westmere EP
//! listing in the paper shows core IDs 0, 1, 2, 8, 9, 10 on a hexa-core
//! package — so the layout here supports an explicit per-package core-ID
//! table rather than assuming consecutive numbering.

/// Bit-field layout of an APIC ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ApicLayout {
    /// Number of bits used for the SMT (thread-in-core) field.
    pub smt_bits: u32,
    /// Number of bits used for the core-in-package field.
    pub core_bits: u32,
}

impl ApicLayout {
    /// Compute the layout for a package with `threads_per_core` SMT threads
    /// and room for core IDs up to `max_core_id` (inclusive).
    ///
    /// Field widths are the ceiling log2 of the count, exactly as mandated by
    /// the Intel topology enumeration algorithm.
    pub fn for_counts(threads_per_core: u32, max_core_id: u32) -> Self {
        ApicLayout {
            smt_bits: ceil_log2(threads_per_core.max(1)),
            core_bits: ceil_log2(max_core_id + 1),
        }
    }

    /// Compose an APIC ID from its `(package, core, smt)` coordinates.
    pub fn compose(&self, package: u32, core_id: u32, smt: u32) -> u32 {
        debug_assert!(smt < (1 << self.smt_bits).max(1));
        debug_assert!(core_id < (1 << self.core_bits).max(1));
        (package << (self.smt_bits + self.core_bits)) | (core_id << self.smt_bits) | smt
    }

    /// Decompose an APIC ID into `(package, core, smt)`.
    pub fn decompose(&self, apic_id: u32) -> (u32, u32, u32) {
        let smt_mask = (1u32 << self.smt_bits) - 1;
        let core_mask = (1u32 << self.core_bits) - 1;
        let smt = apic_id & smt_mask;
        let core = (apic_id >> self.smt_bits) & core_mask;
        let package = apic_id >> (self.smt_bits + self.core_bits);
        (package, core, smt)
    }

    /// Width of the combined SMT+core field, i.e. the shift that isolates the
    /// package number. Reported by cpuid leaf 0xB level 1 ECX/EAX.
    pub fn package_shift(&self) -> u32 {
        self.smt_bits + self.core_bits
    }
}

/// Ceiling of log2 for a non-zero count; 0 maps to 0 bits.
pub fn ceil_log2(count: u32) -> u32 {
    if count <= 1 {
        0
    } else {
        32 - (count - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_basic_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(6), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(12), 4);
    }

    #[test]
    fn compose_decompose_round_trip() {
        // Westmere EP: 2 SMT threads, core IDs up to 10 => 1 smt bit, 4 core bits.
        let layout = ApicLayout::for_counts(2, 10);
        assert_eq!(layout.smt_bits, 1);
        assert_eq!(layout.core_bits, 4);
        for package in 0..2 {
            for core in [0u32, 1, 2, 8, 9, 10] {
                for smt in 0..2 {
                    let id = layout.compose(package, core, smt);
                    assert_eq!(layout.decompose(id), (package, core, smt));
                }
            }
        }
    }

    #[test]
    fn core2_has_no_smt_bits() {
        let layout = ApicLayout::for_counts(1, 3);
        assert_eq!(layout.smt_bits, 0);
        assert_eq!(layout.core_bits, 2);
        let id = layout.compose(1, 3, 0);
        assert_eq!(layout.decompose(id), (1, 3, 0));
    }

    #[test]
    fn package_shift_matches_field_widths() {
        let layout = ApicLayout::for_counts(2, 5);
        assert_eq!(layout.package_shift(), layout.smt_bits + layout.core_bits);
    }
}

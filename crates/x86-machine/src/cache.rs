//! Cache hierarchy description.
//!
//! These are the *static* cache parameters that `cpuid` reports
//! (deterministic cache parameters, leaf 0x4 on Intel, leaf 0x8000_001D /
//! 0x8000_0005/6 on AMD, descriptor bytes of leaf 0x2 on older parts) and
//! that `likwid-topology -c` prints: level, type, size, associativity,
//! number of sets, line size, inclusiveness and how many hardware threads
//! share the cache. The dynamic behaviour (hits, misses, prefetches) lives
//! in the `likwid-cache-sim` crate, which is configured from these specs.

/// Kind of cache as reported by cpuid leaf 0x4 (field "cache type").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CacheKind {
    /// Data cache.
    Data,
    /// Instruction cache.
    Instruction,
    /// Unified cache (data + instructions).
    Unified,
}

impl CacheKind {
    /// Encoding used in cpuid leaf 0x4 EAX bits 4:0.
    pub fn cpuid_encoding(self) -> u32 {
        match self {
            CacheKind::Data => 1,
            CacheKind::Instruction => 2,
            CacheKind::Unified => 3,
        }
    }

    /// Decode the cpuid leaf 0x4 encoding.
    pub fn from_cpuid_encoding(v: u32) -> Option<Self> {
        match v {
            1 => Some(CacheKind::Data),
            2 => Some(CacheKind::Instruction),
            3 => Some(CacheKind::Unified),
            _ => None,
        }
    }

    /// Human-readable name as printed by `likwid-topology`.
    pub fn display_name(self) -> &'static str {
        match self {
            CacheKind::Data => "Data cache",
            CacheKind::Instruction => "Instruction cache",
            CacheKind::Unified => "Unified cache",
        }
    }
}

/// Static parameters of one cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheSpec {
    /// Cache level (1, 2, 3).
    pub level: u32,
    /// Data, instruction or unified.
    pub kind: CacheKind,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: u32,
    /// Cache line size in bytes.
    pub line_size: u32,
    /// Whether lower levels' contents are guaranteed to be contained
    /// ("inclusive"). The Westmere L3 in the paper reports "Non Inclusive".
    pub inclusive: bool,
    /// Number of hardware threads sharing one instance of this cache.
    pub shared_by_threads: u32,
    /// Whether this is an uncore (package-level) resource whose events need
    /// socket locks in `likwid-perfctr`.
    pub uncore: bool,
}

impl CacheSpec {
    /// Number of sets implied by size, associativity and line size.
    pub fn num_sets(&self) -> u32 {
        (self.size_bytes / (self.associativity as u64 * self.line_size as u64)) as u32
    }

    /// Number of cache instances of this level in a node with
    /// `total_hw_threads` hardware threads.
    pub fn instances_in_node(&self, total_hw_threads: u32) -> u32 {
        (total_hw_threads / self.shared_by_threads).max(1)
    }

    /// Validate internal consistency: size must be divisible into full sets.
    ///
    /// Set counts need not be powers of two — the Westmere L3 in the paper
    /// has 12288 sets — but line sizes must be, and the capacity must divide
    /// evenly into `sets × ways × line`.
    pub fn is_consistent(&self) -> bool {
        let ways_times_line = self.associativity as u64 * self.line_size as u64;
        ways_times_line != 0
            && self.size_bytes % ways_times_line == 0
            && self.num_sets() > 0
            && self.line_size.is_power_of_two()
    }

    /// Pretty size as printed by `likwid-topology` (kB for < 1 MB, MB above).
    pub fn display_size(&self) -> String {
        if self.size_bytes >= 1024 * 1024 {
            format!("{} MB", self.size_bytes / (1024 * 1024))
        } else {
            format!("{} kB", self.size_bytes / 1024)
        }
    }
}

/// Builder for the common case of data/unified caches.
pub fn cache(
    level: u32,
    kind: CacheKind,
    size_bytes: u64,
    associativity: u32,
    line_size: u32,
    inclusive: bool,
    shared_by_threads: u32,
) -> CacheSpec {
    CacheSpec {
        level,
        kind,
        size_bytes,
        associativity,
        line_size,
        inclusive,
        shared_by_threads,
        uncore: level >= 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn westmere_l1() -> CacheSpec {
        cache(1, CacheKind::Data, 32 * 1024, 8, 64, true, 2)
    }

    fn westmere_l3() -> CacheSpec {
        cache(3, CacheKind::Unified, 12 * 1024 * 1024, 16, 64, false, 12)
    }

    #[test]
    fn set_counts_match_the_paper_listing() {
        // Paper: L1 32 kB, 8-way, 64 sets; L2 256 kB, 8-way, 512 sets;
        // L3 12 MB, 16-way, 12288 sets.
        assert_eq!(westmere_l1().num_sets(), 64);
        assert_eq!(cache(2, CacheKind::Unified, 256 * 1024, 8, 64, true, 2).num_sets(), 512);
        assert_eq!(westmere_l3().num_sets(), 12288);
    }

    #[test]
    fn display_size_uses_kb_and_mb() {
        assert_eq!(westmere_l1().display_size(), "32 kB");
        assert_eq!(westmere_l3().display_size(), "12 MB");
    }

    #[test]
    fn cpuid_kind_encoding_round_trips() {
        for kind in [CacheKind::Data, CacheKind::Instruction, CacheKind::Unified] {
            assert_eq!(CacheKind::from_cpuid_encoding(kind.cpuid_encoding()), Some(kind));
        }
        assert_eq!(CacheKind::from_cpuid_encoding(0), None);
    }

    #[test]
    fn consistency_checks() {
        assert!(westmere_l1().is_consistent());
        let mut broken = westmere_l1();
        broken.size_bytes = 33_000; // not divisible into full sets of ways*line bytes
        assert!(!broken.is_consistent());
        let mut odd_line = westmere_l1();
        odd_line.line_size = 48; // line sizes must be powers of two
        assert!(!odd_line.is_consistent());
    }

    #[test]
    fn instances_in_node() {
        // 24 hardware threads, L1 shared by 2 => 12 instances; L3 shared by 12 => 2.
        assert_eq!(westmere_l1().instances_in_node(24), 12);
        assert_eq!(westmere_l3().instances_in_node(24), 2);
    }

    #[test]
    fn l3_is_marked_uncore() {
        assert!(westmere_l3().uncore);
        assert!(!westmere_l1().uncore);
    }
}

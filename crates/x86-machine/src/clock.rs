//! Clock and time-stamp counter model.
//!
//! `likwid-perfCtr` derives its "Runtime [s]" metric from
//! `CPU_CLK_UNHALTED_CORE / clock`, and `likwid-topology` prints the nominal
//! clock ("CPU clock: 2.93 GHz"). On real hardware the clock is determined
//! either from `MSR_PLATFORM_INFO` (Nehalem+) or by calibrating the TSC
//! against a wall-clock timer. The simulated machine advances a virtual TSC
//! explicitly: workload execution reports how many core cycles each hardware
//! thread consumed and the machine converts between cycles and seconds using
//! the nominal frequency.

/// A clock domain with a nominal frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClockDomain {
    /// Nominal core frequency in Hz.
    pub frequency_hz: f64,
}

impl ClockDomain {
    /// Create a clock domain from a frequency in GHz.
    pub fn from_ghz(ghz: f64) -> Self {
        ClockDomain { frequency_hz: ghz * 1e9 }
    }

    /// Nominal frequency in GHz.
    pub fn ghz(&self) -> f64 {
        self.frequency_hz / 1e9
    }

    /// Convert a cycle count to seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.frequency_hz
    }

    /// Convert a duration in seconds to (rounded) cycles.
    pub fn seconds_to_cycles(&self, seconds: f64) -> u64 {
        (seconds * self.frequency_hz).round() as u64
    }

    /// The bus/reference clock used to derive the frequency from the
    /// platform-info ratio (133.33 MHz on Nehalem/Westmere).
    pub const NEHALEM_BUS_CLOCK_HZ: f64 = 133.33e6;

    /// The maximum non-turbo ratio that `MSR_PLATFORM_INFO` would report for
    /// this frequency on a Nehalem-class part.
    pub fn platform_info_ratio(&self) -> u64 {
        (self.frequency_hz / Self::NEHALEM_BUS_CLOCK_HZ).round() as u64
    }

    /// Reconstruct the frequency from a platform-info ratio.
    pub fn from_platform_info_ratio(ratio: u64) -> Self {
        ClockDomain { frequency_hz: ratio as f64 * Self::NEHALEM_BUS_CLOCK_HZ }
    }

    /// Format for tool headers, e.g. "2.93 GHz".
    pub fn display(&self) -> String {
        format!("{:.2} GHz", self.ghz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghz_round_trip() {
        let c = ClockDomain::from_ghz(2.93);
        assert!((c.ghz() - 2.93).abs() < 1e-12);
        assert_eq!(c.display(), "2.93 GHz");
    }

    #[test]
    fn cycles_seconds_conversion_is_inverse() {
        let c = ClockDomain::from_ghz(2.66);
        let cycles = 1_000_000_u64;
        let secs = c.cycles_to_seconds(cycles);
        assert_eq!(c.seconds_to_cycles(secs), cycles);
    }

    #[test]
    fn platform_info_ratio_round_trips_for_westmere() {
        let c = ClockDomain::from_ghz(2.93);
        let ratio = c.platform_info_ratio();
        assert_eq!(ratio, 22, "2.93 GHz / 133 MHz bus clock is a 22x multiplier");
        let back = ClockDomain::from_platform_info_ratio(ratio);
        assert!((back.ghz() - 2.93).abs() < 0.05);
    }

    #[test]
    fn runtime_metric_example_from_the_paper() {
        // The paper's Benchmark region: ~2.858e7 unhalted cycles on a
        // 2.83 GHz Core 2 is about 0.0101 s.
        let c = ClockDomain::from_ghz(2.83);
        let runtime = c.cycles_to_seconds(28_583_800);
        assert!((runtime - 0.0101).abs() < 0.0002);
    }
}

//! Bit-exact encoding of the `cpuid` leaves used by `likwid-topology`.
//!
//! The topology tool recovers three things from `cpuid`: the processor
//! identification (leaf 0x0 and 0x1), the thread topology (leaf 0xB on
//! Nehalem and newer, the legacy leaf 0x1/0x4 method on Core 2 class parts,
//! and leaf 0x8000_0008 on AMD), and the cache topology (deterministic cache
//! parameters in leaf 0x4 on Intel, the descriptor table of leaf 0x2 on
//! Pentium M, and leaves 0x8000_0005/0x8000_0006 on AMD). This module
//! encodes those leaves from a [`CpuidSource`] description so that the
//! decoder in the `likwid` crate operates on exactly the register images a
//! real processor would return.

use crate::cache::{CacheKind, CacheSpec};
use crate::clock::ClockDomain;
use crate::error::{MachineError, Result};
use crate::topology::TopologySpec;
use crate::vendor::{Microarch, Vendor};

/// The four registers returned by a `cpuid` invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CpuidResult {
    /// EAX output register.
    pub eax: u32,
    /// EBX output register.
    pub ebx: u32,
    /// ECX output register.
    pub ecx: u32,
    /// EDX output register.
    pub edx: u32,
}

/// Identifier of a cpuid leaf/subleaf pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CpuidLeaf {
    /// Main leaf number (EAX input).
    pub leaf: u32,
    /// Subleaf number (ECX input).
    pub subleaf: u32,
}

impl CpuidLeaf {
    /// Convenience constructor.
    pub fn new(leaf: u32, subleaf: u32) -> Self {
        CpuidLeaf { leaf, subleaf }
    }
}

/// Everything needed to answer `cpuid` queries for one machine.
pub struct CpuidSource<'a> {
    /// Microarchitecture (determines which leaves exist and family/model).
    pub arch: Microarch,
    /// Node topology.
    pub topology: &'a TopologySpec,
    /// Data/unified cache levels, ordered by level.
    pub caches: &'a [CacheSpec],
    /// Nominal clock (used only for the brand string frequency suffix).
    pub clock: ClockDomain,
    /// Processor brand string (leaves 0x8000_0002..4).
    pub brand: &'a str,
}

impl<'a> CpuidSource<'a> {
    /// Maximum standard leaf for this microarchitecture.
    pub fn max_standard_leaf(&self) -> u32 {
        match self.arch {
            Microarch::PentiumM => 0x02,
            Microarch::K8 | Microarch::K10 => 0x01,
            Microarch::Core2 | Microarch::Atom => 0x0A,
            Microarch::NehalemEp | Microarch::WestmereEp => 0x0B,
        }
    }

    /// Maximum extended leaf.
    pub fn max_extended_leaf(&self) -> u32 {
        match self.arch.vendor() {
            Vendor::Intel => 0x8000_0008,
            Vendor::Amd => 0x8000_0008,
        }
    }

    /// Execute `cpuid` with the given leaf/subleaf as seen from hardware
    /// thread `cpu`.
    pub fn query(&self, cpu: usize, leaf: u32, subleaf: u32) -> Result<CpuidResult> {
        let thread = self.topology.hw_thread(cpu)?;
        let apic_id = thread.apic_id;
        match leaf {
            0x0 => Ok(self.leaf_0()),
            0x1 => Ok(self.leaf_1(apic_id)),
            0x2 => Ok(self.leaf_2()),
            0x4 if self.arch.has_leaf_0x4() => Ok(self.leaf_4(subleaf)),
            0xB if self.arch.has_leaf_0xb() => Ok(self.leaf_b(subleaf, apic_id)),
            0x8000_0000 => Ok(CpuidResult { eax: self.max_extended_leaf(), ..Default::default() }),
            0x8000_0002 | 0x8000_0003 | 0x8000_0004 => {
                Ok(self.brand_string_leaf(leaf - 0x8000_0002))
            }
            0x8000_0005 if self.arch.vendor() == Vendor::Amd => Ok(self.amd_l1_leaf()),
            0x8000_0006 if self.arch.vendor() == Vendor::Amd => Ok(self.amd_l2_l3_leaf()),
            0x8000_0008 => Ok(self.leaf_8000_0008()),
            _ => Err(MachineError::UnsupportedLeaf { leaf, subleaf }),
        }
    }

    /// Leaf 0x0: maximum leaf and vendor identification string.
    fn leaf_0(&self) -> CpuidResult {
        let id = self.arch.vendor().id_string().as_bytes();
        let word = |i: usize| u32::from_le_bytes([id[i], id[i + 1], id[i + 2], id[i + 3]]);
        CpuidResult { eax: self.max_standard_leaf(), ebx: word(0), edx: word(4), ecx: word(8) }
    }

    /// Leaf 0x1: family/model/stepping, logical processor count, APIC ID and
    /// feature flags.
    fn leaf_1(&self, apic_id: u32) -> CpuidResult {
        let (family, model) = self.arch.family_model();
        let (base_family, ext_family) =
            if family > 0xF { (0xF, family - 0xF) } else { (family, 0) };
        let (base_model, ext_model) = (model & 0xF, (model >> 4) & 0xF);
        let stepping = 2u32;
        let eax = (ext_family << 20)
            | (ext_model << 16)
            | (base_family << 8)
            | (base_model << 4)
            | stepping;

        let logical_per_package = self.topology.cores_per_socket * self.topology.threads_per_core;
        // EBX 23:16 must be a power of two >= the logical count (the legacy
        // enumeration algorithm rounds it up).
        let logical_rounded = logical_per_package.next_power_of_two();
        let ebx =
            (apic_id << 24) | (logical_rounded << 16) | (8 << 8/* CLFLUSH line size in qwords */);

        // EDX feature flags: TSC (4), MSR (5), APIC (9), CMOV (15), CLFSH (19),
        // MMX (23), FXSR (24), SSE (25), SSE2 (26), HTT (28).
        let mut edx = (1 << 4)
            | (1 << 5)
            | (1 << 9)
            | (1 << 15)
            | (1 << 19)
            | (1 << 23)
            | (1 << 24)
            | (1 << 25)
            | (1 << 26);
        if logical_per_package > 1 {
            edx |= 1 << 28;
        }
        // ECX feature flags: SSE3 (0), SSSE3 (9), SSE4.1 (19), SSE4.2 (20) on
        // Nehalem/Westmere.
        let mut ecx = 1 << 0;
        if matches!(
            self.arch,
            Microarch::Core2 | Microarch::Atom | Microarch::NehalemEp | Microarch::WestmereEp
        ) {
            ecx |= 1 << 9;
        }
        if matches!(self.arch, Microarch::NehalemEp | Microarch::WestmereEp) {
            ecx |= (1 << 19) | (1 << 20);
        }
        CpuidResult { eax, ebx, ecx, edx }
    }

    /// Leaf 0x2: cache descriptor bytes (legacy table used by Pentium M).
    ///
    /// Only a small subset of descriptors is emitted: one per data/unified
    /// cache level with a matching well-known descriptor value.
    fn leaf_2(&self) -> CpuidResult {
        // Descriptor values from the SDM table:
        //   0x2c: L1D 32 kB, 8-way, 64-byte lines
        //   0x30: L1I 32 kB
        //   0x7d: L2 2 MB, 8-way, 64-byte lines
        //   0x29: L3 4 MB (placeholder for larger unified caches)
        let mut bytes: Vec<u8> = vec![0x01]; // AL = number of times to run leaf 2
        for c in self.caches {
            let desc = match (c.level, c.kind) {
                (1, CacheKind::Data) => 0x2c,
                (1, CacheKind::Instruction) => 0x30,
                (2, _) => 0x7d,
                (3, _) => 0x29,
                _ => 0x00,
            };
            bytes.push(desc);
        }
        while bytes.len() < 16 {
            bytes.push(0);
        }
        let reg =
            |i: usize| u32::from_le_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]]);
        CpuidResult { eax: reg(0), ebx: reg(4), ecx: reg(8), edx: reg(12) }
    }

    /// Leaf 0x4: deterministic cache parameters (Intel, Core 2 and newer).
    fn leaf_4(&self, subleaf: u32) -> CpuidResult {
        // Subleaves enumerate caches; an EAX type field of 0 terminates.
        let Some(cache) = self.caches.get(subleaf as usize) else {
            return CpuidResult::default();
        };
        // Bits 25:14 report the *APIC-ID span* of the sharing domain, i.e.
        // "maximum number of addressable IDs for logical processors sharing
        // this cache", not the actual thread count: on a hexa-core Westmere
        // with core-ID holes the socket-wide L3 reports 32 even though only
        // 12 hardware threads exist. The decoder masks APIC IDs with this
        // span to build the sharing groups.
        let layout = &self.topology.apic_layout;
        let threads_per_core = self.topology.threads_per_core;
        let max_logical_sharing = if cache.shared_by_threads <= threads_per_core {
            cache.shared_by_threads.next_power_of_two()
        } else {
            let cores_sharing = cache.shared_by_threads / threads_per_core.max(1);
            if cores_sharing >= self.topology.cores_per_socket {
                1 << layout.package_shift()
            } else {
                cores_sharing.next_power_of_two() * (1 << layout.smt_bits)
            }
        };
        let max_cores_per_package = self.topology.cores_per_socket.next_power_of_two();
        let eax = cache.kind.cpuid_encoding()
            | (cache.level << 5)
            | (1 << 8) // self initializing
            | ((max_logical_sharing - 1) << 14)
            | ((max_cores_per_package - 1) << 26);
        let ebx = (cache.line_size - 1) | (0 << 12) | ((cache.associativity - 1) << 22);
        let ecx = cache.num_sets() - 1;
        let edx = if cache.inclusive { 1 << 1 } else { 0 };
        CpuidResult { eax, ebx, ecx, edx }
    }

    /// Leaf 0xB: extended topology enumeration (Nehalem and newer).
    fn leaf_b(&self, subleaf: u32, apic_id: u32) -> CpuidResult {
        let layout = &self.topology.apic_layout;
        match subleaf {
            0 => CpuidResult {
                eax: layout.smt_bits,
                ebx: self.topology.threads_per_core,
                ecx: (1 << 8) | subleaf, // level type 1 = SMT
                edx: apic_id,
            },
            1 => CpuidResult {
                eax: layout.package_shift(),
                ebx: self.topology.cores_per_socket * self.topology.threads_per_core,
                ecx: (2 << 8) | subleaf, // level type 2 = Core
                edx: apic_id,
            },
            _ => CpuidResult {
                eax: 0,
                ebx: 0,
                ecx: subleaf, // level type 0 = invalid, terminates enumeration
                edx: apic_id,
            },
        }
    }

    /// Leaves 0x8000_0002..4: the 48-character processor brand string.
    fn brand_string_leaf(&self, index: u32) -> CpuidResult {
        let mut brand = format!("{} @ {}", self.brand, self.clock.display());
        brand.truncate(47);
        let mut bytes = brand.into_bytes();
        bytes.resize(48, 0);
        let base = (index * 16) as usize;
        let reg = |i: usize| {
            u32::from_le_bytes([
                bytes[base + i],
                bytes[base + i + 1],
                bytes[base + i + 2],
                bytes[base + i + 3],
            ])
        };
        CpuidResult { eax: reg(0), ebx: reg(4), ecx: reg(8), edx: reg(12) }
    }

    /// AMD leaf 0x8000_0005: L1 cache and TLB information.
    fn amd_l1_leaf(&self) -> CpuidResult {
        let l1d = self.caches.iter().find(|c| c.level == 1 && c.kind == CacheKind::Data);
        let ecx = l1d.map_or(0, |c| {
            let size_kb = (c.size_bytes / 1024) as u32;
            (size_kb << 24) | (c.associativity << 16) | (1 << 8) | c.line_size
        });
        CpuidResult { eax: 0, ebx: 0, ecx, edx: 0 }
    }

    /// AMD leaf 0x8000_0006: L2 and L3 cache information.
    fn amd_l2_l3_leaf(&self) -> CpuidResult {
        let assoc_code = |ways: u32| -> u32 {
            match ways {
                1 => 0x1,
                2 => 0x2,
                4 => 0x4,
                8 => 0x6,
                16 => 0x8,
                32 => 0xA,
                48 => 0xB,
                64 => 0xC,
                96 => 0xD,
                128 => 0xE,
                _ => 0xF, // fully associative / other
            }
        };
        let l2 = self.caches.iter().find(|c| c.level == 2);
        let ecx = l2.map_or(0, |c| {
            let size_kb = (c.size_bytes / 1024) as u32;
            (size_kb << 16) | (assoc_code(c.associativity) << 12) | c.line_size
        });
        let l3 = self.caches.iter().find(|c| c.level == 3);
        let edx = l3.map_or(0, |c| {
            let size_512kb = (c.size_bytes / (512 * 1024)) as u32;
            (size_512kb << 18) | (assoc_code(c.associativity) << 12) | c.line_size
        });
        CpuidResult { eax: 0, ebx: 0, ecx, edx }
    }

    /// Leaf 0x8000_0008: physical address bits and (on AMD) the core count
    /// per package used for topology enumeration.
    fn leaf_8000_0008(&self) -> CpuidResult {
        let cores_minus_one = self.topology.cores_per_socket * self.topology.threads_per_core - 1;
        let ecx = match self.arch.vendor() {
            Vendor::Amd => cores_minus_one,
            Vendor::Intel => 0,
        };
        CpuidResult { eax: (48 << 8) | 40, ebx: 0, ecx, edx: 0 }
    }
}

/// Extract the display family/model from a leaf 0x1 EAX value (the inverse of
/// the encoding above), as performed by the identification code in the tools.
pub fn decode_family_model(eax: u32) -> (u32, u32) {
    let base_family = (eax >> 8) & 0xF;
    let ext_family = (eax >> 20) & 0xFF;
    let base_model = (eax >> 4) & 0xF;
    let ext_model = (eax >> 16) & 0xF;
    let family = if base_family == 0xF { base_family + ext_family } else { base_family };
    let model = if base_family == 0xF || base_family == 6 {
        (ext_model << 4) | base_model
    } else {
        base_model
    };
    (family, model)
}

/// Decode the vendor string from a leaf 0x0 result.
pub fn decode_vendor_string(leaf0: CpuidResult) -> String {
    let mut bytes = Vec::with_capacity(12);
    bytes.extend_from_slice(&leaf0.ebx.to_le_bytes());
    bytes.extend_from_slice(&leaf0.edx.to_le_bytes());
    bytes.extend_from_slice(&leaf0.ecx.to_le_bytes());
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Decode the brand string from the three extended leaves.
pub fn decode_brand_string(leaves: [CpuidResult; 3]) -> String {
    let mut bytes = Vec::with_capacity(48);
    for l in leaves {
        bytes.extend_from_slice(&l.eax.to_le_bytes());
        bytes.extend_from_slice(&l.ebx.to_le_bytes());
        bytes.extend_from_slice(&l.ecx.to_le_bytes());
        bytes.extend_from_slice(&l.edx.to_le_bytes());
    }
    let end = bytes.iter().position(|&b| b == 0).unwrap_or(bytes.len());
    String::from_utf8_lossy(&bytes[..end]).trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::cache;
    use crate::topology::EnumerationOrder;

    fn westmere_topo() -> TopologySpec {
        TopologySpec::new(
            2,
            6,
            2,
            Some(vec![0, 1, 2, 8, 9, 10]),
            EnumerationOrder::SmtLast,
            12 << 30,
        )
        .unwrap()
    }

    fn westmere_caches() -> Vec<CacheSpec> {
        vec![
            cache(1, CacheKind::Data, 32 * 1024, 8, 64, true, 2),
            cache(2, CacheKind::Unified, 256 * 1024, 8, 64, true, 2),
            cache(3, CacheKind::Unified, 12 * 1024 * 1024, 16, 64, false, 12),
        ]
    }

    fn source<'a>(topo: &'a TopologySpec, caches: &'a [CacheSpec]) -> CpuidSource<'a> {
        CpuidSource {
            arch: Microarch::WestmereEp,
            topology: topo,
            caches,
            clock: ClockDomain::from_ghz(2.93),
            brand: "Intel(R) Xeon(R) CPU X5670",
        }
    }

    #[test]
    fn leaf0_vendor_string_decodes_to_genuine_intel() {
        let topo = westmere_topo();
        let caches = westmere_caches();
        let src = source(&topo, &caches);
        let r = src.query(0, 0, 0).unwrap();
        assert_eq!(decode_vendor_string(r), "GenuineIntel");
        assert_eq!(r.eax, 0x0B);
    }

    #[test]
    fn leaf1_family_model_round_trips() {
        let topo = westmere_topo();
        let caches = westmere_caches();
        let src = source(&topo, &caches);
        let r = src.query(0, 1, 0).unwrap();
        assert_eq!(decode_family_model(r.eax), (6, 0x2C));
        // HTT flag set, initial APIC ID of cpu 0 is 0.
        assert_ne!(r.edx & (1 << 28), 0);
        assert_eq!(r.ebx >> 24, 0);
    }

    #[test]
    fn leaf1_reports_the_apic_id_of_the_queried_thread() {
        let topo = westmere_topo();
        let caches = westmere_caches();
        let src = source(&topo, &caches);
        for cpu in [0usize, 3, 12, 23] {
            let expect = topo.hw_thread(cpu).unwrap().apic_id;
            let r = src.query(cpu, 1, 0).unwrap();
            assert_eq!(r.ebx >> 24, expect);
        }
    }

    #[test]
    fn leaf4_encodes_the_westmere_cache_parameters() {
        let topo = westmere_topo();
        let caches = westmere_caches();
        let src = source(&topo, &caches);

        // Subleaf 0: L1D 32 kB, 8-way, 64 sets, inclusive, shared by 2 threads.
        let r = src.query(0, 4, 0).unwrap();
        assert_eq!(r.eax & 0x1F, 1, "data cache");
        assert_eq!((r.eax >> 5) & 0x7, 1, "level 1");
        assert_eq!(((r.eax >> 14) & 0xFFF) + 1, 2, "shared by 2 threads");
        assert_eq!((r.ebx & 0xFFF) + 1, 64, "line size");
        assert_eq!((r.ebx >> 22) + 1, 8, "associativity");
        assert_eq!(r.ecx + 1, 64, "sets");
        assert_ne!(r.edx & 0b10, 0, "inclusive");

        // Subleaf 2: the 12 MB L3, 16-way, 12288 sets, non-inclusive, shared
        // by the whole socket (APIC span 32 on this core-ID-holed hexa-core).
        let r = src.query(0, 4, 2).unwrap();
        assert_eq!((r.eax >> 5) & 0x7, 3);
        assert_eq!(((r.eax >> 14) & 0xFFF) + 1, 32, "socket-wide sharing spans the APIC ID space");
        assert_eq!(r.ecx + 1, 12288);
        assert_eq!(r.edx & 0b10, 0, "non-inclusive");

        // Subleaf 3 terminates the enumeration.
        let r = src.query(0, 4, 3).unwrap();
        assert_eq!(r.eax & 0x1F, 0);
    }

    #[test]
    fn leaf_b_reports_shift_widths_and_apic_id() {
        let topo = westmere_topo();
        let caches = westmere_caches();
        let src = source(&topo, &caches);

        let smt = src.query(13, 0xB, 0).unwrap();
        assert_eq!(smt.eax, 1, "one SMT bit");
        assert_eq!(smt.ebx, 2, "two threads per core");
        assert_eq!((smt.ecx >> 8) & 0xFF, 1, "SMT level type");
        assert_eq!(smt.edx, topo.hw_thread(13).unwrap().apic_id);

        let core = src.query(13, 0xB, 1).unwrap();
        assert_eq!(core.eax, 5, "1 smt bit + 4 core bits");
        assert_eq!(core.ebx, 12, "12 logical processors per package");
        assert_eq!((core.ecx >> 8) & 0xFF, 2, "core level type");

        let invalid = src.query(13, 0xB, 2).unwrap();
        assert_eq!((invalid.ecx >> 8) & 0xFF, 0, "enumeration terminates");
    }

    #[test]
    fn brand_string_round_trips() {
        let topo = westmere_topo();
        let caches = westmere_caches();
        let src = source(&topo, &caches);
        let leaves = [
            src.query(0, 0x8000_0002, 0).unwrap(),
            src.query(0, 0x8000_0003, 0).unwrap(),
            src.query(0, 0x8000_0004, 0).unwrap(),
        ];
        let brand = decode_brand_string(leaves);
        assert!(brand.starts_with("Intel(R) Xeon(R) CPU X5670"));
        assert!(brand.contains("2.93 GHz"));
    }

    #[test]
    fn amd_leaves_encode_cache_sizes() {
        let topo =
            TopologySpec::new(2, 6, 1, None, EnumerationOrder::SocketsFirstSmtAdjacent, 16 << 30)
                .unwrap();
        let caches = vec![
            cache(1, CacheKind::Data, 64 * 1024, 2, 64, false, 1),
            cache(2, CacheKind::Unified, 512 * 1024, 16, 64, false, 1),
            cache(3, CacheKind::Unified, 6 * 1024 * 1024, 48, 64, false, 6),
        ];
        let src = CpuidSource {
            arch: Microarch::K10,
            topology: &topo,
            caches: &caches,
            clock: ClockDomain::from_ghz(2.6),
            brand: "AMD Opteron(tm) Processor 2435",
        };
        let l1 = src.query(0, 0x8000_0005, 0).unwrap();
        assert_eq!(l1.ecx >> 24, 64, "64 kB L1D");
        assert_eq!(l1.ecx & 0xFF, 64, "64-byte lines");

        let l23 = src.query(0, 0x8000_0006, 0).unwrap();
        assert_eq!(l23.ecx >> 16, 512, "512 kB L2");
        assert_eq!(l23.edx >> 18, 12, "6 MB L3 in 512 kB units");

        let topo_leaf = src.query(0, 0x8000_0008, 0).unwrap();
        assert_eq!((topo_leaf.ecx & 0xFF) + 1, 6, "six cores per package");
    }

    #[test]
    fn unsupported_leaves_error_out() {
        let topo = westmere_topo();
        let caches = westmere_caches();
        let src = source(&topo, &caches);
        assert!(matches!(
            src.query(0, 0x15, 0),
            Err(MachineError::UnsupportedLeaf { leaf: 0x15, .. })
        ));
        // Core 2 has no leaf 0xB.
        let core2_src = CpuidSource { arch: Microarch::Core2, ..source(&topo, &caches) };
        assert!(core2_src.query(0, 0xB, 0).is_err());
    }

    #[test]
    fn family_model_decoder_handles_amd_extended_family() {
        // AMD K10: family 0x10 is encoded as base 0xF + extended 0x1.
        let topo = westmere_topo();
        let caches = westmere_caches();
        let src = CpuidSource { arch: Microarch::K10, ..source(&topo, &caches) };
        let r = src.query(0, 1, 0).unwrap();
        assert_eq!(decode_family_model(r.eax).0, 0x10);
    }
}

//! Error type shared by the machine substrate.

use core::fmt;

/// Errors raised by the simulated machine interfaces.
///
/// These mirror the failure modes the real tools see: an invalid hardware
/// thread index (no such `/dev/cpu/N/msr` file), an unknown or unimplemented
/// MSR address (the real module returns `EIO`), a write to a read-only
/// register, or insufficient permission on the device file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// The hardware thread index does not exist on this machine.
    NoSuchCpu { cpu: usize, available: usize },
    /// The MSR address is not implemented on this microarchitecture.
    UnknownMsr { cpu: usize, address: u32 },
    /// The MSR exists but is read-only (e.g. fixed hardware identification).
    ReadOnlyMsr { address: u32 },
    /// The MSR device was opened without write permission.
    PermissionDenied { address: u32 },
    /// A reserved bit was set in a register that checks reserved bits.
    ReservedBits { address: u32, value: u64, reserved_mask: u64 },
    /// A cpuid leaf outside the supported range was requested.
    UnsupportedLeaf { leaf: u32, subleaf: u32 },
    /// Topology construction was given inconsistent parameters.
    InvalidTopology(String),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::NoSuchCpu { cpu, available } => {
                write!(f, "no such hardware thread {cpu} (machine has {available})")
            }
            MachineError::UnknownMsr { cpu, address } => {
                write!(f, "rdmsr/wrmsr on cpu {cpu}: unknown MSR {address:#x}")
            }
            MachineError::ReadOnlyMsr { address } => {
                write!(f, "MSR {address:#x} is read-only")
            }
            MachineError::PermissionDenied { address } => {
                write!(f, "MSR device not opened for writing (MSR {address:#x})")
            }
            MachineError::ReservedBits { address, value, reserved_mask } => write!(
                f,
                "write of {value:#x} to MSR {address:#x} touches reserved bits {reserved_mask:#x}"
            ),
            MachineError::UnsupportedLeaf { leaf, subleaf } => {
                write!(f, "cpuid leaf {leaf:#x} subleaf {subleaf:#x} not supported")
            }
            MachineError::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
        }
    }
}

impl std::error::Error for MachineError {}

/// Convenience alias used throughout the substrate.
pub type Result<T> = std::result::Result<T, MachineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_fields() {
        let e = MachineError::NoSuchCpu { cpu: 99, available: 8 };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains('8'));

        let e = MachineError::UnknownMsr { cpu: 1, address: 0x186 };
        assert!(e.to_string().contains("0x186"));

        let e = MachineError::ReservedBits { address: 0x38d, value: 0xff, reserved_mask: 0xf0 };
        assert!(e.to_string().contains("0x38d"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<MachineError>();
    }
}

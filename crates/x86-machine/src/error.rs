//! Error type shared by the machine substrate.

use core::fmt;

/// Errors raised by the simulated machine interfaces.
///
/// These mirror the failure modes the real tools see: an invalid hardware
/// thread index (no such `/dev/cpu/N/msr` file), an unknown or unimplemented
/// MSR address (the real module returns `EIO`), a write to a read-only
/// register, or insufficient permission on the device file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// The hardware thread index does not exist on this machine.
    NoSuchCpu { cpu: usize, available: usize },
    /// The MSR address is not implemented on this microarchitecture.
    UnknownMsr { cpu: usize, address: u32 },
    /// The MSR exists but is read-only (e.g. fixed hardware identification).
    ReadOnlyMsr { cpu: usize, address: u32 },
    /// The MSR device was opened without write permission.
    PermissionDenied { cpu: usize, address: u32 },
    /// A reserved bit was set in a register that checks reserved bits.
    ReservedBits { cpu: usize, address: u32, value: u64, reserved_mask: u64 },
    /// A transient or permanent I/O failure injected by a fault plan — the
    /// analogue of the `EIO` the real msr module returns under register or
    /// device trouble. Transient instances succeed when retried.
    MsrIo { cpu: usize, address: u32, write: bool },
    /// A cpuid leaf outside the supported range was requested.
    UnsupportedLeaf { leaf: u32, subleaf: u32 },
    /// Topology construction was given inconsistent parameters.
    InvalidTopology(String),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::NoSuchCpu { cpu, available } => {
                write!(f, "no such hardware thread {cpu} (machine has {available})")
            }
            MachineError::UnknownMsr { cpu, address } => {
                write!(f, "rdmsr/wrmsr on cpu {cpu}: unknown MSR {address:#x}")
            }
            MachineError::ReadOnlyMsr { cpu, address } => {
                write!(f, "wrmsr on cpu {cpu}: MSR {address:#x} is read-only")
            }
            MachineError::PermissionDenied { cpu, address } => write!(
                f,
                "wrmsr on cpu {cpu}: MSR {address:#x} denied \
                 (device opened with read-only permission)"
            ),
            MachineError::ReservedBits { cpu, address, value, reserved_mask } => write!(
                f,
                "wrmsr on cpu {cpu}: write of {value:#x} to MSR {address:#x} \
                 touches reserved bits {reserved_mask:#x}"
            ),
            MachineError::MsrIo { cpu, address, write } => {
                let op = if *write { "wrmsr" } else { "rdmsr" };
                write!(f, "{op} on cpu {cpu}: MSR {address:#x} failed with EIO (injected fault)")
            }
            MachineError::UnsupportedLeaf { leaf, subleaf } => {
                write!(f, "cpuid leaf {leaf:#x} subleaf {subleaf:#x} not supported")
            }
            MachineError::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
        }
    }
}

impl std::error::Error for MachineError {}

/// Convenience alias used throughout the substrate.
pub type Result<T> = std::result::Result<T, MachineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_fields() {
        let e = MachineError::NoSuchCpu { cpu: 99, available: 8 };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains('8'));

        let e = MachineError::UnknownMsr { cpu: 1, address: 0x186 };
        assert!(e.to_string().contains("0x186"));

        let e =
            MachineError::ReservedBits { cpu: 3, address: 0x38d, value: 0xff, reserved_mask: 0xf0 };
        assert!(e.to_string().contains("0x38d"));
    }

    #[test]
    fn msr_failures_render_cpu_register_and_permission() {
        // Every MSR read/write failure names the cpu, the register address
        // and — where relevant — the device permission, mirroring the
        // strerror context a real tool would log.
        let e = MachineError::ReadOnlyMsr { cpu: 5, address: 0x38E };
        assert_eq!(e.to_string(), "wrmsr on cpu 5: MSR 0x38e is read-only");

        let e = MachineError::PermissionDenied { cpu: 2, address: 0x186 };
        assert_eq!(
            e.to_string(),
            "wrmsr on cpu 2: MSR 0x186 denied (device opened with read-only permission)"
        );

        let e = MachineError::ReservedBits {
            cpu: 1,
            address: 0x186,
            value: 0x1_0000_0000,
            reserved_mask: 0xFFFF_FFFF_0000_0000,
        };
        let text = e.to_string();
        assert!(text.contains("cpu 1"), "{text}");
        assert!(text.contains("0x186"), "{text}");
        assert!(text.contains("reserved bits"), "{text}");

        let e = MachineError::MsrIo { cpu: 7, address: 0xC1, write: false };
        assert_eq!(e.to_string(), "rdmsr on cpu 7: MSR 0xc1 failed with EIO (injected fault)");
        let e = MachineError::MsrIo { cpu: 7, address: 0xC1, write: true };
        assert!(e.to_string().starts_with("wrmsr on cpu 7"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<MachineError>();
    }
}

//! Deterministic, seedable fault injection for the MSR substrate.
//!
//! Real `likwid-perfctr` sessions contend with a hostile register file:
//! `pread`/`pwrite` on `/dev/cpu/<N>/msr` can fail transiently with `EIO`,
//! other tools leave PERFEVTSEL and counter state dirty, a register can be
//! stuck (writes silently lost), and a CPU can drop out of the measurable
//! set mid-run (offlining, device-node churn). A [`FaultPlan`] describes
//! such a scenario; attached to the machine's MSR space it perturbs every
//! *device-mediated* access (the tool side), while the machine-internal
//! [`crate::msr::MsrFile`] path — the counting engine and the clock, i.e.
//! the hardware itself — is never affected.
//!
//! All decisions are pure functions of the plan's seed and the access
//! history, so a fault scenario replays bit-identically: the equivalence
//! suite relies on a retried session under a transient-only plan producing
//! exactly the counts of a fault-free run.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::error::{MachineError, Result};

/// Upper bound on `max_consecutive` of a [`TransientSpec`]: a transient
/// fault channel never fails the same register more than this many times in
/// a row, so any retry loop with more attempts is guaranteed to make
/// progress. Session layers retry `MAX_CONSECUTIVE_LIMIT + 2` times or more.
pub const MAX_CONSECUTIVE_LIMIT: u32 = 6;

/// One transient fault channel (reads or writes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientSpec {
    /// Per-access failure probability in `[0, 1)`.
    pub probability: f64,
    /// Bound on consecutive failures of one `(cpu, register)` pair; after
    /// this many faults in a row the next access is forced to succeed.
    /// Clamped to [`MAX_CONSECUTIVE_LIMIT`].
    pub max_consecutive: u32,
}

/// A deterministic fault scenario for the MSR device interface.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of every pseudo-random decision the plan makes.
    pub seed: u64,
    /// Transient `rdmsr` failures (EIO-style, succeed on retry).
    pub read: Option<TransientSpec>,
    /// Transient `wrmsr` failures.
    pub write: Option<TransientSpec>,
    /// Scribble deterministic garbage into all performance-counter
    /// registers at attach time (counters left dirty by a previous tool).
    pub dirty: bool,
    /// `(cpu, register)` pairs whose device writes are silently dropped —
    /// the register keeps its old value, which only verify-after-write
    /// programming can detect.
    pub stuck: Vec<(usize, u32)>,
    /// `(cpu, access_budget)` pairs: after `access_budget` device accesses
    /// the cpu becomes permanently unreadable and unwritable.
    pub dead: Vec<(usize, u64)>,
}

impl FaultPlan {
    /// A plan with only a seed set (no faults).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Whether the plan can only produce transient faults, i.e. a session
    /// with bounded retry is guaranteed to read the same values as on a
    /// fault-free machine. `dirty` is included: dirty state is fully healed
    /// by programming the counters.
    pub fn is_transient_only(&self) -> bool {
        self.stuck.is_empty() && self.dead.is_empty()
    }

    /// Parse an `--inject` specification: comma-separated items
    ///
    /// * `seed=N` — decision seed (default 1)
    /// * `read=P[xK]` — transient read faults with probability `P`, at most
    ///   `K` consecutive per register (default 2, clamped to 6)
    /// * `write=P[xK]` — transient write faults
    /// * `dirty` — counters and event selects hold garbage at attach
    /// * `stuck=ADDR@CPU` — writes to `ADDR` (hex or decimal) on `CPU` are
    ///   silently dropped; may be given repeatedly
    /// * `dead=CPU@N` — `CPU` becomes unreadable after `N` device accesses
    ///
    /// Example: `seed=7,read=0.3x4,write=0.2,dirty,dead=1@200`.
    pub fn parse(spec: &str) -> std::result::Result<Self, String> {
        let mut plan = FaultPlan::seeded(1);
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match item.split_once('=') {
                None if item == "dirty" => plan.dirty = true,
                None => return Err(format!("unknown fault item '{item}'")),
                Some(("seed", v)) => {
                    plan.seed = v.parse().map_err(|_| format!("bad seed '{v}' in fault spec"))?;
                }
                Some(("read", v)) => plan.read = Some(parse_transient(v)?),
                Some(("write", v)) => plan.write = Some(parse_transient(v)?),
                Some(("stuck", v)) => {
                    let (addr, cpu) = v
                        .split_once('@')
                        .ok_or_else(|| format!("stuck item '{v}' must be ADDR@CPU"))?;
                    let address = parse_address(addr)?;
                    let cpu = cpu.parse().map_err(|_| format!("bad cpu '{cpu}' in stuck item"))?;
                    plan.stuck.push((cpu, address));
                }
                Some(("dead", v)) => {
                    let (cpu, budget) = v
                        .split_once('@')
                        .ok_or_else(|| format!("dead item '{v}' must be CPU@ACCESSES"))?;
                    let cpu = cpu.parse().map_err(|_| format!("bad cpu '{cpu}' in dead item"))?;
                    let budget = budget
                        .parse()
                        .map_err(|_| format!("bad access budget '{budget}' in dead item"))?;
                    plan.dead.push((cpu, budget));
                }
                Some((key, _)) => return Err(format!("unknown fault item '{key}'")),
            }
        }
        Ok(plan)
    }
}

fn parse_transient(text: &str) -> std::result::Result<TransientSpec, String> {
    let (prob, streak) = match text.split_once('x') {
        Some((p, k)) => {
            (p, k.parse().map_err(|_| format!("bad repeat bound '{k}' in fault spec"))?)
        }
        None => (text, 2),
    };
    let probability: f64 =
        prob.parse().map_err(|_| format!("bad probability '{prob}' in fault spec"))?;
    if !(0.0..1.0).contains(&probability) {
        return Err(format!("fault probability {probability} must be in [0, 1)"));
    }
    Ok(TransientSpec { probability, max_consecutive: streak.clamp(1, MAX_CONSECUTIVE_LIMIT) })
}

fn parse_address(text: &str) -> std::result::Result<u32, String> {
    let parsed = match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        Some(hex) => u32::from_str_radix(hex, 16),
        None => text.parse(),
    };
    parsed.map_err(|_| format!("bad register address '{text}' in fault spec"))
}

/// SplitMix64 finalizer: the one-way mixing step behind every decision.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic per-access coin: a uniform value in `[0, 1)` derived from
/// the seed and the access coordinates.
fn coin(seed: u64, cpu: usize, address: u32, write: bool, serial: u64) -> f64 {
    let mut h = mix(seed);
    h = mix(h ^ cpu as u64);
    h = mix(h ^ address as u64);
    h = mix(h ^ write as u64);
    h = mix(h ^ serial);
    // 53 high bits → an exactly representable double in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic garbage value for dirty register state.
pub(crate) fn dirty_value(seed: u64, address: u32, instance: usize) -> u64 {
    mix(mix(seed ^ 0xD1B7) ^ ((address as u64) << 20) ^ instance as u64)
}

#[derive(Debug, Default)]
struct Streak {
    serial: u64,
    consecutive: u32,
}

#[derive(Debug, Default)]
struct FaultCounters {
    transient: HashMap<(usize, u32, bool), Streak>,
    accesses: HashMap<usize, u64>,
}

/// A fault plan plus the mutable access history it needs at runtime.
/// Interior mutability (a mutex over plain counters) lets the read path of
/// [`crate::msr::MsrSpace`] stay `&self`.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    counters: Mutex<FaultCounters>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultState { plan, counters: Mutex::new(FaultCounters::default()) }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether device writes to `(cpu, address)` are silently dropped.
    pub(crate) fn is_stuck(&self, cpu: usize, address: u32) -> bool {
        self.plan.stuck.contains(&(cpu, address))
    }

    /// Account one device access and decide whether it faults.
    pub(crate) fn check(&self, cpu: usize, address: u32, write: bool) -> Result<()> {
        let mut counters = self.counters.lock().expect("fault counters poisoned");
        let accesses = counters.accesses.entry(cpu).or_insert(0);
        *accesses += 1;
        if let Some(&(_, budget)) = self.plan.dead.iter().find(|(c, _)| *c == cpu) {
            if *accesses > budget {
                return Err(MachineError::MsrIo { cpu, address, write });
            }
        }
        let spec = if write { self.plan.write } else { self.plan.read };
        if let Some(spec) = spec {
            let streak = counters.transient.entry((cpu, address, write)).or_default();
            streak.serial += 1;
            if streak.consecutive >= spec.max_consecutive.min(MAX_CONSECUTIVE_LIMIT) {
                streak.consecutive = 0;
            } else if coin(self.plan.seed, cpu, address, write, streak.serial) < spec.probability {
                streak.consecutive += 1;
                return Err(MachineError::MsrIo { cpu, address, write });
            } else {
                streak.consecutive = 0;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_syntax() {
        let plan =
            FaultPlan::parse("seed=7,read=0.3x4,write=0.2,dirty,stuck=0x186@0,dead=1@200").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.read, Some(TransientSpec { probability: 0.3, max_consecutive: 4 }));
        assert_eq!(plan.write, Some(TransientSpec { probability: 0.2, max_consecutive: 2 }));
        assert!(plan.dirty);
        assert_eq!(plan.stuck, vec![(0, 0x186)]);
        assert_eq!(plan.dead, vec![(1, 200)]);
        assert!(!plan.is_transient_only());
        assert!(FaultPlan::parse("read=0.5").unwrap().is_transient_only());
    }

    #[test]
    fn parse_rejects_malformed_items() {
        for bad in [
            "bogus",
            "read=2.0",
            "read=-0.1",
            "read=1.0",
            "read=0.5xzz",
            "seed=pi",
            "stuck=0x186",
            "stuck=zz@0",
            "dead=1",
            "dead=x@5",
            "wibble=3",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "'{bad}' must be rejected");
        }
    }

    #[test]
    fn repeat_bounds_are_clamped() {
        let plan = FaultPlan::parse("read=0.9x40").unwrap();
        assert_eq!(plan.read.unwrap().max_consecutive, MAX_CONSECUTIVE_LIMIT);
        let plan = FaultPlan::parse("read=0.9x0").unwrap();
        assert_eq!(plan.read.unwrap().max_consecutive, 1);
    }

    #[test]
    fn transient_streaks_are_bounded() {
        // Even at probability 0.999 the streak bound forces a success within
        // max_consecutive + 1 attempts on the same register.
        let plan = FaultPlan {
            seed: 42,
            read: Some(TransientSpec { probability: 0.999, max_consecutive: 3 }),
            ..FaultPlan::default()
        };
        let state = FaultState::new(plan);
        let mut longest = 0u32;
        let mut current = 0u32;
        for _ in 0..1000 {
            if state.check(0, 0xC1, false).is_err() {
                current += 1;
                longest = longest.max(current);
            } else {
                current = 0;
            }
        }
        assert!(longest <= 3, "streak of {longest} exceeds the bound");
        assert!(longest > 0, "probability 0.999 must fault at least once");
    }

    #[test]
    fn decisions_replay_identically_for_one_seed() {
        let plan = FaultPlan {
            seed: 9,
            read: Some(TransientSpec { probability: 0.4, max_consecutive: 2 }),
            ..FaultPlan::default()
        };
        let run = |plan: FaultPlan| {
            let state = FaultState::new(plan);
            (0..200).map(|i| state.check(i % 4, 0x186, false).is_err()).collect::<Vec<_>>()
        };
        assert_eq!(run(plan.clone()), run(plan.clone()));
        let other = FaultPlan { seed: 10, ..plan.clone() };
        assert_ne!(run(other), run(plan), "different seeds differ");
    }

    #[test]
    fn dead_cpu_fails_only_after_its_access_budget() {
        let plan = FaultPlan { dead: vec![(2, 5)], ..FaultPlan::default() };
        let state = FaultState::new(plan);
        for _ in 0..5 {
            assert!(state.check(2, 0xC1, false).is_ok());
        }
        assert!(matches!(state.check(2, 0xC1, false), Err(MachineError::MsrIo { cpu: 2, .. })));
        // Other cpus keep their own budgets.
        assert!(state.check(0, 0xC1, false).is_ok());
    }
}

//! Switchable processor features controlled through `IA32_MISC_ENABLE`.
//!
//! `likwid-features` reports the state of the feature and prefetcher bits of
//! the `IA32_MISC_ENABLE` MSR and can toggle the four prefetchers on Core 2
//! class hardware (hardware/stream prefetcher, adjacent-cache-line
//! prefetcher, DCU prefetcher, IP prefetcher). The bit positions follow the
//! Intel SDM; note that for the prefetchers a *set* bit means the unit is
//! **disabled**.

/// Bit definitions inside `IA32_MISC_ENABLE`.
pub struct MiscEnable;

impl MiscEnable {
    /// Fast-strings enable (bit 0, enabled when set).
    pub const FAST_STRINGS: u64 = 1 << 0;
    /// Automatic thermal control circuit enable (bit 3).
    pub const AUTO_THERMAL_CONTROL: u64 = 1 << 3;
    /// Performance monitoring available (bit 7, read-only informational).
    pub const PERFMON_AVAILABLE: u64 = 1 << 7;
    /// Hardware (stream) prefetcher **disable** (bit 9).
    pub const HW_PREFETCHER_DISABLE: u64 = 1 << 9;
    /// Branch trace storage unavailable (bit 11; clear means supported).
    pub const BTS_UNAVAILABLE: u64 = 1 << 11;
    /// Precise event based sampling unavailable (bit 12; clear means supported).
    pub const PEBS_UNAVAILABLE: u64 = 1 << 12;
    /// Enhanced Intel SpeedStep enable (bit 16).
    pub const ENHANCED_SPEEDSTEP: u64 = 1 << 16;
    /// MONITOR/MWAIT enable (bit 18).
    pub const MONITOR_MWAIT: u64 = 1 << 18;
    /// Adjacent cache line prefetcher **disable** (bit 19).
    pub const CL_PREFETCHER_DISABLE: u64 = 1 << 19;
    /// Limit CPUID max value (bit 22).
    pub const LIMIT_CPUID_MAXVAL: u64 = 1 << 22;
    /// XD (execute disable) bit **disable** (bit 34).
    pub const XD_BIT_DISABLE: u64 = 1 << 34;
    /// DCU (L1 streaming) prefetcher **disable** (bit 37).
    pub const DCU_PREFETCHER_DISABLE: u64 = 1 << 37;
    /// Intel Dynamic Acceleration / turbo **disable** (bit 38).
    pub const IDA_DISABLE: u64 = 1 << 38;
    /// IP (instruction-pointer strided) prefetcher **disable** (bit 39).
    pub const IP_PREFETCHER_DISABLE: u64 = 1 << 39;

    /// Power-on value used by the machine presets: fast strings, thermal
    /// control, perfmon, SpeedStep and MONITOR/MWAIT enabled, all four
    /// prefetchers enabled (their disable bits clear), BTS/PEBS supported
    /// (their "unavailable" bits clear), IDA disabled (bit set — matching the
    /// likwid-features listing in the paper).
    pub const RESET_VALUE: u64 = Self::FAST_STRINGS
        | Self::AUTO_THERMAL_CONTROL
        | Self::PERFMON_AVAILABLE
        | Self::ENHANCED_SPEEDSTEP
        | Self::MONITOR_MWAIT
        | Self::IDA_DISABLE;
}

/// The four hardware prefetchers likwid-features can toggle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Prefetcher {
    /// L2 hardware (stream) prefetcher fetching from memory into L2.
    Hardware,
    /// Adjacent cache line prefetcher (fetches the buddy line, completing a
    /// 128-byte aligned pair).
    AdjacentLine,
    /// DCU prefetcher: streams successive lines into L1D.
    Dcu,
    /// IP-based strided prefetcher in L1D.
    Ip,
}

impl Prefetcher {
    /// The disable bit controlling this prefetcher.
    pub fn disable_bit(self) -> u64 {
        match self {
            Prefetcher::Hardware => MiscEnable::HW_PREFETCHER_DISABLE,
            Prefetcher::AdjacentLine => MiscEnable::CL_PREFETCHER_DISABLE,
            Prefetcher::Dcu => MiscEnable::DCU_PREFETCHER_DISABLE,
            Prefetcher::Ip => MiscEnable::IP_PREFETCHER_DISABLE,
        }
    }

    /// Command-line name used by `likwid-features` (`-u CL_PREFETCHER`, …).
    pub fn cli_name(self) -> &'static str {
        match self {
            Prefetcher::Hardware => "HW_PREFETCHER",
            Prefetcher::AdjacentLine => "CL_PREFETCHER",
            Prefetcher::Dcu => "DCU_PREFETCHER",
            Prefetcher::Ip => "IP_PREFETCHER",
        }
    }

    /// Parse a command-line name.
    pub fn from_cli_name(name: &str) -> Option<Self> {
        match name {
            "HW_PREFETCHER" => Some(Prefetcher::Hardware),
            "CL_PREFETCHER" => Some(Prefetcher::AdjacentLine),
            "DCU_PREFETCHER" => Some(Prefetcher::Dcu),
            "IP_PREFETCHER" => Some(Prefetcher::Ip),
            _ => None,
        }
    }

    /// Human-readable name as listed by `likwid-features`.
    pub fn display_name(self) -> &'static str {
        match self {
            Prefetcher::Hardware => "Hardware Prefetcher",
            Prefetcher::AdjacentLine => "Adjacent Cache Line Prefetch",
            Prefetcher::Dcu => "DCU Prefetcher",
            Prefetcher::Ip => "IP Prefetcher",
        }
    }

    /// All prefetchers.
    pub fn all() -> &'static [Prefetcher] {
        &[Prefetcher::Hardware, Prefetcher::AdjacentLine, Prefetcher::Dcu, Prefetcher::Ip]
    }

    /// Whether this prefetcher is enabled given an `IA32_MISC_ENABLE` value.
    pub fn is_enabled(self, misc_enable: u64) -> bool {
        misc_enable & self.disable_bit() == 0
    }
}

/// State of a switchable feature as reported by `likwid-features`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FeatureState {
    /// Feature is switched on.
    Enabled,
    /// Feature is switched off.
    Disabled,
    /// Feature is present but not switchable (reported as "supported").
    Supported,
    /// Feature is absent.
    NotSupported,
}

impl FeatureState {
    /// Text used in the tool output.
    pub fn display(self) -> &'static str {
        match self {
            FeatureState::Enabled => "enabled",
            FeatureState::Disabled => "disabled",
            FeatureState::Supported => "supported",
            FeatureState::NotSupported => "not supported",
        }
    }
}

/// The full list of features `likwid-features` reports, in output order
/// (matching the Core 2 listing in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CpuFeature {
    /// REP MOVS/STOS fast-string operation.
    FastStrings,
    /// Automatic thermal control circuit.
    AutomaticThermalControl,
    /// Performance monitoring facilities.
    PerformanceMonitoring,
    /// L2 hardware prefetcher.
    HardwarePrefetcher,
    /// Branch trace storage.
    BranchTraceStorage,
    /// Precise event based sampling.
    Pebs,
    /// Enhanced Intel SpeedStep.
    EnhancedSpeedStep,
    /// MONITOR/MWAIT instructions.
    MonitorMwait,
    /// Adjacent cache line prefetcher.
    AdjacentCacheLinePrefetch,
    /// Limit CPUID maximum leaf.
    LimitCpuidMaxval,
    /// Execute-disable bit.
    XdBitDisable,
    /// DCU prefetcher.
    DcuPrefetcher,
    /// Intel Dynamic Acceleration (turbo).
    IntelDynamicAcceleration,
    /// IP prefetcher.
    IpPrefetcher,
}

impl CpuFeature {
    /// All reportable features in the output order of `likwid-features`.
    pub fn all() -> &'static [CpuFeature] {
        &[
            CpuFeature::FastStrings,
            CpuFeature::AutomaticThermalControl,
            CpuFeature::PerformanceMonitoring,
            CpuFeature::HardwarePrefetcher,
            CpuFeature::BranchTraceStorage,
            CpuFeature::Pebs,
            CpuFeature::EnhancedSpeedStep,
            CpuFeature::MonitorMwait,
            CpuFeature::AdjacentCacheLinePrefetch,
            CpuFeature::LimitCpuidMaxval,
            CpuFeature::XdBitDisable,
            CpuFeature::DcuPrefetcher,
            CpuFeature::IntelDynamicAcceleration,
            CpuFeature::IpPrefetcher,
        ]
    }

    /// Display name matching the paper's listing.
    pub fn display_name(self) -> &'static str {
        match self {
            CpuFeature::FastStrings => "Fast-Strings",
            CpuFeature::AutomaticThermalControl => "Automatic Thermal Control",
            CpuFeature::PerformanceMonitoring => "Performance monitoring",
            CpuFeature::HardwarePrefetcher => "Hardware Prefetcher",
            CpuFeature::BranchTraceStorage => "Branch Trace Storage",
            CpuFeature::Pebs => "PEBS",
            CpuFeature::EnhancedSpeedStep => "Intel Enhanced SpeedStep",
            CpuFeature::MonitorMwait => "MONITOR/MWAIT",
            CpuFeature::AdjacentCacheLinePrefetch => "Adjacent Cache Line Prefetch",
            CpuFeature::LimitCpuidMaxval => "Limit CPUID Maxval",
            CpuFeature::XdBitDisable => "XD Bit Disable",
            CpuFeature::DcuPrefetcher => "DCU Prefetcher",
            CpuFeature::IntelDynamicAcceleration => "Intel Dynamic Acceleration",
            CpuFeature::IpPrefetcher => "IP Prefetcher",
        }
    }

    /// Derive the reported state from an `IA32_MISC_ENABLE` value.
    pub fn state_from_misc_enable(self, misc: u64) -> FeatureState {
        use FeatureState::*;
        let enabled_if_set = |bit: u64| if misc & bit != 0 { Enabled } else { Disabled };
        let enabled_if_clear = |bit: u64| if misc & bit == 0 { Enabled } else { Disabled };
        let supported_if_clear = |bit: u64| if misc & bit == 0 { Supported } else { NotSupported };
        match self {
            CpuFeature::FastStrings => enabled_if_set(MiscEnable::FAST_STRINGS),
            CpuFeature::AutomaticThermalControl => enabled_if_set(MiscEnable::AUTO_THERMAL_CONTROL),
            CpuFeature::PerformanceMonitoring => enabled_if_set(MiscEnable::PERFMON_AVAILABLE),
            CpuFeature::HardwarePrefetcher => enabled_if_clear(MiscEnable::HW_PREFETCHER_DISABLE),
            CpuFeature::BranchTraceStorage => supported_if_clear(MiscEnable::BTS_UNAVAILABLE),
            CpuFeature::Pebs => supported_if_clear(MiscEnable::PEBS_UNAVAILABLE),
            CpuFeature::EnhancedSpeedStep => enabled_if_set(MiscEnable::ENHANCED_SPEEDSTEP),
            CpuFeature::MonitorMwait => {
                if misc & MiscEnable::MONITOR_MWAIT != 0 {
                    Supported
                } else {
                    NotSupported
                }
            }
            CpuFeature::AdjacentCacheLinePrefetch => {
                enabled_if_clear(MiscEnable::CL_PREFETCHER_DISABLE)
            }
            CpuFeature::LimitCpuidMaxval => enabled_if_set(MiscEnable::LIMIT_CPUID_MAXVAL),
            CpuFeature::XdBitDisable => {
                if misc & MiscEnable::XD_BIT_DISABLE != 0 {
                    Enabled
                } else {
                    Disabled
                }
            }
            CpuFeature::DcuPrefetcher => enabled_if_clear(MiscEnable::DCU_PREFETCHER_DISABLE),
            CpuFeature::IntelDynamicAcceleration => enabled_if_clear(MiscEnable::IDA_DISABLE),
            CpuFeature::IpPrefetcher => enabled_if_clear(MiscEnable::IP_PREFETCHER_DISABLE),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_value_enables_all_prefetchers() {
        for &p in Prefetcher::all() {
            assert!(p.is_enabled(MiscEnable::RESET_VALUE), "{p:?} should be enabled after reset");
        }
    }

    #[test]
    fn disabling_a_prefetcher_sets_only_its_bit() {
        let v = MiscEnable::RESET_VALUE | Prefetcher::AdjacentLine.disable_bit();
        assert!(!Prefetcher::AdjacentLine.is_enabled(v));
        assert!(Prefetcher::Hardware.is_enabled(v));
        assert!(Prefetcher::Dcu.is_enabled(v));
        assert!(Prefetcher::Ip.is_enabled(v));
    }

    #[test]
    fn cli_names_round_trip() {
        for &p in Prefetcher::all() {
            assert_eq!(Prefetcher::from_cli_name(p.cli_name()), Some(p));
        }
        assert_eq!(Prefetcher::from_cli_name("NOT_A_PREFETCHER"), None);
    }

    #[test]
    fn reset_state_matches_the_paper_listing() {
        // The paper's likwid-features output on Core 2: Fast-Strings enabled,
        // prefetchers enabled, BTS/PEBS supported, SpeedStep enabled,
        // Intel Dynamic Acceleration disabled.
        let misc = MiscEnable::RESET_VALUE;
        assert_eq!(CpuFeature::FastStrings.state_from_misc_enable(misc), FeatureState::Enabled);
        assert_eq!(
            CpuFeature::HardwarePrefetcher.state_from_misc_enable(misc),
            FeatureState::Enabled
        );
        assert_eq!(
            CpuFeature::BranchTraceStorage.state_from_misc_enable(misc),
            FeatureState::Supported
        );
        assert_eq!(CpuFeature::Pebs.state_from_misc_enable(misc), FeatureState::Supported);
        assert_eq!(
            CpuFeature::IntelDynamicAcceleration.state_from_misc_enable(misc),
            FeatureState::Disabled
        );
        assert_eq!(CpuFeature::MonitorMwait.state_from_misc_enable(misc), FeatureState::Supported);
    }

    #[test]
    fn feature_list_has_the_paper_order_and_length() {
        let all = CpuFeature::all();
        assert_eq!(all.len(), 14);
        assert_eq!(all[0], CpuFeature::FastStrings);
        assert_eq!(all[13], CpuFeature::IpPrefetcher);
    }

    #[test]
    fn display_strings_are_stable() {
        assert_eq!(FeatureState::Enabled.display(), "enabled");
        assert_eq!(FeatureState::NotSupported.display(), "not supported");
        assert_eq!(Prefetcher::AdjacentLine.display_name(), "Adjacent Cache Line Prefetch");
    }
}

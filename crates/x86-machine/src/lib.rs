//! Simulated x86 multicore machine substrate.
//!
//! The LIKWID tool suite talks to the hardware through exactly three
//! interfaces: the `cpuid` instruction, the model-specific registers exposed
//! by the Linux `msr` module, and the operating system's notion of hardware
//! threads. This crate provides a faithful software model of those
//! interfaces for a family of machine presets (Intel Core 2, Nehalem EP,
//! Westmere EP, Atom, Pentium M and AMD K8/K10), so that the tools in the
//! `likwid` crate can be developed, tested and benchmarked without root
//! access or specific silicon.
//!
//! The central type is [`SimMachine`]: a node-level model holding the thread
//! and cache topology, one MSR register file per hardware thread, and the
//! per-package feature state (`IA32_MISC_ENABLE`, prefetcher switches, …).
//! [`SimMachine::cpuid`] returns bit-exact register images for the leaves the
//! real tool decodes, and [`SimMachine::msr`] hands out `/dev/cpu/*/msr`-like
//! device handles.

pub mod apic;
pub mod cache;
pub mod clock;
pub mod cpuid;
pub mod error;
pub mod fault;
pub mod features;
pub mod machine;
pub mod msr;
pub mod presets;
pub mod topology;
pub mod vendor;

pub use cache::{CacheKind, CacheSpec};
pub use clock::ClockDomain;
pub use cpuid::{CpuidLeaf, CpuidResult};
pub use error::{MachineError, Result};
pub use fault::{FaultPlan, TransientSpec, MAX_CONSECUTIVE_LIMIT};
pub use features::{CpuFeature, FeatureState, MiscEnable, Prefetcher};
pub use machine::SimMachine;
pub use msr::{Msr, MsrDevice, MsrFile, MsrPermission};
pub use presets::MachinePreset;
pub use topology::{HwThread, HwThreadId, NumaNode, TopologySpec};
pub use vendor::{Microarch, Vendor};

//! The node-level machine model tying topology, cpuid, MSRs and clock together.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::cache::CacheSpec;
use crate::clock::ClockDomain;
use crate::cpuid::{CpuidResult, CpuidSource};
use crate::error::Result;
use crate::fault::FaultPlan;
use crate::features::Prefetcher;
use crate::msr::{Msr, MsrDevice, MsrFile, MsrPermission, MsrSpace};
use crate::presets::{MachinePreset, MemorySystemSpec};
use crate::topology::TopologySpec;
use crate::vendor::{Microarch, Vendor};

/// A simulated shared-memory node.
///
/// `SimMachine` is the single object the rest of the suite talks to. It
/// exposes the same three interfaces the real LIKWID uses on hardware:
///
/// * [`SimMachine::cpuid`] — the `cpuid` instruction, evaluated in the
///   context of a given hardware thread;
/// * [`SimMachine::msr`] — an open `/dev/cpu/<N>/msr`-style device handle
///   with a read-only or read-write permission;
/// * [`SimMachine::topology`] — the ground-truth topology, which tests use
///   to check that the cpuid-decoding path reconstructs it correctly (the
///   tools themselves never look at it).
///
/// The machine is cheap to clone-by-reference (`Arc` internally shared MSR
/// space) and is `Send + Sync`, so the workload execution engine can drive
/// it from multiple worker threads.
pub struct SimMachine {
    preset: MachinePreset,
    arch: Microarch,
    topology: TopologySpec,
    caches: Vec<CacheSpec>,
    clock: ClockDomain,
    memory: MemorySystemSpec,
    msr_space: Arc<RwLock<MsrSpace>>,
}

impl SimMachine {
    /// Instantiate a machine from a preset.
    pub fn new(preset: MachinePreset) -> Self {
        let arch = preset.arch();
        let topology = preset.topology();
        let caches = preset.caches();
        let clock = preset.clock();
        let memory = preset.memory_system();
        let msr_space = Arc::new(RwLock::new(MsrSpace::new(arch, &topology)));

        let machine = SimMachine { preset, arch, topology, caches, clock, memory, msr_space };
        machine.initialize_platform_info();
        machine
    }

    /// Store the clock multiplier in `MSR_PLATFORM_INFO` for Nehalem-class
    /// parts (the real tool reads the nominal clock from there).
    fn initialize_platform_info(&self) {
        if matches!(self.arch, Microarch::NehalemEp | Microarch::WestmereEp) {
            let ratio = self.clock.platform_info_ratio();
            // The register is read-only through the device interface, so use
            // the internal (hardware-side) increment path to set it.
            let _ =
                self.msr_space.write().hardware_increment(0, Msr::MSR_PLATFORM_INFO, ratio << 8);
            // Mirror to the second package if present.
            if self.topology.sockets > 1 {
                let other_socket_cpu = self
                    .topology
                    .hw_threads
                    .iter()
                    .find(|t| t.socket == 1)
                    .map(|t| t.os_id)
                    .unwrap_or(0);
                let _ = self.msr_space.write().hardware_increment(
                    other_socket_cpu,
                    Msr::MSR_PLATFORM_INFO,
                    ratio << 8,
                );
            }
        }
    }

    /// The preset this machine was built from.
    pub fn preset(&self) -> MachinePreset {
        self.preset
    }

    /// Microarchitecture.
    pub fn arch(&self) -> Microarch {
        self.arch
    }

    /// Vendor.
    pub fn vendor(&self) -> Vendor {
        self.arch.vendor()
    }

    /// Ground-truth topology.
    pub fn topology(&self) -> &TopologySpec {
        &self.topology
    }

    /// Static cache hierarchy.
    pub fn caches(&self) -> &[CacheSpec] {
        &self.caches
    }

    /// Nominal clock.
    pub fn clock(&self) -> ClockDomain {
        self.clock
    }

    /// Memory-system parameters (bandwidths, latency, NUMA capacity).
    pub fn memory_system(&self) -> MemorySystemSpec {
        self.memory
    }

    /// Number of hardware threads.
    pub fn num_hw_threads(&self) -> usize {
        self.topology.num_hw_threads()
    }

    /// Execute `cpuid` on hardware thread `cpu`.
    pub fn cpuid(&self, cpu: usize, leaf: u32, subleaf: u32) -> Result<CpuidResult> {
        let source = CpuidSource {
            arch: self.arch,
            topology: &self.topology,
            caches: &self.caches,
            clock: self.clock,
            brand: self.preset.brand(),
        };
        source.query(cpu, leaf, subleaf)
    }

    /// Open the MSR device of hardware thread `cpu`.
    pub fn msr(&self, cpu: usize, permission: MsrPermission) -> Result<MsrDevice> {
        // Validate the cpu index up front, like open(2) on a missing device file.
        self.topology.hw_thread(cpu)?;
        Ok(MsrDevice::new(cpu, permission, Arc::clone(&self.msr_space)))
    }

    /// Internal register file used by the counting engine and the clock.
    pub fn msr_file(&self) -> MsrFile {
        MsrFile::new(Arc::clone(&self.msr_space))
    }

    /// Attach a fault scenario to the MSR device interface. Dirty state is
    /// scribbled immediately; transient/stuck/dead behaviour applies to all
    /// subsequent device accesses. The machine-internal [`MsrFile`] path is
    /// never affected.
    pub fn inject_faults(&self, plan: FaultPlan) {
        self.msr_space.write().attach_faults(plan);
    }

    /// The fault plan attached to this machine, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.msr_space.read().fault_plan().cloned()
    }

    /// Whether a prefetcher is currently enabled on the core owning `cpu`
    /// (reads `IA32_MISC_ENABLE`; AMD parts have no switchable prefetcher
    /// bits in this model and always report enabled).
    pub fn prefetcher_enabled(&self, cpu: usize, prefetcher: Prefetcher) -> Result<bool> {
        if self.vendor() == Vendor::Amd {
            return Ok(true);
        }
        let value = self.msr_file().read(cpu, Msr::IA32_MISC_ENABLE)?;
        Ok(prefetcher.is_enabled(value))
    }

    /// Human readable one-line description ("CPU name: …", "CPU clock: …").
    pub fn header(&self) -> String {
        format!(
            "CPU name: {}\nCPU type: {}\nCPU clock: {}",
            self.preset.brand(),
            self.arch.display_name(),
            self.clock.display()
        )
    }
}

impl std::fmt::Debug for SimMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimMachine")
            .field("preset", &self.preset)
            .field("arch", &self.arch)
            .field("hw_threads", &self.topology.num_hw_threads())
            .field("clock_ghz", &self.clock.ghz())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpuid::{decode_brand_string, decode_vendor_string};

    #[test]
    fn machine_exposes_consistent_views() {
        let m = SimMachine::new(MachinePreset::WestmereEp2S);
        assert_eq!(m.num_hw_threads(), 24);
        assert_eq!(m.caches().len(), 3);
        assert_eq!(m.vendor(), Vendor::Intel);
        assert!(m.header().contains("2.93 GHz"));
    }

    #[test]
    fn cpuid_vendor_and_brand_match_the_preset() {
        let m = SimMachine::new(MachinePreset::IstanbulH2S);
        let leaf0 = m.cpuid(0, 0, 0).unwrap();
        assert_eq!(decode_vendor_string(leaf0), "AuthenticAMD");
        let brand = decode_brand_string([
            m.cpuid(0, 0x8000_0002, 0).unwrap(),
            m.cpuid(0, 0x8000_0003, 0).unwrap(),
            m.cpuid(0, 0x8000_0004, 0).unwrap(),
        ]);
        assert!(brand.contains("Opteron"));
    }

    #[test]
    fn msr_device_permission_model() {
        let m = SimMachine::new(MachinePreset::NehalemEp2S);
        let ro = m.msr(0, MsrPermission::ReadOnly).unwrap();
        assert!(ro.write(Msr::IA32_PMC0, 1).is_err());
        let rw = m.msr(0, MsrPermission::ReadWrite).unwrap();
        rw.write(Msr::IA32_PMC0, 99).unwrap();
        assert_eq!(ro.read(Msr::IA32_PMC0).unwrap(), 99);
        assert!(m.msr(100, MsrPermission::ReadOnly).is_err());
    }

    #[test]
    fn platform_info_encodes_the_clock_ratio() {
        let m = SimMachine::new(MachinePreset::WestmereEp2S);
        let dev = m.msr(0, MsrPermission::ReadOnly).unwrap();
        let info = dev.read(Msr::MSR_PLATFORM_INFO).unwrap();
        let ratio = (info >> 8) & 0xFF;
        assert_eq!(ratio, 22);
        // Both sockets see a ratio.
        let dev_s1 = m.msr(6, MsrPermission::ReadOnly).unwrap();
        assert_eq!((dev_s1.read(Msr::MSR_PLATFORM_INFO).unwrap() >> 8) & 0xFF, 22);
    }

    #[test]
    fn prefetchers_default_to_enabled_and_can_be_disabled() {
        let m = SimMachine::new(MachinePreset::Core2Duo);
        assert!(m.prefetcher_enabled(0, Prefetcher::AdjacentLine).unwrap());
        let dev = m.msr(0, MsrPermission::ReadWrite).unwrap();
        dev.update(Msr::IA32_MISC_ENABLE, Prefetcher::AdjacentLine.disable_bit(), 0).unwrap();
        assert!(!m.prefetcher_enabled(0, Prefetcher::AdjacentLine).unwrap());
        // AMD machines report prefetchers as always enabled.
        let amd = SimMachine::new(MachinePreset::IstanbulH2S);
        assert!(amd.prefetcher_enabled(0, Prefetcher::Hardware).unwrap());
    }

    #[test]
    fn all_presets_instantiate() {
        for &p in MachinePreset::all() {
            let m = SimMachine::new(p);
            assert!(m.num_hw_threads() >= 1);
            assert!(m.cpuid(0, 0, 0).is_ok());
            assert!(m.cpuid(0, 1, 0).is_ok());
        }
    }
}

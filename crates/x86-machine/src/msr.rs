//! Model-specific register (MSR) file and device interface.
//!
//! `likwid-perfctr` and `likwid-features` control the hardware exclusively by
//! reading and writing MSRs through the Linux `msr` kernel module, i.e. by
//! `pread`/`pwrite` on `/dev/cpu/<N>/msr` at the register address. This
//! module reproduces that interface: every hardware thread owns a register
//! file whose known registers, scopes (thread / core / package), writability,
//! reserved-bit masks and bit widths follow the Intel SDM and AMD BKDG
//! layouts for the supported microarchitectures.
//!
//! Registers with core or package scope are physically shared: a write
//! through any sibling hardware thread is visible to all threads of that
//! core/package, exactly as on real hardware. This matters for the uncore
//! counters (package scope) that `likwid-perfctr` guards with socket locks,
//! and for the prefetcher bits in `IA32_MISC_ENABLE` (core scope) that
//! `likwid-features` toggles.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{MachineError, Result};
use crate::fault::{dirty_value, FaultPlan, FaultState};
use crate::topology::TopologySpec;
use crate::vendor::Microarch;

/// Well-known MSR addresses used by the tool suite.
#[allow(non_snake_case)]
pub mod Msr {
    //! MSR address constants (Intel SDM / AMD BKDG names).

    /// Time-stamp counter.
    pub const IA32_TIME_STAMP_COUNTER: u32 = 0x10;
    /// Platform info (Nehalem+): bits 15:8 hold the maximum non-turbo ratio.
    pub const MSR_PLATFORM_INFO: u32 = 0xCE;
    /// Miscellaneous feature control (prefetchers, SpeedStep, …).
    pub const IA32_MISC_ENABLE: u32 = 0x1A0;

    /// First general-purpose counter (Intel). PMC1..3 follow consecutively.
    pub const IA32_PMC0: u32 = 0xC1;
    /// First performance event select register (Intel).
    pub const IA32_PERFEVTSEL0: u32 = 0x186;
    /// First fixed-function counter (INSTR_RETIRED_ANY).
    pub const IA32_FIXED_CTR0: u32 = 0x309;
    /// Fixed counter 1 (CPU_CLK_UNHALTED_CORE).
    pub const IA32_FIXED_CTR1: u32 = 0x30A;
    /// Fixed counter 2 (CPU_CLK_UNHALTED_REF).
    pub const IA32_FIXED_CTR2: u32 = 0x30B;
    /// Fixed counter control register.
    pub const IA32_FIXED_CTR_CTRL: u32 = 0x38D;
    /// Global status register.
    pub const IA32_PERF_GLOBAL_STATUS: u32 = 0x38E;
    /// Global enable register.
    pub const IA32_PERF_GLOBAL_CTRL: u32 = 0x38F;
    /// Global overflow control register.
    pub const IA32_PERF_GLOBAL_OVF_CTRL: u32 = 0x390;

    /// Nehalem/Westmere uncore global control.
    pub const MSR_UNCORE_PERF_GLOBAL_CTRL: u32 = 0x391;
    /// Nehalem/Westmere uncore global status.
    pub const MSR_UNCORE_PERF_GLOBAL_STATUS: u32 = 0x392;
    /// Nehalem/Westmere uncore overflow control.
    pub const MSR_UNCORE_PERF_GLOBAL_OVF_CTRL: u32 = 0x393;
    /// Uncore fixed counter (uncore clock ticks).
    pub const MSR_UNCORE_FIXED_CTR0: u32 = 0x394;
    /// Uncore fixed counter control.
    pub const MSR_UNCORE_FIXED_CTR_CTRL: u32 = 0x395;
    /// First uncore general-purpose counter; seven more follow consecutively.
    pub const MSR_UNCORE_PMC0: u32 = 0x3B0;
    /// First uncore event select; seven more follow consecutively.
    pub const MSR_UNCORE_PERFEVTSEL0: u32 = 0x3C0;

    /// AMD K8/K10 first event select register; three more follow.
    pub const AMD_PERFEVTSEL0: u32 = 0xC001_0000;
    /// AMD K8/K10 first counter; three more follow.
    pub const AMD_PMC0: u32 = 0xC001_0004;
}

/// Scope of an MSR: which hardware threads observe the same physical register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsrScope {
    /// One instance per hardware thread.
    Thread,
    /// One instance per physical core, shared by its SMT threads.
    Core,
    /// One instance per package (socket) — the "uncore".
    Package,
}

/// Access permission of an opened MSR device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsrPermission {
    /// Device opened read-only (no root): `wrmsr` fails with EACCES.
    ReadOnly,
    /// Device opened read-write.
    ReadWrite,
}

/// Static description of one known MSR.
#[derive(Debug, Clone)]
pub struct MsrDescriptor {
    /// Register address.
    pub address: u32,
    /// Sharing scope.
    pub scope: MsrScope,
    /// Whether `wrmsr` is allowed at all.
    pub writable: bool,
    /// Bits that must be written as zero; writes violating this fail, which
    /// catches programming errors in counter setup code.
    pub reserved_mask: u64,
    /// Number of implemented bits (counters are 40 or 48 bits wide; writes
    /// and reads are masked to this width).
    pub width: u32,
    /// Value after reset / machine construction.
    pub reset_value: u64,
}

impl MsrDescriptor {
    fn value_mask(&self) -> u64 {
        if self.width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }
}

/// The machine-wide MSR state: descriptors plus storage per scope instance.
#[derive(Debug)]
pub struct MsrSpace {
    descriptors: HashMap<u32, MsrDescriptor>,
    /// Storage: for each MSR address, a vector indexed by the scope-instance
    /// number (thread index, global core index, or socket index).
    values: HashMap<u32, Vec<u64>>,
    /// Full-64-bit shadow of every register: counters wrap at their
    /// architectural width in `values`, while the shadow accumulates the
    /// true total — the wide-counter reference that overflow-correction
    /// tests and multi-wrap diagnostics compare against.
    wide: HashMap<u32, Vec<u64>>,
    /// For mapping hardware threads to scope instances.
    thread_core: Vec<usize>,
    thread_socket: Vec<usize>,
    num_threads: usize,
    /// Active fault scenario for device-mediated accesses, if any.
    faults: Option<FaultState>,
}

impl MsrSpace {
    /// Build the MSR space for a microarchitecture and topology.
    pub fn new(arch: Microarch, topo: &TopologySpec) -> Self {
        let thread_core: Vec<usize> = topo
            .hw_threads
            .iter()
            .map(|t| (t.socket * topo.cores_per_socket + t.core_index) as usize)
            .collect();
        let thread_socket: Vec<usize> = topo.hw_threads.iter().map(|t| t.socket as usize).collect();
        let num_threads = topo.num_hw_threads();
        let num_cores = topo.num_cores();
        let num_sockets = topo.sockets as usize;

        let mut space = MsrSpace {
            descriptors: HashMap::new(),
            values: HashMap::new(),
            wide: HashMap::new(),
            thread_core,
            thread_socket,
            num_threads,
            faults: None,
        };
        for desc in register_map(arch) {
            let instances = match desc.scope {
                MsrScope::Thread => num_threads,
                MsrScope::Core => num_cores,
                MsrScope::Package => num_sockets,
            };
            space.values.insert(desc.address, vec![desc.reset_value; instances]);
            space.wide.insert(desc.address, vec![desc.reset_value; instances]);
            space.descriptors.insert(desc.address, desc);
        }
        space
    }

    fn instance(&self, desc: &MsrDescriptor, cpu: usize) -> usize {
        match desc.scope {
            MsrScope::Thread => cpu,
            MsrScope::Core => self.thread_core[cpu],
            MsrScope::Package => self.thread_socket[cpu],
        }
    }

    /// Read an MSR as seen from hardware thread `cpu`.
    pub fn read(&self, cpu: usize, address: u32) -> Result<u64> {
        if cpu >= self.num_threads {
            return Err(MachineError::NoSuchCpu { cpu, available: self.num_threads });
        }
        let desc =
            self.descriptors.get(&address).ok_or(MachineError::UnknownMsr { cpu, address })?;
        let idx = self.instance(desc, cpu);
        Ok(self.values[&address][idx] & desc.value_mask())
    }

    /// Write an MSR as seen from hardware thread `cpu`.
    pub fn write(&mut self, cpu: usize, address: u32, value: u64) -> Result<()> {
        if cpu >= self.num_threads {
            return Err(MachineError::NoSuchCpu { cpu, available: self.num_threads });
        }
        let desc =
            self.descriptors.get(&address).ok_or(MachineError::UnknownMsr { cpu, address })?;
        if !desc.writable {
            return Err(MachineError::ReadOnlyMsr { cpu, address });
        }
        if value & desc.reserved_mask != 0 {
            return Err(MachineError::ReservedBits {
                cpu,
                address,
                value,
                reserved_mask: desc.reserved_mask,
            });
        }
        let mask = desc.value_mask();
        let idx = self.instance(desc, cpu);
        if let Some(slot) = self.values.get_mut(&address).and_then(|v| v.get_mut(idx)) {
            *slot = value & mask;
        }
        if let Some(slot) = self.wide.get_mut(&address).and_then(|v| v.get_mut(idx)) {
            *slot = value & mask;
        }
        Ok(())
    }

    /// Device-mediated read (`rdmsr` through `/dev/cpu/<N>/msr`): subject to
    /// the attached fault plan, unlike the machine-internal
    /// [`MsrSpace::read`] path used by the counting engine and the clock.
    pub fn device_read(&self, cpu: usize, address: u32) -> Result<u64> {
        if let Some(faults) = &self.faults {
            faults.check(cpu, address, false)?;
        }
        self.read(cpu, address)
    }

    /// Device-mediated write: subject to the attached fault plan. Writes to
    /// a stuck register are accepted but silently lost, exactly the failure
    /// mode verify-after-write programming exists to catch.
    pub fn device_write(&mut self, cpu: usize, address: u32, value: u64) -> Result<()> {
        if let Some(faults) = &self.faults {
            faults.check(cpu, address, true)?;
            if faults.is_stuck(cpu, address) {
                // Validate as usual so stuck registers do not also change
                // the error surface, then drop the value on the floor.
                if cpu >= self.num_threads {
                    return Err(MachineError::NoSuchCpu { cpu, available: self.num_threads });
                }
                let desc = self
                    .descriptors
                    .get(&address)
                    .ok_or(MachineError::UnknownMsr { cpu, address })?;
                if !desc.writable {
                    return Err(MachineError::ReadOnlyMsr { cpu, address });
                }
                return Ok(());
            }
        }
        self.write(cpu, address, value)
    }

    /// Attach a fault scenario: scribble dirty state if the plan asks for
    /// it, then perturb every subsequent device access per the plan.
    pub fn attach_faults(&mut self, plan: FaultPlan) {
        if plan.dirty {
            let seed = plan.seed;
            for (&address, desc) in &self.descriptors {
                if !desc.writable || !is_perf_register(address) {
                    continue;
                }
                let mask = desc.value_mask() & !desc.reserved_mask;
                if let Some(values) = self.values.get_mut(&address) {
                    for (instance, slot) in values.iter_mut().enumerate() {
                        *slot = dirty_value(seed, address, instance) & mask;
                    }
                }
                if let Some(wide) = self.wide.get_mut(&address) {
                    for (instance, slot) in wide.iter_mut().enumerate() {
                        *slot = dirty_value(seed, address, instance) & mask;
                    }
                }
            }
        }
        self.faults = Some(FaultState::new(plan));
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| f.plan())
    }

    /// The full-64-bit shadow value of a register as seen from `cpu`: what a
    /// hypothetical width-unlimited counter would hold. Never subject to
    /// faults — this is the machine-side ground truth that wraparound
    /// corrections are validated against.
    pub fn wide_value(&self, cpu: usize, address: u32) -> Result<u64> {
        if cpu >= self.num_threads {
            return Err(MachineError::NoSuchCpu { cpu, available: self.num_threads });
        }
        let desc =
            self.descriptors.get(&address).ok_or(MachineError::UnknownMsr { cpu, address })?;
        let idx = self.instance(desc, cpu);
        Ok(self.wide[&address][idx])
    }

    /// Whether an MSR address is implemented.
    pub fn has_register(&self, address: u32) -> bool {
        self.descriptors.contains_key(&address)
    }

    /// All implemented MSR addresses (sorted), useful for diagnostics.
    pub fn known_registers(&self) -> Vec<u32> {
        let mut addrs: Vec<u32> = self.descriptors.keys().copied().collect();
        addrs.sort_unstable();
        addrs
    }

    /// Internal hook used by the counting engine: add to a counter register
    /// without permission checks (hardware increments are not `wrmsr`s).
    pub fn hardware_increment(&mut self, cpu: usize, address: u32, delta: u64) -> Result<()> {
        if cpu >= self.num_threads {
            return Err(MachineError::NoSuchCpu { cpu, available: self.num_threads });
        }
        let desc =
            self.descriptors.get(&address).ok_or(MachineError::UnknownMsr { cpu, address })?;
        let mask = desc.value_mask();
        let idx = self.instance(desc, cpu);
        if let Some(slot) = self.values.get_mut(&address).and_then(|v| v.get_mut(idx)) {
            *slot = (*slot).wrapping_add(delta) & mask;
        }
        if let Some(slot) = self.wide.get_mut(&address).and_then(|v| v.get_mut(idx)) {
            *slot = (*slot).wrapping_add(delta);
        }
        Ok(())
    }
}

/// Whether an address belongs to the performance-counting register blocks
/// (counters, event selects, counter control) — the registers a `dirty`
/// fault plan scribbles, mirroring state left behind by another tool.
fn is_perf_register(address: u32) -> bool {
    let in_block = |base: u32, len: u32| address >= base && address < base + len;
    in_block(Msr::IA32_PMC0, 8)
        || in_block(Msr::IA32_PERFEVTSEL0, 8)
        || in_block(Msr::IA32_FIXED_CTR0, 3)
        || address == Msr::IA32_FIXED_CTR_CTRL
        || address == Msr::IA32_PERF_GLOBAL_CTRL
        || address == Msr::IA32_PERF_GLOBAL_OVF_CTRL
        || address == Msr::MSR_UNCORE_PERF_GLOBAL_CTRL
        || address == Msr::MSR_UNCORE_PERF_GLOBAL_OVF_CTRL
        || address == Msr::MSR_UNCORE_FIXED_CTR0
        || address == Msr::MSR_UNCORE_FIXED_CTR_CTRL
        || in_block(Msr::MSR_UNCORE_PMC0, 8)
        || in_block(Msr::MSR_UNCORE_PERFEVTSEL0, 8)
        || in_block(Msr::AMD_PERFEVTSEL0, 4)
        || in_block(Msr::AMD_PMC0, 4)
}

/// A handle to the MSR device of one hardware thread, mirroring an open
/// `/dev/cpu/<N>/msr` file descriptor.
#[derive(Clone)]
pub struct MsrDevice {
    cpu: usize,
    permission: MsrPermission,
    space: Arc<RwLock<MsrSpace>>,
}

impl MsrDevice {
    /// Create a device handle. Normally obtained via
    /// [`crate::machine::SimMachine::msr`].
    pub fn new(cpu: usize, permission: MsrPermission, space: Arc<RwLock<MsrSpace>>) -> Self {
        MsrDevice { cpu, permission, space }
    }

    /// The hardware thread this device refers to.
    pub fn cpu(&self) -> usize {
        self.cpu
    }

    /// `rdmsr`: read the register at `address`. Subject to any fault plan
    /// attached to the machine.
    pub fn read(&self, address: u32) -> Result<u64> {
        self.space.read().device_read(self.cpu, address)
    }

    /// `wrmsr`: write the register at `address`. Subject to any fault plan
    /// attached to the machine.
    pub fn write(&self, address: u32, value: u64) -> Result<()> {
        if self.permission == MsrPermission::ReadOnly {
            return Err(MachineError::PermissionDenied { cpu: self.cpu, address });
        }
        self.space.write().device_write(self.cpu, address, value)
    }

    /// Read-modify-write helper: set the bits in `set` and clear the bits in
    /// `clear`.
    pub fn update(&self, address: u32, set: u64, clear: u64) -> Result<u64> {
        let old = self.read(address)?;
        let new = (old & !clear) | set;
        self.write(address, new)?;
        Ok(new)
    }
}

/// Per-hardware-thread register file view used by in-machine components
/// (counting engine, clock) that bypass the device permission model.
#[derive(Clone)]
pub struct MsrFile {
    space: Arc<RwLock<MsrSpace>>,
}

impl MsrFile {
    /// Wrap a shared MSR space.
    pub fn new(space: Arc<RwLock<MsrSpace>>) -> Self {
        MsrFile { space }
    }

    /// Direct read (no permission check).
    pub fn read(&self, cpu: usize, address: u32) -> Result<u64> {
        self.space.read().read(cpu, address)
    }

    /// Direct write (no permission check, still validates reserved bits).
    pub fn write(&self, cpu: usize, address: u32, value: u64) -> Result<()> {
        self.space.write().write(cpu, address, value)
    }

    /// Hardware-side counter increment.
    pub fn increment(&self, cpu: usize, address: u32, delta: u64) -> Result<()> {
        self.space.write().hardware_increment(cpu, address, delta)
    }

    /// The width-unlimited shadow value of a counter register — the
    /// machine-side ground truth for wraparound diagnostics (see
    /// [`MsrSpace::wide_value`]).
    pub fn wide_value(&self, cpu: usize, address: u32) -> Result<u64> {
        self.space.read().wide_value(cpu, address)
    }

    /// Shared space handle (for constructing devices).
    pub fn space(&self) -> Arc<RwLock<MsrSpace>> {
        Arc::clone(&self.space)
    }
}

/// Width of the general-purpose counters for an architecture.
fn pmc_width(arch: Microarch) -> u32 {
    match arch {
        Microarch::PentiumM => 40,
        Microarch::Core2 | Microarch::Atom => 40,
        Microarch::NehalemEp | Microarch::WestmereEp => 48,
        Microarch::K8 | Microarch::K10 => 48,
    }
}

/// Build the full register map for a microarchitecture.
pub fn register_map(arch: Microarch) -> Vec<MsrDescriptor> {
    let mut map = Vec::new();
    let pmc_w = pmc_width(arch);

    // Time-stamp counter exists everywhere.
    map.push(MsrDescriptor {
        address: Msr::IA32_TIME_STAMP_COUNTER,
        scope: MsrScope::Thread,
        writable: true,
        reserved_mask: 0,
        width: 64,
        reset_value: 0,
    });

    match arch {
        Microarch::PentiumM
        | Microarch::Atom
        | Microarch::Core2
        | Microarch::NehalemEp
        | Microarch::WestmereEp => {
            // IA32_MISC_ENABLE: core scope. Reserved bits are not enforced
            // here because the OS writes implementation-specific bits.
            map.push(MsrDescriptor {
                address: Msr::IA32_MISC_ENABLE,
                scope: MsrScope::Core,
                writable: true,
                reserved_mask: 0,
                width: 64,
                reset_value: crate::features::MiscEnable::RESET_VALUE,
            });

            let num_pmc = arch.num_pmc();
            for i in 0..num_pmc as u32 {
                map.push(MsrDescriptor {
                    address: Msr::IA32_PMC0 + i,
                    scope: MsrScope::Thread,
                    writable: true,
                    reserved_mask: 0,
                    width: pmc_w,
                    reset_value: 0,
                });
                // PERFEVTSEL: bits 63:32 reserved on pre-Nehalem; Nehalem
                // adds AnyThread (21) and the cmask stays in 31:24.
                map.push(MsrDescriptor {
                    address: Msr::IA32_PERFEVTSEL0 + i,
                    scope: MsrScope::Thread,
                    writable: true,
                    reserved_mask: 0xFFFF_FFFF_0000_0000,
                    width: 64,
                    reset_value: 0,
                });
            }

            if arch.num_fixed_counters() > 0 {
                for addr in [Msr::IA32_FIXED_CTR0, Msr::IA32_FIXED_CTR1, Msr::IA32_FIXED_CTR2] {
                    map.push(MsrDescriptor {
                        address: addr,
                        scope: MsrScope::Thread,
                        writable: true,
                        reserved_mask: 0,
                        // Fixed-function counters are narrower than the
                        // PMCs: 44 implemented bits, wrapping earlier.
                        width: 44,
                        reset_value: 0,
                    });
                }
                map.push(MsrDescriptor {
                    address: Msr::IA32_FIXED_CTR_CTRL,
                    scope: MsrScope::Thread,
                    writable: true,
                    reserved_mask: 0xFFFF_FFFF_FFFF_F000,
                    width: 64,
                    reset_value: 0,
                });
                map.push(MsrDescriptor {
                    address: Msr::IA32_PERF_GLOBAL_STATUS,
                    scope: MsrScope::Thread,
                    writable: false,
                    reserved_mask: 0,
                    width: 64,
                    reset_value: 0,
                });
                map.push(MsrDescriptor {
                    address: Msr::IA32_PERF_GLOBAL_CTRL,
                    scope: MsrScope::Thread,
                    writable: true,
                    reserved_mask: 0,
                    width: 64,
                    reset_value: 0,
                });
                map.push(MsrDescriptor {
                    address: Msr::IA32_PERF_GLOBAL_OVF_CTRL,
                    scope: MsrScope::Thread,
                    writable: true,
                    reserved_mask: 0,
                    width: 64,
                    reset_value: 0,
                });
            }

            if arch.has_uncore() {
                map.push(MsrDescriptor {
                    address: Msr::MSR_UNCORE_PERF_GLOBAL_CTRL,
                    scope: MsrScope::Package,
                    writable: true,
                    reserved_mask: 0,
                    width: 64,
                    reset_value: 0,
                });
                map.push(MsrDescriptor {
                    address: Msr::MSR_UNCORE_PERF_GLOBAL_STATUS,
                    scope: MsrScope::Package,
                    writable: false,
                    reserved_mask: 0,
                    width: 64,
                    reset_value: 0,
                });
                map.push(MsrDescriptor {
                    address: Msr::MSR_UNCORE_PERF_GLOBAL_OVF_CTRL,
                    scope: MsrScope::Package,
                    writable: true,
                    reserved_mask: 0,
                    width: 64,
                    reset_value: 0,
                });
                map.push(MsrDescriptor {
                    address: Msr::MSR_UNCORE_FIXED_CTR0,
                    scope: MsrScope::Package,
                    writable: true,
                    reserved_mask: 0,
                    width: 48,
                    reset_value: 0,
                });
                map.push(MsrDescriptor {
                    address: Msr::MSR_UNCORE_FIXED_CTR_CTRL,
                    scope: MsrScope::Package,
                    writable: true,
                    reserved_mask: 0,
                    width: 64,
                    reset_value: 0,
                });
                for i in 0..arch.num_uncore_pmc() as u32 {
                    map.push(MsrDescriptor {
                        address: Msr::MSR_UNCORE_PMC0 + i,
                        scope: MsrScope::Package,
                        writable: true,
                        reserved_mask: 0,
                        width: 48,
                        reset_value: 0,
                    });
                    map.push(MsrDescriptor {
                        address: Msr::MSR_UNCORE_PERFEVTSEL0 + i,
                        scope: MsrScope::Package,
                        writable: true,
                        reserved_mask: 0xFFFF_FFFF_0000_0000,
                        width: 64,
                        reset_value: 0,
                    });
                }
            }

            if matches!(arch, Microarch::NehalemEp | Microarch::WestmereEp) {
                map.push(MsrDescriptor {
                    address: Msr::MSR_PLATFORM_INFO,
                    scope: MsrScope::Package,
                    writable: false,
                    reserved_mask: 0,
                    width: 64,
                    // Bits 15:8: maximum non-turbo ratio. Set by the preset.
                    reset_value: 0,
                });
            }
        }
        Microarch::K8 | Microarch::K10 => {
            for i in 0..4u32 {
                map.push(MsrDescriptor {
                    address: Msr::AMD_PERFEVTSEL0 + i,
                    scope: MsrScope::Thread,
                    writable: true,
                    reserved_mask: 0,
                    width: 64,
                    reset_value: 0,
                });
                map.push(MsrDescriptor {
                    address: Msr::AMD_PMC0 + i,
                    scope: MsrScope::Thread,
                    writable: true,
                    reserved_mask: 0,
                    width: pmc_w,
                    reset_value: 0,
                });
            }
        }
    }

    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{EnumerationOrder, TopologySpec};

    fn westmere_space() -> MsrSpace {
        let topo = TopologySpec::new(
            2,
            6,
            2,
            Some(vec![0, 1, 2, 8, 9, 10]),
            EnumerationOrder::SmtLast,
            12 << 30,
        )
        .unwrap();
        MsrSpace::new(Microarch::WestmereEp, &topo)
    }

    fn device(space: MsrSpace, cpu: usize, perm: MsrPermission) -> MsrDevice {
        MsrDevice::new(cpu, perm, Arc::new(RwLock::new(space)))
    }

    #[test]
    fn read_write_round_trip() {
        let dev = device(westmere_space(), 0, MsrPermission::ReadWrite);
        dev.write(Msr::IA32_PMC0, 0x1234).unwrap();
        assert_eq!(dev.read(Msr::IA32_PMC0).unwrap(), 0x1234);
    }

    #[test]
    fn unknown_msr_is_rejected() {
        let dev = device(westmere_space(), 0, MsrPermission::ReadWrite);
        assert!(matches!(dev.read(0xDEAD), Err(MachineError::UnknownMsr { .. })));
    }

    #[test]
    fn read_only_device_rejects_writes() {
        let dev = device(westmere_space(), 0, MsrPermission::ReadOnly);
        assert!(matches!(dev.write(Msr::IA32_PMC0, 1), Err(MachineError::PermissionDenied { .. })));
        assert!(dev.read(Msr::IA32_PMC0).is_ok());
    }

    #[test]
    fn read_only_register_rejects_writes() {
        let dev = device(westmere_space(), 0, MsrPermission::ReadWrite);
        assert!(matches!(
            dev.write(Msr::IA32_PERF_GLOBAL_STATUS, 1),
            Err(MachineError::ReadOnlyMsr { .. })
        ));
    }

    #[test]
    fn reserved_bits_are_enforced() {
        let dev = device(westmere_space(), 0, MsrPermission::ReadWrite);
        assert!(matches!(
            dev.write(Msr::IA32_PERFEVTSEL0, 0x1_0000_0000),
            Err(MachineError::ReservedBits { .. })
        ));
    }

    #[test]
    fn counter_width_masks_value_on_write() {
        let dev = device(westmere_space(), 0, MsrPermission::ReadWrite);
        dev.write(Msr::IA32_PMC0, (1u64 << 50) | 5).unwrap();
        assert_eq!(dev.read(Msr::IA32_PMC0).unwrap(), 5, "bits above 48 are dropped");
    }

    #[test]
    fn package_scope_registers_are_shared_within_a_socket() {
        let space = Arc::new(RwLock::new(westmere_space()));
        let dev0 = MsrDevice::new(0, MsrPermission::ReadWrite, Arc::clone(&space));
        let dev5 = MsrDevice::new(5, MsrPermission::ReadWrite, Arc::clone(&space)); // same socket 0
        let dev6 = MsrDevice::new(6, MsrPermission::ReadWrite, Arc::clone(&space)); // socket 1

        dev0.write(Msr::MSR_UNCORE_PMC0, 42).unwrap();
        assert_eq!(dev5.read(Msr::MSR_UNCORE_PMC0).unwrap(), 42);
        assert_eq!(dev6.read(Msr::MSR_UNCORE_PMC0).unwrap(), 0);
    }

    #[test]
    fn core_scope_registers_are_shared_between_smt_siblings() {
        let space = Arc::new(RwLock::new(westmere_space()));
        let dev0 = MsrDevice::new(0, MsrPermission::ReadWrite, Arc::clone(&space));
        let dev12 = MsrDevice::new(12, MsrPermission::ReadWrite, Arc::clone(&space)); // SMT sibling
        let dev1 = MsrDevice::new(1, MsrPermission::ReadWrite, Arc::clone(&space)); // other core

        let before = dev1.read(Msr::IA32_MISC_ENABLE).unwrap();
        dev0.update(Msr::IA32_MISC_ENABLE, 1 << 9, 0).unwrap();
        assert_eq!(dev12.read(Msr::IA32_MISC_ENABLE).unwrap() & (1 << 9), 1 << 9);
        assert_eq!(dev1.read(Msr::IA32_MISC_ENABLE).unwrap(), before);
    }

    #[test]
    fn thread_scope_registers_are_private() {
        let space = Arc::new(RwLock::new(westmere_space()));
        let dev0 = MsrDevice::new(0, MsrPermission::ReadWrite, Arc::clone(&space));
        let dev12 = MsrDevice::new(12, MsrPermission::ReadWrite, Arc::clone(&space));
        dev0.write(Msr::IA32_PMC0, 7).unwrap();
        assert_eq!(dev12.read(Msr::IA32_PMC0).unwrap(), 0);
    }

    #[test]
    fn amd_register_map_has_four_counters_and_no_fixed() {
        let topo =
            TopologySpec::new(2, 6, 1, None, EnumerationOrder::SocketsFirstSmtAdjacent, 8 << 30)
                .unwrap();
        let space = MsrSpace::new(Microarch::K10, &topo);
        assert!(space.has_register(Msr::AMD_PERFEVTSEL0));
        assert!(space.has_register(Msr::AMD_PMC0 + 3));
        assert!(!space.has_register(Msr::IA32_FIXED_CTR0));
        assert!(!space.has_register(Msr::MSR_UNCORE_PMC0));
    }

    #[test]
    fn hardware_increment_wraps_at_counter_width() {
        let mut space = westmere_space();
        let max48 = (1u64 << 48) - 1;
        space.write(0, Msr::IA32_PMC0, max48).unwrap();
        space.hardware_increment(0, Msr::IA32_PMC0, 1).unwrap();
        assert_eq!(space.read(0, Msr::IA32_PMC0).unwrap(), 0, "48-bit counter wraps to zero");
    }

    #[test]
    fn fixed_counters_wrap_at_44_bits() {
        let mut space = westmere_space();
        let max44 = (1u64 << 44) - 1;
        space.write(0, Msr::IA32_FIXED_CTR0, max44).unwrap();
        space.hardware_increment(0, Msr::IA32_FIXED_CTR0, 1).unwrap();
        assert_eq!(space.read(0, Msr::IA32_FIXED_CTR0).unwrap(), 0, "44-bit counter wraps");
    }

    #[test]
    fn wide_shadow_tracks_the_unwrapped_total() {
        let mut space = westmere_space();
        let max48 = (1u64 << 48) - 1;
        space.hardware_increment(0, Msr::IA32_PMC0, max48).unwrap();
        space.hardware_increment(0, Msr::IA32_PMC0, 10).unwrap();
        assert_eq!(space.read(0, Msr::IA32_PMC0).unwrap(), 9, "narrow value wrapped");
        assert_eq!(space.wide_value(0, Msr::IA32_PMC0).unwrap(), max48 + 10, "shadow did not");
        // A device write resets both views.
        space.write(0, Msr::IA32_PMC0, 0).unwrap();
        assert_eq!(space.wide_value(0, Msr::IA32_PMC0).unwrap(), 0);
    }

    #[test]
    fn fault_plan_perturbs_devices_but_not_the_machine_side() {
        use crate::fault::{FaultPlan, TransientSpec};
        let mut space = westmere_space();
        space.attach_faults(FaultPlan {
            seed: 3,
            read: Some(TransientSpec { probability: 0.95, max_consecutive: 3 }),
            ..FaultPlan::default()
        });
        let space = Arc::new(RwLock::new(space));
        let dev = MsrDevice::new(0, MsrPermission::ReadWrite, Arc::clone(&space));
        let mut faulted = 0;
        for _ in 0..50 {
            if dev.read(Msr::IA32_PMC0).is_err() {
                faulted += 1;
            }
        }
        assert!(faulted > 0, "a 95% plan must fault the device path");
        // The machine-internal path (counting engine, clock) never faults.
        let file = MsrFile::new(Arc::clone(&space));
        for _ in 0..50 {
            assert!(file.read(0, Msr::IA32_PMC0).is_ok());
        }
    }

    #[test]
    fn stuck_registers_silently_drop_device_writes() {
        use crate::fault::FaultPlan;
        let mut space = westmere_space();
        space.write(0, Msr::IA32_PMC0, 0xBAD).unwrap();
        space.attach_faults(FaultPlan { stuck: vec![(0, Msr::IA32_PMC0)], ..FaultPlan::default() });
        let space = Arc::new(RwLock::new(space));
        let dev = MsrDevice::new(0, MsrPermission::ReadWrite, Arc::clone(&space));
        dev.write(Msr::IA32_PMC0, 0).unwrap();
        assert_eq!(dev.read(Msr::IA32_PMC0).unwrap(), 0xBAD, "write was dropped");
        // Other registers and other cpus are unaffected.
        dev.write(Msr::IA32_PMC0 + 1, 7).unwrap();
        assert_eq!(dev.read(Msr::IA32_PMC0 + 1).unwrap(), 7);
        let dev1 = MsrDevice::new(1, MsrPermission::ReadWrite, space);
        dev1.write(Msr::IA32_PMC0, 5).unwrap();
        assert_eq!(dev1.read(Msr::IA32_PMC0).unwrap(), 5);
    }

    #[test]
    fn dirty_plans_scribble_perf_registers_only() {
        use crate::fault::FaultPlan;
        let mut space = westmere_space();
        let misc_before = space.read(0, Msr::IA32_MISC_ENABLE).unwrap();
        space.attach_faults(FaultPlan { dirty: true, seed: 11, ..FaultPlan::default() });
        assert_ne!(space.read(0, Msr::IA32_PMC0).unwrap(), 0, "counter state is dirty");
        assert_ne!(space.read(0, Msr::IA32_PERFEVTSEL0).unwrap(), 0, "select state is dirty");
        assert_eq!(
            space.read(0, Msr::IA32_MISC_ENABLE).unwrap(),
            misc_before,
            "feature state is untouched"
        );
        assert_eq!(space.read(0, Msr::IA32_TIME_STAMP_COUNTER).unwrap(), 0, "TSC untouched");
        // The scribble respects reserved bits, so reprogramming never trips
        // the reserved-bit check.
        let sel = space.read(0, Msr::IA32_PERFEVTSEL0).unwrap();
        assert_eq!(sel & 0xFFFF_FFFF_0000_0000, 0);
    }

    #[test]
    fn invalid_cpu_is_rejected() {
        let space = westmere_space();
        assert!(matches!(
            space.read(99, Msr::IA32_PMC0),
            Err(MachineError::NoSuchCpu { cpu: 99, .. })
        ));
    }

    #[test]
    fn known_registers_is_sorted_and_nonempty() {
        let space = westmere_space();
        let regs = space.known_registers();
        assert!(regs.len() > 20);
        assert!(regs.windows(2).all(|w| w[0] < w[1]));
    }
}

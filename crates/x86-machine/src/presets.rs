//! Machine presets: the node configurations used throughout the paper.
//!
//! Each preset captures a complete node: microarchitecture, socket/core/SMT
//! counts, core-ID numbering, cache hierarchy, nominal clock, per-socket
//! memory bandwidth and NUMA capacity. The evaluation machines of the paper
//! are all here:
//!
//! * **Westmere EP 2-socket** (Figures 4–8): 2 × 6 cores × 2 SMT, 12 MB L3.
//! * **Nehalem EP 2-socket** (Figure 11, Table II): 2 × 4 cores × 2 SMT,
//!   8 MB L3, 2.66 GHz.
//! * **AMD Istanbul 2-socket** (Figures 9–10): 2 × 6 cores, 6 MB L3.
//! * **Core 2 Quad** (the FLOPS_DP marker listing): 1 × 4 cores, 2.83 GHz.
//! plus the remaining architectures of the supported list (Pentium M, Atom,
//! Core 2 Duo, K8) so that the identification and event-table code paths are
//! exercised.

use crate::cache::{cache, CacheKind, CacheSpec};
use crate::clock::ClockDomain;
use crate::topology::{EnumerationOrder, TopologySpec};
use crate::vendor::Microarch;

/// Memory-system parameters of a preset used by the performance model and
/// the cache simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemorySystemSpec {
    /// Sustainable memory bandwidth of one socket's integrated memory
    /// controller (or chipset), in bytes per second.
    pub socket_bandwidth_bps: f64,
    /// Bandwidth available to a single core streaming alone, in bytes per
    /// second (one core usually cannot saturate the socket).
    pub per_core_bandwidth_bps: f64,
    /// Bandwidth of the inter-socket link (QPI / HyperTransport) for remote
    /// accesses, in bytes per second.
    pub remote_bandwidth_bps: f64,
    /// Main memory access latency in core cycles.
    pub memory_latency_cycles: u64,
    /// Local memory per socket in bytes.
    pub memory_per_socket: u64,
}

/// A complete machine preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MachinePreset {
    /// Dual-socket Intel Westmere EP (X5670-class): 2 × 6 cores × 2 SMT,
    /// 2.93 GHz. The STREAM machine of Figures 4–8.
    WestmereEp2S,
    /// Dual-socket Intel Nehalem EP (X5550-class): 2 × 4 cores × 2 SMT,
    /// 2.66 GHz. The stencil machine of Figure 11 and Table II.
    NehalemEp2S,
    /// Dual-socket AMD Istanbul: 2 × 6 cores, 2.6 GHz. Figures 9–10.
    IstanbulH2S,
    /// Intel Core 2 Quad (Q9550-class, 45 nm): 1 × 4 cores, 2.83 GHz.
    /// The marker-API FLOPS_DP listing.
    Core2Quad,
    /// Intel Core 2 Duo (65 nm), 2.4 GHz. The likwid-features listing.
    Core2Duo,
    /// Intel Atom (single core, 2 SMT threads), 1.6 GHz.
    Atom,
    /// Intel Pentium M (Dothan), 1.7 GHz, single core.
    PentiumM,
    /// Dual-socket AMD K8 Opteron, 2 × 2 cores, 2.4 GHz.
    K8Opteron2S,
}

impl MachinePreset {
    /// All presets.
    pub fn all() -> &'static [MachinePreset] {
        &[
            MachinePreset::WestmereEp2S,
            MachinePreset::NehalemEp2S,
            MachinePreset::IstanbulH2S,
            MachinePreset::Core2Quad,
            MachinePreset::Core2Duo,
            MachinePreset::Atom,
            MachinePreset::PentiumM,
            MachinePreset::K8Opteron2S,
        ]
    }

    /// Microarchitecture of the preset.
    pub fn arch(self) -> Microarch {
        match self {
            MachinePreset::WestmereEp2S => Microarch::WestmereEp,
            MachinePreset::NehalemEp2S => Microarch::NehalemEp,
            MachinePreset::IstanbulH2S => Microarch::K10,
            MachinePreset::Core2Quad | MachinePreset::Core2Duo => Microarch::Core2,
            MachinePreset::Atom => Microarch::Atom,
            MachinePreset::PentiumM => Microarch::PentiumM,
            MachinePreset::K8Opteron2S => Microarch::K8,
        }
    }

    /// Nominal clock.
    pub fn clock(self) -> ClockDomain {
        match self {
            MachinePreset::WestmereEp2S => ClockDomain::from_ghz(2.93),
            MachinePreset::NehalemEp2S => ClockDomain::from_ghz(2.66),
            MachinePreset::IstanbulH2S => ClockDomain::from_ghz(2.6),
            MachinePreset::Core2Quad => ClockDomain::from_ghz(2.83),
            MachinePreset::Core2Duo => ClockDomain::from_ghz(2.4),
            MachinePreset::Atom => ClockDomain::from_ghz(1.6),
            MachinePreset::PentiumM => ClockDomain::from_ghz(1.7),
            MachinePreset::K8Opteron2S => ClockDomain::from_ghz(2.4),
        }
    }

    /// Processor brand string.
    pub fn brand(self) -> &'static str {
        match self {
            MachinePreset::WestmereEp2S => "Intel(R) Xeon(R) CPU X5670",
            MachinePreset::NehalemEp2S => "Intel(R) Xeon(R) CPU X5550",
            MachinePreset::IstanbulH2S => "Six-Core AMD Opteron(tm) Processor 2435",
            MachinePreset::Core2Quad => "Intel(R) Core(TM)2 Quad CPU Q9550",
            MachinePreset::Core2Duo => "Intel(R) Core(TM)2 CPU 6600",
            MachinePreset::Atom => "Intel(R) Atom(TM) CPU N270",
            MachinePreset::PentiumM => "Intel(R) Pentium(R) M processor 1.70GHz",
            MachinePreset::K8Opteron2S => "Dual-Core AMD Opteron(tm) Processor 2216",
        }
    }

    /// Node topology.
    pub fn topology(self) -> TopologySpec {
        let mem = self.memory_system().memory_per_socket;
        match self {
            MachinePreset::WestmereEp2S => TopologySpec::new(
                2,
                6,
                2,
                Some(vec![0, 1, 2, 8, 9, 10]),
                EnumerationOrder::SmtLast,
                mem,
            ),
            MachinePreset::NehalemEp2S => {
                TopologySpec::new(2, 4, 2, Some(vec![0, 1, 2, 3]), EnumerationOrder::SmtLast, mem)
            }
            MachinePreset::IstanbulH2S => {
                TopologySpec::new(2, 6, 1, None, EnumerationOrder::SocketsFirstSmtAdjacent, mem)
            }
            MachinePreset::Core2Quad => {
                TopologySpec::new(1, 4, 1, None, EnumerationOrder::SocketsFirstSmtAdjacent, mem)
            }
            MachinePreset::Core2Duo => {
                TopologySpec::new(1, 2, 1, None, EnumerationOrder::SocketsFirstSmtAdjacent, mem)
            }
            MachinePreset::Atom => TopologySpec::new(1, 1, 2, None, EnumerationOrder::SmtLast, mem),
            MachinePreset::PentiumM => {
                TopologySpec::new(1, 1, 1, None, EnumerationOrder::SocketsFirstSmtAdjacent, mem)
            }
            MachinePreset::K8Opteron2S => {
                TopologySpec::new(2, 2, 1, None, EnumerationOrder::SocketsFirstSmtAdjacent, mem)
            }
        }
        .expect("preset topologies are valid by construction")
    }

    /// Data/unified cache hierarchy (instruction caches are omitted, like in
    /// the tool output which only prints data caches).
    pub fn caches(self) -> Vec<CacheSpec> {
        match self {
            MachinePreset::WestmereEp2S => vec![
                cache(1, CacheKind::Data, 32 << 10, 8, 64, true, 2),
                cache(2, CacheKind::Unified, 256 << 10, 8, 64, true, 2),
                cache(3, CacheKind::Unified, 12 << 20, 16, 64, false, 12),
            ],
            MachinePreset::NehalemEp2S => vec![
                cache(1, CacheKind::Data, 32 << 10, 8, 64, true, 2),
                cache(2, CacheKind::Unified, 256 << 10, 8, 64, true, 2),
                cache(3, CacheKind::Unified, 8 << 20, 16, 64, true, 8),
            ],
            MachinePreset::IstanbulH2S => vec![
                cache(1, CacheKind::Data, 64 << 10, 2, 64, false, 1),
                cache(2, CacheKind::Unified, 512 << 10, 16, 64, false, 1),
                cache(3, CacheKind::Unified, 6 << 20, 48, 64, false, 6),
            ],
            MachinePreset::Core2Quad => vec![
                cache(1, CacheKind::Data, 32 << 10, 8, 64, false, 1),
                // Core 2 Quad: two 6 MB L2 caches, each shared by a core pair.
                cache(2, CacheKind::Unified, 6 << 20, 24, 64, false, 2),
            ],
            MachinePreset::Core2Duo => vec![
                cache(1, CacheKind::Data, 32 << 10, 8, 64, false, 1),
                cache(2, CacheKind::Unified, 4 << 20, 16, 64, false, 2),
            ],
            MachinePreset::Atom => vec![
                cache(1, CacheKind::Data, 24 << 10, 6, 64, false, 2),
                cache(2, CacheKind::Unified, 512 << 10, 8, 64, false, 2),
            ],
            MachinePreset::PentiumM => vec![
                cache(1, CacheKind::Data, 32 << 10, 8, 64, false, 1),
                cache(2, CacheKind::Unified, 2 << 20, 8, 64, false, 1),
            ],
            MachinePreset::K8Opteron2S => vec![
                cache(1, CacheKind::Data, 64 << 10, 2, 64, false, 1),
                cache(2, CacheKind::Unified, 1 << 20, 16, 64, false, 1),
            ],
        }
    }

    /// Memory-system parameters used by the cache simulator and the
    /// roofline performance model.
    pub fn memory_system(self) -> MemorySystemSpec {
        match self {
            // Westmere EP: three DDR3-1333 channels per socket; the paper's
            // STREAM plots saturate around 20-21 GB/s per socket (~41 GB/s node).
            MachinePreset::WestmereEp2S => MemorySystemSpec {
                socket_bandwidth_bps: 20.5e9,
                per_core_bandwidth_bps: 9.5e9,
                remote_bandwidth_bps: 10.0e9,
                memory_latency_cycles: 200,
                memory_per_socket: 12 << 30,
            },
            // Nehalem EP: ~17 GB/s per socket sustainable.
            MachinePreset::NehalemEp2S => MemorySystemSpec {
                socket_bandwidth_bps: 17.0e9,
                per_core_bandwidth_bps: 8.0e9,
                remote_bandwidth_bps: 9.0e9,
                memory_latency_cycles: 190,
                memory_per_socket: 12 << 30,
            },
            // Istanbul: two DDR2-800 channels per socket, ~12 GB/s; the
            // paper's plots saturate around 24-25 GB/s for the full node.
            MachinePreset::IstanbulH2S => MemorySystemSpec {
                socket_bandwidth_bps: 12.3e9,
                per_core_bandwidth_bps: 5.5e9,
                remote_bandwidth_bps: 6.0e9,
                memory_latency_cycles: 230,
                memory_per_socket: 16 << 30,
            },
            // Core 2: front-side bus limited, ~7 GB/s for the whole socket.
            MachinePreset::Core2Quad => MemorySystemSpec {
                socket_bandwidth_bps: 7.0e9,
                per_core_bandwidth_bps: 4.0e9,
                remote_bandwidth_bps: 7.0e9,
                memory_latency_cycles: 250,
                memory_per_socket: 8 << 30,
            },
            MachinePreset::Core2Duo => MemorySystemSpec {
                socket_bandwidth_bps: 6.0e9,
                per_core_bandwidth_bps: 4.0e9,
                remote_bandwidth_bps: 6.0e9,
                memory_latency_cycles: 250,
                memory_per_socket: 4 << 30,
            },
            MachinePreset::Atom => MemorySystemSpec {
                socket_bandwidth_bps: 3.0e9,
                per_core_bandwidth_bps: 2.0e9,
                remote_bandwidth_bps: 3.0e9,
                memory_latency_cycles: 300,
                memory_per_socket: 2 << 30,
            },
            MachinePreset::PentiumM => MemorySystemSpec {
                socket_bandwidth_bps: 2.5e9,
                per_core_bandwidth_bps: 2.0e9,
                remote_bandwidth_bps: 2.5e9,
                memory_latency_cycles: 280,
                memory_per_socket: 2 << 30,
            },
            MachinePreset::K8Opteron2S => MemorySystemSpec {
                socket_bandwidth_bps: 6.4e9,
                per_core_bandwidth_bps: 3.5e9,
                remote_bandwidth_bps: 4.0e9,
                memory_latency_cycles: 220,
                memory_per_socket: 8 << 30,
            },
        }
    }

    /// Short identifier used on command lines and in figure captions.
    pub fn id(self) -> &'static str {
        match self {
            MachinePreset::WestmereEp2S => "westmere-ep-2s",
            MachinePreset::NehalemEp2S => "nehalem-ep-2s",
            MachinePreset::IstanbulH2S => "istanbul-2s",
            MachinePreset::Core2Quad => "core2-quad",
            MachinePreset::Core2Duo => "core2-duo",
            MachinePreset::Atom => "atom",
            MachinePreset::PentiumM => "pentium-m",
            MachinePreset::K8Opteron2S => "k8-opteron-2s",
        }
    }

    /// Parse a preset identifier.
    pub fn from_id(id: &str) -> Option<Self> {
        Self::all().iter().copied().find(|p| p.id() == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_have_consistent_caches() {
        for &p in MachinePreset::all() {
            for c in p.caches() {
                assert!(c.is_consistent(), "{p:?} cache L{} is inconsistent", c.level);
            }
        }
    }

    #[test]
    fn all_presets_build_valid_topologies() {
        for &p in MachinePreset::all() {
            let topo = p.topology();
            assert!(topo.num_hw_threads() >= 1);
            // Every cache sharing count divides the thread count of its domain.
            for c in p.caches() {
                assert!(
                    topo.num_hw_threads() as u32 % c.shared_by_threads == 0,
                    "{p:?}: L{} shared_by {} does not divide {}",
                    c.level,
                    c.shared_by_threads,
                    topo.num_hw_threads()
                );
            }
        }
    }

    #[test]
    fn paper_machines_have_the_right_shape() {
        let westmere = MachinePreset::WestmereEp2S;
        assert_eq!(westmere.topology().num_hw_threads(), 24);
        assert_eq!(westmere.caches()[2].size_bytes, 12 << 20);
        assert_eq!(westmere.clock().display(), "2.93 GHz");

        let nehalem = MachinePreset::NehalemEp2S;
        assert_eq!(nehalem.topology().num_hw_threads(), 16);
        assert_eq!(nehalem.clock().display(), "2.66 GHz");

        let istanbul = MachinePreset::IstanbulH2S;
        assert_eq!(istanbul.topology().num_hw_threads(), 12);
        assert_eq!(istanbul.topology().threads_per_core, 1);

        let core2 = MachinePreset::Core2Quad;
        assert_eq!(core2.topology().num_hw_threads(), 4);
        assert_eq!(core2.clock().display(), "2.83 GHz");
    }

    #[test]
    fn ids_round_trip() {
        for &p in MachinePreset::all() {
            assert_eq!(MachinePreset::from_id(p.id()), Some(p));
        }
        assert_eq!(MachinePreset::from_id("sparc-t4"), None);
    }

    #[test]
    fn node_bandwidth_ordering_matches_the_paper() {
        // Westmere node bandwidth > Istanbul node bandwidth (40+ vs ~25 GB/s).
        let w = MachinePreset::WestmereEp2S.memory_system();
        let i = MachinePreset::IstanbulH2S.memory_system();
        assert!(w.socket_bandwidth_bps * 2.0 > 38e9);
        assert!(i.socket_bandwidth_bps * 2.0 < 27e9);
        // A single core cannot saturate a socket on either machine.
        assert!(w.per_core_bandwidth_bps < w.socket_bandwidth_bps);
        assert!(i.per_core_bandwidth_bps < i.socket_bandwidth_bps);
    }
}

//! Node-level thread topology model.
//!
//! A machine is a set of packages (sockets), each with a number of physical
//! cores, each running one or more SMT hardware threads. The operating
//! system enumerates the hardware threads and assigns them the processor IDs
//! that appear in `/proc/cpuinfo` and that all affinity interfaces use. The
//! mapping between those OS processor IDs and the physical resources depends
//! on BIOS and kernel enumeration order and is exactly the information
//! `likwid-topology` recovers from the APIC IDs.

use crate::apic::ApicLayout;
use crate::error::{MachineError, Result};

/// Operating-system processor ID of a hardware thread (the number used with
/// `taskset`, `sched_setaffinity` and in `/proc/cpuinfo`).
pub type HwThreadId = usize;

/// How the (simulated) BIOS/kernel assigns OS processor IDs to hardware
/// threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EnumerationOrder {
    /// All first SMT threads of all cores of all sockets, then all second SMT
    /// threads, … This is what the Westmere EP listing in the paper shows
    /// (hardware threads 0–11 are SMT thread 0, 12–23 are SMT thread 1).
    SmtLast,
    /// All hardware threads of socket 0, then socket 1, …; within a socket
    /// the SMT siblings are adjacent (core0-smt0, core0-smt1, core1-smt0, …).
    SocketsFirstSmtAdjacent,
    /// Sockets interleaved per core: core0/socket0, core0/socket1,
    /// core1/socket0, … (seen on some Opteron BIOSes).
    RoundRobinSockets,
}

/// One hardware thread with its physical coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HwThread {
    /// OS processor ID.
    pub os_id: HwThreadId,
    /// APIC ID as reported by cpuid.
    pub apic_id: u32,
    /// Package (socket) number.
    pub socket: u32,
    /// Core ID within the package. May be non-contiguous (BIOS holes).
    pub core_id: u32,
    /// SMT thread number within the core.
    pub smt_id: u32,
    /// Dense core index within the package (0..cores_per_socket), useful for
    /// array indexing regardless of core-ID holes.
    pub core_index: u32,
}

/// A ccNUMA locality domain: a set of hardware threads with local memory.
///
/// On the machines covered here each socket is one NUMA domain.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NumaNode {
    /// NUMA node number.
    pub id: u32,
    /// Local memory capacity in bytes.
    pub memory_bytes: u64,
    /// OS processor IDs belonging to this domain.
    pub hw_threads: Vec<HwThreadId>,
}

/// Complete description of the node's processor topology.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TopologySpec {
    /// Number of packages (sockets).
    pub sockets: u32,
    /// Physical cores per package.
    pub cores_per_socket: u32,
    /// SMT hardware threads per core.
    pub threads_per_core: u32,
    /// Physical core IDs used inside each package (length == cores_per_socket).
    /// Real BIOSes leave holes; the Westmere EP in the paper uses 0,1,2,8,9,10.
    pub core_ids: Vec<u32>,
    /// OS enumeration order.
    pub enumeration: EnumerationOrder,
    /// APIC ID bit-field layout.
    pub apic_layout: ApicLayout,
    /// All hardware threads, indexed by OS processor ID.
    pub hw_threads: Vec<HwThread>,
    /// NUMA domains (one per socket on the machines modelled here).
    pub numa_nodes: Vec<NumaNode>,
}

impl TopologySpec {
    /// Build a topology.
    ///
    /// `core_ids` lists the per-package physical core IDs; if `None`,
    /// consecutive IDs `0..cores_per_socket` are used. `memory_per_socket`
    /// is the local NUMA memory in bytes.
    pub fn new(
        sockets: u32,
        cores_per_socket: u32,
        threads_per_core: u32,
        core_ids: Option<Vec<u32>>,
        enumeration: EnumerationOrder,
        memory_per_socket: u64,
    ) -> Result<Self> {
        if sockets == 0 || cores_per_socket == 0 || threads_per_core == 0 {
            return Err(MachineError::InvalidTopology(
                "sockets, cores per socket and threads per core must all be non-zero".into(),
            ));
        }
        let core_ids = core_ids.unwrap_or_else(|| (0..cores_per_socket).collect());
        if core_ids.len() != cores_per_socket as usize {
            return Err(MachineError::InvalidTopology(format!(
                "core_ids has {} entries but cores_per_socket is {}",
                core_ids.len(),
                cores_per_socket
            )));
        }
        {
            let mut sorted = core_ids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != core_ids.len() {
                return Err(MachineError::InvalidTopology("duplicate core IDs".into()));
            }
        }

        let max_core_id = *core_ids.iter().max().expect("non-empty core_ids");
        let apic_layout = ApicLayout::for_counts(threads_per_core, max_core_id);

        // Enumerate (socket, core_index, smt) triples in the OS order.
        let mut triples: Vec<(u32, u32, u32)> = Vec::new();
        match enumeration {
            EnumerationOrder::SmtLast => {
                for smt in 0..threads_per_core {
                    for socket in 0..sockets {
                        for core_index in 0..cores_per_socket {
                            triples.push((socket, core_index, smt));
                        }
                    }
                }
            }
            EnumerationOrder::SocketsFirstSmtAdjacent => {
                for socket in 0..sockets {
                    for core_index in 0..cores_per_socket {
                        for smt in 0..threads_per_core {
                            triples.push((socket, core_index, smt));
                        }
                    }
                }
            }
            EnumerationOrder::RoundRobinSockets => {
                for smt in 0..threads_per_core {
                    for core_index in 0..cores_per_socket {
                        for socket in 0..sockets {
                            triples.push((socket, core_index, smt));
                        }
                    }
                }
            }
        }

        let hw_threads: Vec<HwThread> = triples
            .iter()
            .enumerate()
            .map(|(os_id, &(socket, core_index, smt))| {
                let core_id = core_ids[core_index as usize];
                HwThread {
                    os_id,
                    apic_id: apic_layout.compose(socket, core_id, smt),
                    socket,
                    core_id,
                    smt_id: smt,
                    core_index,
                }
            })
            .collect();

        let numa_nodes = (0..sockets)
            .map(|socket| NumaNode {
                id: socket,
                memory_bytes: memory_per_socket,
                hw_threads: hw_threads
                    .iter()
                    .filter(|t| t.socket == socket)
                    .map(|t| t.os_id)
                    .collect(),
            })
            .collect();

        Ok(TopologySpec {
            sockets,
            cores_per_socket,
            threads_per_core,
            core_ids,
            enumeration,
            apic_layout,
            hw_threads,
            numa_nodes,
        })
    }

    /// Total number of hardware threads in the node.
    pub fn num_hw_threads(&self) -> usize {
        self.hw_threads.len()
    }

    /// Total number of physical cores in the node.
    pub fn num_cores(&self) -> usize {
        (self.sockets * self.cores_per_socket) as usize
    }

    /// Look up a hardware thread by OS processor ID.
    pub fn hw_thread(&self, os_id: HwThreadId) -> Result<&HwThread> {
        self.hw_threads
            .get(os_id)
            .ok_or(MachineError::NoSuchCpu { cpu: os_id, available: self.hw_threads.len() })
    }

    /// Look up a hardware thread by APIC ID.
    pub fn by_apic_id(&self, apic_id: u32) -> Option<&HwThread> {
        self.hw_threads.iter().find(|t| t.apic_id == apic_id)
    }

    /// OS processor IDs on the given socket, SMT thread 0 first (the order
    /// `likwid-topology` prints as "Socket N: ( … )" interleaves SMT
    /// siblings; this returns them grouped by core: core, its siblings, next
    /// core, …).
    pub fn socket_members(&self, socket: u32) -> Vec<HwThreadId> {
        let mut members: Vec<&HwThread> =
            self.hw_threads.iter().filter(|t| t.socket == socket).collect();
        members.sort_by_key(|t| (t.core_index, t.smt_id));
        members.iter().map(|t| t.os_id).collect()
    }

    /// OS processor IDs sharing the physical core of `os_id` (including itself),
    /// ordered by SMT thread number.
    pub fn core_siblings(&self, os_id: HwThreadId) -> Result<Vec<HwThreadId>> {
        let t = self.hw_thread(os_id)?;
        let mut siblings: Vec<&HwThread> = self
            .hw_threads
            .iter()
            .filter(|s| s.socket == t.socket && s.core_index == t.core_index)
            .collect();
        siblings.sort_by_key(|s| s.smt_id);
        Ok(siblings.iter().map(|s| s.os_id).collect())
    }

    /// The physical cores of a socket, each represented by the OS IDs of its
    /// SMT threads (SMT 0 first). Used to pin "physical cores first".
    pub fn socket_cores(&self, socket: u32) -> Vec<Vec<HwThreadId>> {
        (0..self.cores_per_socket)
            .map(|core_index| {
                let mut ids: Vec<&HwThread> = self
                    .hw_threads
                    .iter()
                    .filter(|t| t.socket == socket && t.core_index == core_index)
                    .collect();
                ids.sort_by_key(|t| t.smt_id);
                ids.iter().map(|t| t.os_id).collect()
            })
            .collect()
    }

    /// The NUMA domain a hardware thread belongs to.
    pub fn numa_node_of(&self, os_id: HwThreadId) -> Result<u32> {
        Ok(self.hw_thread(os_id)?.socket)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn westmere() -> TopologySpec {
        TopologySpec::new(
            2,
            6,
            2,
            Some(vec![0, 1, 2, 8, 9, 10]),
            EnumerationOrder::SmtLast,
            12 * 1024 * 1024 * 1024,
        )
        .unwrap()
    }

    #[test]
    fn westmere_matches_the_paper_listing() {
        let topo = westmere();
        assert_eq!(topo.num_hw_threads(), 24);
        assert_eq!(topo.num_cores(), 12);

        // The paper's listing: HWThread 0 -> thread 0, core 0, socket 0;
        // HWThread 3 -> thread 0, core 8, socket 0; HWThread 12 -> thread 1,
        // core 0, socket 0; HWThread 23 -> thread 1, core 10, socket 1.
        let t0 = topo.hw_thread(0).unwrap();
        assert_eq!((t0.smt_id, t0.core_id, t0.socket), (0, 0, 0));
        let t3 = topo.hw_thread(3).unwrap();
        assert_eq!((t3.smt_id, t3.core_id, t3.socket), (0, 8, 0));
        let t12 = topo.hw_thread(12).unwrap();
        assert_eq!((t12.smt_id, t12.core_id, t12.socket), (1, 0, 0));
        let t23 = topo.hw_thread(23).unwrap();
        assert_eq!((t23.smt_id, t23.core_id, t23.socket), (1, 10, 1));

        // Socket membership as printed: Socket 0: ( 0 12 1 13 2 14 3 15 4 16 5 17 )
        assert_eq!(topo.socket_members(0), vec![0, 12, 1, 13, 2, 14, 3, 15, 4, 16, 5, 17]);
        assert_eq!(topo.socket_members(1), vec![6, 18, 7, 19, 8, 20, 9, 21, 10, 22, 11, 23]);
    }

    #[test]
    fn core_siblings_pair_smt_threads() {
        let topo = westmere();
        assert_eq!(topo.core_siblings(0).unwrap(), vec![0, 12]);
        assert_eq!(topo.core_siblings(12).unwrap(), vec![0, 12]);
        assert_eq!(topo.core_siblings(23).unwrap(), vec![11, 23]);
    }

    #[test]
    fn apic_ids_are_unique() {
        let topo = westmere();
        let mut ids: Vec<u32> = topo.hw_threads.iter().map(|t| t.apic_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), topo.num_hw_threads());
    }

    #[test]
    fn numa_nodes_partition_the_threads() {
        let topo = westmere();
        assert_eq!(topo.numa_nodes.len(), 2);
        let total: usize = topo.numa_nodes.iter().map(|n| n.hw_threads.len()).sum();
        assert_eq!(total, topo.num_hw_threads());
        assert_eq!(topo.numa_node_of(0).unwrap(), 0);
        assert_eq!(topo.numa_node_of(23).unwrap(), 1);
    }

    #[test]
    fn sockets_first_enumeration() {
        let topo =
            TopologySpec::new(2, 4, 1, None, EnumerationOrder::SocketsFirstSmtAdjacent, 8 << 30)
                .unwrap();
        // Nehalem EP quad-core without SMT in this order: 0-3 socket 0, 4-7 socket 1.
        assert_eq!(topo.hw_thread(0).unwrap().socket, 0);
        assert_eq!(topo.hw_thread(3).unwrap().socket, 0);
        assert_eq!(topo.hw_thread(4).unwrap().socket, 1);
        assert_eq!(topo.hw_thread(7).unwrap().socket, 1);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(TopologySpec::new(0, 4, 1, None, EnumerationOrder::SmtLast, 1).is_err());
        assert!(TopologySpec::new(2, 4, 1, Some(vec![0, 1]), EnumerationOrder::SmtLast, 1).is_err());
        assert!(
            TopologySpec::new(1, 2, 1, Some(vec![3, 3]), EnumerationOrder::SmtLast, 1).is_err(),
            "duplicate core IDs must be rejected"
        );
    }

    #[test]
    fn socket_cores_lists_physical_cores_with_their_siblings() {
        let topo = westmere();
        let cores = topo.socket_cores(0);
        assert_eq!(cores.len(), 6);
        assert_eq!(cores[0], vec![0, 12]);
        assert_eq!(cores[5], vec![5, 17]);
    }

    #[test]
    fn lookup_by_apic_id() {
        let topo = westmere();
        for t in &topo.hw_threads {
            assert_eq!(topo.by_apic_id(t.apic_id).unwrap().os_id, t.os_id);
        }
        assert!(topo.by_apic_id(0xFFFF_FFFF).is_none());
    }
}

//! Processor vendor and microarchitecture identification.
//!
//! LIKWID dispatches all architecture-specific behaviour (event tables,
//! counter register maps, cpuid topology method) on the CPU family/model
//! reported by `cpuid` leaf 0x1 and the vendor string of leaf 0x0. This
//! module captures that identification logic.

/// CPU vendor as reported by the `cpuid` leaf 0x0 vendor string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Vendor {
    /// "GenuineIntel"
    Intel,
    /// "AuthenticAMD"
    Amd,
}

impl Vendor {
    /// The twelve-character vendor string returned in EBX/EDX/ECX of leaf 0x0.
    pub fn id_string(self) -> &'static str {
        match self {
            Vendor::Intel => "GenuineIntel",
            Vendor::Amd => "AuthenticAMD",
        }
    }

    /// Parse a vendor string back into a [`Vendor`].
    pub fn from_id_string(s: &str) -> Option<Self> {
        match s {
            "GenuineIntel" => Some(Vendor::Intel),
            "AuthenticAMD" => Some(Vendor::Amd),
            _ => None,
        }
    }
}

/// Microarchitectures supported by the tool suite, matching the list in
/// Section II-A of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Microarch {
    /// Intel Pentium M (Banias, Dothan); family 6, model 0x9/0xD.
    PentiumM,
    /// Intel Atom (Diamondville/Silverthorne); family 6, model 0x1C.
    Atom,
    /// Intel Core 2 (Merom/Penryn, 65 nm and 45 nm); family 6, models 0x0F/0x17.
    Core2,
    /// Intel Nehalem (Bloomfield/Gainestown "EP"); family 6, model 0x1A.
    NehalemEp,
    /// Intel Westmere (hexa-core EP); family 6, model 0x2C.
    WestmereEp,
    /// AMD K8 (Opteron/Athlon 64); family 0x0F.
    K8,
    /// AMD K10 (Barcelona, Shanghai, Istanbul); family 0x10.
    K10,
}

impl Microarch {
    /// Vendor this microarchitecture belongs to.
    pub fn vendor(self) -> Vendor {
        match self {
            Microarch::PentiumM
            | Microarch::Atom
            | Microarch::Core2
            | Microarch::NehalemEp
            | Microarch::WestmereEp => Vendor::Intel,
            Microarch::K8 | Microarch::K10 => Vendor::Amd,
        }
    }

    /// The `(family, model)` pair encoded in cpuid leaf 0x1 EAX.
    ///
    /// For family 6 and 15 processors the *display* family/model combines the
    /// base and extended fields; the values here are the display values that
    /// LIKWID's identification switch tests.
    pub fn family_model(self) -> (u32, u32) {
        match self {
            Microarch::PentiumM => (6, 0x0D),
            Microarch::Atom => (6, 0x1C),
            Microarch::Core2 => (6, 0x17),
            Microarch::NehalemEp => (6, 0x1A),
            Microarch::WestmereEp => (6, 0x2C),
            Microarch::K8 => (0x0F, 0x41),
            Microarch::K10 => (0x10, 0x08),
        }
    }

    /// Identify a microarchitecture from the display family/model pair,
    /// mirroring the switch statement in the real tool.
    pub fn from_family_model(vendor: Vendor, family: u32, model: u32) -> Option<Self> {
        match (vendor, family, model) {
            (Vendor::Intel, 6, 0x09) | (Vendor::Intel, 6, 0x0D) => Some(Microarch::PentiumM),
            (Vendor::Intel, 6, 0x1C) => Some(Microarch::Atom),
            (Vendor::Intel, 6, 0x0F) | (Vendor::Intel, 6, 0x17) => Some(Microarch::Core2),
            (Vendor::Intel, 6, 0x1A) | (Vendor::Intel, 6, 0x1E) | (Vendor::Intel, 6, 0x1F) => {
                Some(Microarch::NehalemEp)
            }
            (Vendor::Intel, 6, 0x2C) | (Vendor::Intel, 6, 0x25) => Some(Microarch::WestmereEp),
            (Vendor::Amd, 0x0F, _) => Some(Microarch::K8),
            (Vendor::Amd, 0x10, _) => Some(Microarch::K10),
            _ => None,
        }
    }

    /// Human readable processor name, as printed in the tool headers
    /// ("CPU type: Intel Core 2 45nm processor", …).
    pub fn display_name(self) -> &'static str {
        match self {
            Microarch::PentiumM => "Intel Pentium M processor",
            Microarch::Atom => "Intel Atom processor",
            Microarch::Core2 => "Intel Core 2 45nm processor",
            Microarch::NehalemEp => "Intel Nehalem EP processor",
            Microarch::WestmereEp => "Intel Westmere EP processor",
            Microarch::K8 => "AMD K8 processor",
            Microarch::K10 => "AMD K10 (Istanbul) processor",
        }
    }

    /// Whether the microarchitecture exposes the `cpuid` extended topology
    /// leaf 0xB (introduced with Nehalem).
    pub fn has_leaf_0xb(self) -> bool {
        matches!(self, Microarch::NehalemEp | Microarch::WestmereEp)
    }

    /// Whether the microarchitecture exposes the deterministic cache
    /// parameters leaf 0x4 (introduced with Core 2; Pentium M only has the
    /// descriptor table of leaf 0x2).
    pub fn has_leaf_0x4(self) -> bool {
        matches!(
            self,
            Microarch::Core2 | Microarch::Atom | Microarch::NehalemEp | Microarch::WestmereEp
        )
    }

    /// Whether this is an uncore-capable design (Nehalem and later): the L3
    /// and memory controller are shared per package and counted by dedicated
    /// uncore counters guarded by socket locks in `likwid-perfctr`.
    pub fn has_uncore(self) -> bool {
        matches!(self, Microarch::NehalemEp | Microarch::WestmereEp)
    }

    /// Number of general-purpose core performance counters.
    pub fn num_pmc(self) -> usize {
        match self {
            Microarch::PentiumM | Microarch::Core2 | Microarch::Atom => 2,
            Microarch::NehalemEp | Microarch::WestmereEp => 4,
            Microarch::K8 | Microarch::K10 => 4,
        }
    }

    /// Number of fixed-function counters (INSTR_RETIRED_ANY,
    /// CPU_CLK_UNHALTED_CORE, CPU_CLK_UNHALTED_REF). AMD has none.
    pub fn num_fixed_counters(self) -> usize {
        match self {
            Microarch::Core2 | Microarch::Atom | Microarch::NehalemEp | Microarch::WestmereEp => 3,
            Microarch::PentiumM | Microarch::K8 | Microarch::K10 => 0,
        }
    }

    /// Number of uncore counters per package (Nehalem/Westmere: eight
    /// general-purpose uncore PMCs plus a fixed uncore clock counter).
    pub fn num_uncore_pmc(self) -> usize {
        if self.has_uncore() {
            8
        } else {
            0
        }
    }

    /// All microarchitectures known to the suite.
    pub fn all() -> &'static [Microarch] {
        &[
            Microarch::PentiumM,
            Microarch::Atom,
            Microarch::Core2,
            Microarch::NehalemEp,
            Microarch::WestmereEp,
            Microarch::K8,
            Microarch::K10,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendor_string_round_trips() {
        for v in [Vendor::Intel, Vendor::Amd] {
            assert_eq!(Vendor::from_id_string(v.id_string()), Some(v));
        }
        assert_eq!(Vendor::from_id_string("CyrixInstead"), None);
    }

    #[test]
    fn family_model_round_trips_for_all_archs() {
        for &arch in Microarch::all() {
            let (family, model) = arch.family_model();
            let identified = Microarch::from_family_model(arch.vendor(), family, model);
            assert_eq!(identified, Some(arch), "{arch:?} should identify itself");
        }
    }

    #[test]
    fn counter_counts_match_the_paper_supported_list() {
        // Core 2: two PMCs plus fixed counters (the paper's FLOPS_DP listing
        // relies on INSTR_RETIRED_ANY / CPU_CLK_UNHALTED_CORE being "always
        // counted" in fixed counters).
        assert_eq!(Microarch::Core2.num_pmc(), 2);
        assert_eq!(Microarch::Core2.num_fixed_counters(), 3);
        // Nehalem EP supports uncore events.
        assert!(Microarch::NehalemEp.has_uncore());
        assert!(!Microarch::Core2.has_uncore());
        // AMD has four PMCs and no fixed counters.
        assert_eq!(Microarch::K10.num_pmc(), 4);
        assert_eq!(Microarch::K10.num_fixed_counters(), 0);
    }

    #[test]
    fn leaf_support_progression() {
        assert!(!Microarch::PentiumM.has_leaf_0x4());
        assert!(Microarch::Core2.has_leaf_0x4());
        assert!(!Microarch::Core2.has_leaf_0xb());
        assert!(Microarch::NehalemEp.has_leaf_0xb());
        assert!(Microarch::WestmereEp.has_leaf_0xb());
    }

    #[test]
    fn unknown_family_model_is_rejected() {
        assert_eq!(Microarch::from_family_model(Vendor::Intel, 6, 0x7F), None);
        assert_eq!(Microarch::from_family_model(Vendor::Amd, 0x17, 0x01), None);
    }
}

//! The marker-API listing of Section II-A: two named regions ("Init" and
//! "Benchmark") measured with the FLOPS_DP group on an Intel Core 2 Quad,
//! with automatic accumulation over repeated region executions.
//!
//! Run with `cargo run --example marker_regions`.

use likwid_suite::likwid::marker::MarkerApi;
use likwid_suite::likwid::perfctr::{EventGroupKind, MeasurementSpec, PerfCtr, PerfCtrConfig};
use likwid_suite::perf_events::{EventEngine, EventSample, HwEventKind};
use likwid_suite::x86_machine::{MachinePreset, SimMachine};

/// Simulate one execution of a code region on the given cores.
fn run_region(
    machine: &SimMachine,
    cores: &[usize],
    packed_dp: u64,
    cycles: u64,
    instructions: u64,
) {
    let engine = EventEngine::new(machine);
    let mut sample = EventSample::new(machine.num_hw_threads(), 1);
    for &cpu in cores {
        sample.threads[cpu].add(HwEventKind::SimdPackedDouble, packed_dp);
        sample.threads[cpu].add(HwEventKind::SimdScalarDouble, 1);
        sample.threads[cpu].add(HwEventKind::CoreCycles, cycles);
        sample.threads[cpu].add(HwEventKind::InstructionsRetired, instructions);
    }
    engine.apply(machine, &sample);
}

fn main() {
    let machine = SimMachine::new(MachinePreset::Core2Quad);
    let cores = [0usize, 1, 2, 3];

    println!("{}", machine.header());
    println!("Measuring group FLOPS_DP");

    let mut session = PerfCtr::new(
        &machine,
        PerfCtrConfig {
            cpus: cores.to_vec(),
            spec: MeasurementSpec::Group(EventGroupKind::FLOPS_DP),
        },
    )
    .expect("counter session");
    session.start().expect("start");

    // likwid_markerInit(numberOfThreads, numberOfRegions)
    let mut marker = MarkerApi::init(cores.len(), 2);
    let init = marker.register_region("Init");
    let benchmark = marker.register_region("Benchmark");

    // Region "Init": almost no floating point work.
    for (thread, &core) in cores.iter().enumerate() {
        marker.start_region(thread, core, &session).expect("start Init");
    }
    run_region(&machine, &cores, 0, 450_000, 350_000);
    for (thread, &core) in cores.iter().enumerate() {
        marker.stop_region(thread, core, init, &session).expect("stop Init");
    }

    // Region "Benchmark": executed several times; counts accumulate.
    for _pass in 0..4 {
        for (thread, &core) in cores.iter().enumerate() {
            marker.start_region(thread, core, &session).expect("start Benchmark");
        }
        run_region(&machine, &cores, 2_048_000, 7_145_950, 4_700_600);
        for (thread, &core) in cores.iter().enumerate() {
            marker.stop_region(thread, core, benchmark, &session).expect("stop Benchmark");
        }
    }

    marker.close().expect("markerClose");
    print!("{}", marker.render(&session).expect("render"));
}

//! The likwid-features listing of Section II-D: report the switchable
//! features of a Core 2 processor, toggle the adjacent-cache-line
//! prefetcher, and show the effect on the simulated cache traffic.
//!
//! Run with `cargo run --example prefetcher_toggle`.

use likwid_suite::cache_sim::{Access, HierarchyConfig, NodeCacheSystem, NumaPolicy};
use likwid_suite::likwid::features::FeaturesTool;
use likwid_suite::x86_machine::{MachinePreset, Prefetcher, SimMachine};

/// Stream a few thousand lines through the hierarchy and report the L2
/// demand misses — the quantity the prefetchers hide.
fn l2_demand_misses(machine: &SimMachine) -> u64 {
    let config = HierarchyConfig::from_machine(machine, NumaPolicy::SingleNode { socket: 0 });
    let mut sys = NodeCacheSystem::new(config);
    for i in 0..20_000u64 {
        sys.access(0, Access::load(i * 64));
    }
    sys.stats().level_total(2).misses
}

fn main() {
    let machine = SimMachine::new(MachinePreset::Core2Duo);
    let tool = FeaturesTool::new(&machine);

    println!("{}", tool.render(0).expect("feature report"));
    let before = l2_demand_misses(&machine);
    println!("L2 demand misses while streaming 20k lines (all prefetchers on): {before}");

    println!("\n$ likwid-features -u CL_PREFETCHER -u HW_PREFETCHER\n");
    tool.disable_prefetcher(0, Prefetcher::AdjacentLine).expect("disable CL");
    tool.disable_prefetcher(0, Prefetcher::Hardware).expect("disable HW");
    println!("{}", tool.render(0).expect("feature report"));

    let after = l2_demand_misses(&machine);
    println!("L2 demand misses with the L2 prefetchers disabled:            {after}");
    println!(
        "\nDisabling the prefetchers exposes {}x more demand misses on this streaming pattern.",
        if before == 0 { 0 } else { after / before.max(1) }
    );
}

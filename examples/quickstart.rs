//! Quickstart: probe a node's topology and measure a small kernel with the
//! FLOPS_DP event group — the two things a new LIKWID user does first —
//! then consume the result through the typed report API instead of
//! scraping the listing.
//!
//! Run with `cargo run --example quickstart`.

use likwid_suite::likwid::perfctr::{EventGroupKind, MeasurementSpec, PerfCtr, PerfCtrConfig};
use likwid_suite::likwid::report::{Json, Render, Report};
use likwid_suite::likwid::topology::CpuTopology;
use likwid_suite::perf_events::{EventEngine, EventSample, HwEventKind};
use likwid_suite::x86_machine::{MachinePreset, SimMachine};

fn main() {
    // 1. likwid-topology: probe the node through cpuid and print the listing.
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let topology = CpuTopology::probe(&machine).expect("topology probe");
    println!("{}", topology.render_text(true));
    println!("{}", topology.render_ascii_socket(0));

    // 2. likwid-perfctr in wrapper mode: measure the FLOPS_DP group on four
    //    cores while a (simulated) kernel runs.
    let mut session = PerfCtr::new(
        &machine,
        PerfCtrConfig {
            cpus: vec![0, 1, 2, 3],
            spec: MeasurementSpec::Group(EventGroupKind::FLOPS_DP),
        },
    )
    .expect("counter session");

    let (_, results) = session
        .measure(|machine| {
            // The "application": every core retires 8.192 million packed
            // double-precision SSE operations in about 10 ms of cycles.
            let engine = EventEngine::new(machine);
            let mut sample =
                EventSample::new(machine.num_hw_threads(), machine.topology().sockets as usize);
            for cpu in 0..4 {
                sample.threads[cpu].set(HwEventKind::SimdPackedDouble, 8_192_000);
                sample.threads[cpu].set(HwEventKind::SimdScalarDouble, 1);
                sample.threads[cpu].set(HwEventKind::InstructionsRetired, 18_802_400);
                sample.threads[cpu].set(HwEventKind::CoreCycles, 28_583_800);
            }
            engine.apply(machine, &sample);
        })
        .expect("measurement");

    println!("Measuring group FLOPS_DP");
    println!("{}", results.render());

    // 3. Scriptable consumption: the measurement is a typed document — read
    //    the derived metric straight out of the metrics table instead of
    //    string-matching the rendered listing.
    let report = results.report();
    let metrics = report.table("metrics").expect("FLOPS_DP defines derived metrics");
    let mflops = metrics
        .cell("DP MFlops/s", "core 0")
        .and_then(|v| v.as_real())
        .expect("typed metric value");
    let packed = report
        .table("events")
        .and_then(|t| t.cell("FP_COMP_OPS_EXE_SSE_FP_PACKED", "core 0"))
        .and_then(|v| v.as_count())
        .expect("typed event count");
    println!("typed consumption: core 0 retired {packed} packed DP ops at {mflops:.0} MFlops/s");

    // The same document survives the process boundary: what the binary
    // prints with `-O json` parses back into an equal report.
    let wire = Json.render(&report);
    let parsed = Report::from_json(&wire).expect("valid JSON");
    assert_eq!(parsed, report);
    println!("JSON round-trip: {} bytes, equal document", wire.len());
}

//! Quickstart: probe a node's topology and measure a small kernel with the
//! FLOPS_DP event group — the two things a new LIKWID user does first.
//!
//! Run with `cargo run --example quickstart`.

use likwid_suite::likwid::perfctr::{EventGroupKind, MeasurementSpec, PerfCtr, PerfCtrConfig};
use likwid_suite::likwid::topology::CpuTopology;
use likwid_suite::perf_events::{EventEngine, EventSample, HwEventKind};
use likwid_suite::x86_machine::{MachinePreset, SimMachine};

fn main() {
    // 1. likwid-topology: probe the node through cpuid and print the listing.
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let topology = CpuTopology::probe(&machine).expect("topology probe");
    println!("{}", topology.render_text(true));
    println!("{}", topology.render_ascii_socket(0));

    // 2. likwid-perfctr in wrapper mode: measure the FLOPS_DP group on four
    //    cores while a (simulated) kernel runs.
    let mut session = PerfCtr::new(
        &machine,
        PerfCtrConfig {
            cpus: vec![0, 1, 2, 3],
            spec: MeasurementSpec::Group(EventGroupKind::FLOPS_DP),
        },
    )
    .expect("counter session");

    let (_, results) = session
        .measure(|machine| {
            // The "application": every core retires 8.192 million packed
            // double-precision SSE operations in about 10 ms of cycles.
            let engine = EventEngine::new(machine);
            let mut sample =
                EventSample::new(machine.num_hw_threads(), machine.topology().sockets as usize);
            for cpu in 0..4 {
                sample.threads[cpu].set(HwEventKind::SimdPackedDouble, 8_192_000);
                sample.threads[cpu].set(HwEventKind::SimdScalarDouble, 1);
                sample.threads[cpu].set(HwEventKind::InstructionsRetired, 18_802_400);
                sample.threads[cpu].set(HwEventKind::CoreCycles, 28_583_800);
            }
            engine.apply(machine, &sample);
        })
        .expect("measurement");

    println!("Measuring group FLOPS_DP");
    println!("{}", results.render());
}

//! Case studies 2 and 3 in miniature: measure the memory traffic of the
//! three Jacobi variants with likwid-perfctr uncore events (Table II) and
//! show the effect of wrong pinning on the wavefront version (Figure 11).
//!
//! Run with `cargo run --release --example stencil_counters [size]`.

use likwid_suite::workloads::jacobi::{Jacobi, JacobiConfig, JacobiVariant};
use likwid_suite::x86_machine::{MachinePreset, SimMachine};

fn main() {
    let size: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(104);
    let machine = SimMachine::new(MachinePreset::NehalemEp2S);
    let jacobi = Jacobi::new(&machine);

    println!("3D Jacobi, N = {size}, 4 sweeps, one Nehalem EP socket (cores 0-3)\n");
    println!(
        "{:<28} {:>14} {:>14} {:>12} {:>10}",
        "variant", "L3 lines in", "L3 lines out", "volume [GB]", "MLUPS"
    );
    for variant in [JacobiVariant::Threaded, JacobiVariant::ThreadedNt, JacobiVariant::Wavefront] {
        let r =
            jacobi.run(&JacobiConfig { size, time_steps: 4, placement: vec![0, 1, 2, 3], variant });
        println!(
            "{:<28} {:>14} {:>14} {:>12.2} {:>10.0}",
            variant.name(),
            r.l3_lines_in,
            r.l3_lines_out,
            r.memory_bytes as f64 / 1e9,
            r.mlups
        );
    }

    let wrong = jacobi.run(&JacobiConfig {
        size,
        time_steps: 4,
        placement: vec![0, 1, 4, 5],
        variant: JacobiVariant::Wavefront,
    });
    println!(
        "{:<28} {:>14} {:>14} {:>12.2} {:>10.0}",
        "wavefront (2 per socket!)",
        wrong.l3_lines_in,
        wrong.l3_lines_out,
        wrong.memory_bytes as f64 / 1e9,
        wrong.mlups
    );
    println!();
    println!("Splitting the wavefront group across the sockets breaks the shared-cache hand-off");
    println!("and the optimization backfires — the topology-aware pinning of Figure 11.");
}

//! Case study 1 in miniature: the influence of thread pinning on STREAM
//! triad bandwidth (Figures 4 and 5), comparing unpinned runs against
//! likwid-pin placements on the Westmere EP node.
//!
//! Run with `cargo run --release --example stream_pinning`.

use likwid_suite::workloads::openmp::{CompilerPersonality, PlacementPolicy};
use likwid_suite::workloads::stats::BoxStats;
use likwid_suite::workloads::stream::StreamExperiment;
use likwid_suite::x86_machine::MachinePreset;

fn main() {
    let mut experiment =
        StreamExperiment::new(MachinePreset::WestmereEp2S, CompilerPersonality::IntelIcc);
    experiment.samples_per_point = 50;

    println!("STREAM triad on {}, Intel icc personality", experiment.machine().preset().id());
    println!(
        "{:>7} | {:>28} | {:>28}",
        "threads", "unpinned median [q1..q3]", "likwid-pin median [q1..q3]"
    );
    for threads in [1usize, 2, 4, 6, 8, 12, 16, 24] {
        let unpinned = BoxStats::from_samples(&experiment.run_samples(
            threads,
            &PlacementPolicy::Unpinned,
            42,
        ))
        .unwrap();
        let pinned = BoxStats::from_samples(&experiment.run_samples(
            threads,
            &experiment.paper_pinned_policy(threads),
            42,
        ))
        .unwrap();
        println!(
            "{:7} | {:10.0} [{:7.0}..{:7.0}] | {:10.0} [{:7.0}..{:7.0}]  MB/s",
            threads, unpinned.median, unpinned.q1, unpinned.q3, pinned.median, pinned.q1, pinned.q3
        );
    }
    println!();
    println!(
        "Pinning removes the placement lottery: the pinned quartiles collapse onto the median,"
    );
    println!(
        "while unpinned runs spread widely — the effect shown in Figures 4 and 5 of the paper."
    );
}

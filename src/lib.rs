//! Umbrella crate for the LIKWID reproduction.
//!
//! Re-exports the substrate and tool crates under one roof so that examples
//! and downstream users can depend on a single crate.

pub use likwid;
pub use likwid_affinity as affinity;
pub use likwid_cache_sim as cache_sim;
pub use likwid_daemon as daemon;
pub use likwid_fleet as fleet;
pub use likwid_papi_compat as papi_compat;
pub use likwid_perf_events as perf_events;
pub use likwid_workloads as workloads;
pub use likwid_x86_machine as x86_machine;

//! Equivalence property test for the optimized cache-simulator hot path.
//!
//! The presence-directory coherence walk, the precomputed back-invalidation
//! maps and the batched `access_run` entry point are pure optimizations:
//! for any access stream they must produce **bit-identical** [`NodeStats`]
//! to the slow pre-optimization reference walk
//! (`likwid_cache_sim::reference`, compiled in via the `reference`
//! feature). These properties replay randomized multi-thread streams —
//! single accesses and strided runs, loads, stores and non-temporal
//! stores, with and without prefetchers — through both implementations.

use proptest::prelude::*;

use likwid_suite::cache_sim::reference::ReferenceCacheSystem;
use likwid_suite::cache_sim::{
    Access, AccessKind, CacheLevelConfig, HierarchyConfig, NodeCacheSystem, NumaPolicy,
    PrefetchConfig, ReplacementPolicy, ReplayQueue, RunOp, ShardedCacheSystem, WritePolicy,
};

/// A small synthetic two-socket hierarchy with an inclusive shared L3, so
/// the streams exercise coherence invalidations, inclusive back-invalidation
/// and cross-socket traffic on short runs.
fn tiny_hierarchy(prefetch_on: bool) -> HierarchyConfig {
    let level = |level, sets, ways, shared, inclusive| CacheLevelConfig {
        level,
        sets,
        ways,
        line_size: 64,
        inclusive,
        shared_by_threads: shared,
        write_policy: WritePolicy::WriteBackAllocate,
        replacement: ReplacementPolicy::Lru,
    };
    HierarchyConfig {
        levels: vec![
            level(1, 8, 2, 1, false),
            level(2, 32, 4, 1, false),
            level(3, 128, 8, 2, true),
        ],
        num_threads: 4,
        thread_socket: vec![0, 0, 1, 1],
        thread_core: vec![0, 1, 2, 3],
        num_sockets: 2,
        prefetch: if prefetch_on {
            PrefetchConfig::all_enabled()
        } else {
            PrefetchConfig::all_disabled()
        },
        numa_policy: NumaPolicy::interleave(4096),
        memory_line_size: 64,
    }
}

fn kind_of(selector: usize) -> AccessKind {
    match selector {
        0 => AccessKind::Store,
        1 => AccessKind::NonTemporalStore,
        2 => AccessKind::Prefetch,
        _ => AccessKind::Load,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized multi-thread single-access streams: the directory-driven
    /// coherence walk must produce the same counters as the broadcast walk.
    #[test]
    fn directory_path_matches_reference_on_single_accesses(
        ops in prop::collection::vec(
            (0usize..4, 0u64..4096, 0usize..6, 1u32..96),
            1..300,
        ),
        prefetch_on in prop::bool::ANY,
    ) {
        let mut optimized = NodeCacheSystem::new(tiny_hierarchy(prefetch_on));
        let mut reference = ReferenceCacheSystem::new(tiny_hierarchy(prefetch_on));
        for (thread, line, kind_sel, size) in ops {
            let access = Access { address: line * 64 + (size as u64 % 64), size, kind: kind_of(kind_sel) };
            let got = optimized.access(thread, access);
            let want = reference.access(thread, access);
            prop_assert_eq!(got, want, "hit level diverged");
        }
        prop_assert_eq!(optimized.stats(), reference.stats());
    }

    /// Randomized batched runs: `access_run` must be indistinguishable from
    /// issuing every element of the run individually — including sub-line
    /// strides (collapsed repeats), negative strides, zero strides and
    /// line-straddling element sizes.
    #[test]
    fn batched_runs_match_reference_element_streams(
        runs in prop::collection::vec(
            (0usize..4, 0u64..(1 << 18), 0usize..7, 0u64..96, 0usize..4),
            1..40,
        ),
        prefetch_on in prop::bool::ANY,
    ) {
        let strides: [i64; 7] = [-64, -8, 0, 8, 24, 64, 192];
        let sizes: [u32; 7] = [8, 8, 8, 8, 16, 64, 8];
        let mut optimized = NodeCacheSystem::new(tiny_hierarchy(prefetch_on));
        let mut reference = ReferenceCacheSystem::new(tiny_hierarchy(prefetch_on));
        for (thread, base, stride_sel, count, kind_sel) in runs {
            let stride = strides[stride_sel];
            let size = sizes[stride_sel];
            let kind = kind_of(kind_sel);
            let got = optimized.access_run(thread, base, stride, count, size, kind);
            let mut want = if kind == AccessKind::NonTemporalStore {
                likwid_suite::cache_sim::HitLevel::Streaming
            } else {
                likwid_suite::cache_sim::HitLevel::L1
            };
            for i in 0..count {
                let address = base.wrapping_add((i as i64).wrapping_mul(stride) as u64);
                let level = reference.access(thread, Access { address, size, kind });
                if level > want {
                    want = level;
                }
            }
            if count > 0 {
                prop_assert_eq!(got, want, "worst hit level diverged");
            }
        }
        prop_assert_eq!(optimized.stats(), reference.stats());
    }

    /// Three-way equivalence on *partitioned* streams (each thread works in
    /// its own 64 MB region, so most epochs pass the sharded engine's
    /// conflict analysis and replay in parallel): the reference broadcast
    /// walk, the sequential flat engine draining the replay queue, and the
    /// parallel sharded engine at several worker counts must all produce
    /// bit-identical [`likwid_suite::cache_sim::NodeStats`].
    #[test]
    fn sharded_engine_matches_reference_on_partitioned_streams(
        runs in prop::collection::vec(
            (0usize..4, prop::bool::ANY, 0u64..4096, 0usize..4, 0u64..48, 0usize..4),
            1..60,
        ),
        prefetch_on in prop::bool::ANY,
    ) {
        let queue = partitioned_queue(&runs, |t, offset| ((t as u64 + 1) << 26) + offset * 64);
        three_way_equivalence(&queue, prefetch_on)?;
    }

    /// Three-way equivalence on *overlapping* streams: every thread works in
    /// the same small address window, so stores constantly conflict across
    /// the socket shards and the sharded engine exercises its exact serial
    /// fallback (including cross-shard invalidation) on nearly every epoch.
    #[test]
    fn sharded_engine_matches_reference_on_overlapping_streams(
        runs in prop::collection::vec(
            (0usize..4, prop::bool::ANY, 0u64..512, 0usize..4, 0u64..48, 0usize..4),
            1..60,
        ),
        prefetch_on in prop::bool::ANY,
    ) {
        let queue = partitioned_queue(&runs, |_t, offset| offset * 64);
        three_way_equivalence(&queue, prefetch_on)?;
    }

    /// Mixed workloads on the directory path keep the directory a superset
    /// of the true holders (the invariant coherence correctness rests on).
    #[test]
    fn directory_stays_a_superset_of_holders(
        ops in prop::collection::vec((0usize..4, 0u64..2048, prop::bool::ANY), 1..400),
    ) {
        let mut sys = NodeCacheSystem::new(tiny_hierarchy(true));
        for (thread, line, is_store) in ops {
            let kind = if is_store { AccessKind::Store } else { AccessKind::Load };
            sys.access(thread, Access { address: line * 64, size: 8, kind });
        }
        sys.verify_directory_superset();
    }
}

/// Build a replay queue from drawn run tuples. `base_of(thread, offset)`
/// decides the address layout — per-thread regions for the partitioned
/// strategy, one shared window for the overlapping one.
fn partitioned_queue(
    runs: &[(usize, bool, u64, usize, u64, usize)],
    base_of: impl Fn(usize, u64) -> u64,
) -> ReplayQueue {
    let strides: [i64; 4] = [64, -64, 8, 192];
    let sizes: [u32; 4] = [64, 8, 8, 8];
    let mut queue = ReplayQueue::new(4);
    for &(thread, epoch_break, offset, stride_sel, count, kind_sel) in runs {
        if epoch_break {
            queue.begin_epoch();
        }
        queue.push(
            thread,
            RunOp {
                base: base_of(thread, offset),
                stride: strides[stride_sel],
                count,
                size: sizes[stride_sel],
                kind: kind_of(kind_sel),
            },
        );
    }
    queue
}

/// Drain `queue` through the reference broadcast walk (element by element),
/// the sequential flat engine and the sharded engine at worker counts 1 and
/// 3, and require bit-identical statistics from all four.
fn three_way_equivalence(
    queue: &ReplayQueue,
    prefetch_on: bool,
) -> std::result::Result<(), TestCaseError> {
    let mut reference = ReferenceCacheSystem::new(tiny_hierarchy(prefetch_on));
    for epoch in queue.epochs() {
        for &(thread, op) in epoch {
            for i in 0..op.count {
                let address = op.base.wrapping_add((i as i64).wrapping_mul(op.stride) as u64);
                reference.access(thread, Access { address, size: op.size, kind: op.kind });
            }
        }
    }
    let want = reference.stats();

    let mut sequential = NodeCacheSystem::new(tiny_hierarchy(prefetch_on));
    sequential.replay(queue);
    prop_assert_eq!(&sequential.stats(), &want, "sequential flat engine vs reference");

    for workers in [1usize, 3] {
        let mut sharded = ShardedCacheSystem::with_workers(tiny_hierarchy(prefetch_on), workers);
        sharded.replay(queue);
        prop_assert_eq!(
            &sharded.stats(),
            &want,
            "sharded engine ({} workers) vs reference",
            workers
        );
    }
    Ok(())
}

/// The same three-way equivalence on a real machine preset: a two-socket
/// hierarchy with threads straddling both sockets, mixing socket-private
/// epochs (which shard in parallel) with epochs whose stores land in the
/// other socket's working set (which serialize). Deterministic, so the
/// parallel/serial split is asserted exactly.
fn two_socket_preset_case(preset: likwid_suite::x86_machine::MachinePreset) {
    use likwid_suite::x86_machine::SimMachine;

    let machine = SimMachine::new(preset);
    let config = HierarchyConfig::from_machine(&machine, NumaPolicy::interleave_over(4096, 2));
    // The first two hardware threads of each socket.
    let topo = machine.topology();
    let mut threads = Vec::new();
    for socket in [0u32, 1] {
        let mut of_socket = (0..topo.num_hw_threads())
            .filter(|&t| topo.hw_thread(t).map(|h| h.socket) == Ok(socket));
        threads.push(of_socket.next().expect("socket populated"));
        threads.push(of_socket.next().expect("two threads per socket"));
    }

    let mut queue = ReplayQueue::new(config.num_threads);
    for round in 0..6u64 {
        // A socket-private epoch: every thread streams its own region.
        queue.begin_epoch();
        for (i, &t) in threads.iter().enumerate() {
            let region = ((i as u64 + 1) << 28) + round * 8192;
            queue.push(t, RunOp::store_lines(region, 96));
            queue.push(t, RunOp::load_lines(region, 96));
        }
        // A socket-straddling epoch: thread 0 (socket 0) stores the window
        // thread 4 (socket 1) reads — a genuine cross-socket conflict.
        queue.begin_epoch();
        queue.push(threads[0], RunOp::store_lines(1 << 40, 64));
        queue.push(threads[2], RunOp::load_lines(1 << 40, 64));
    }

    let mut reference = ReferenceCacheSystem::new(config.clone());
    for epoch in queue.epochs() {
        for &(thread, op) in epoch {
            for i in 0..op.count {
                let address = op.base.wrapping_add((i as i64).wrapping_mul(op.stride) as u64);
                reference.access(thread, Access { address, size: op.size, kind: op.kind });
            }
        }
    }
    let want = reference.stats();

    let mut sequential = NodeCacheSystem::new(config.clone());
    sequential.replay(&queue);
    assert_eq!(sequential.stats(), want, "sequential flat engine vs reference");

    for workers in [1usize, 2, 4] {
        let mut sharded = ShardedCacheSystem::with_workers(config.clone(), workers);
        sharded.replay(&queue);
        assert_eq!(sharded.stats(), want, "sharded engine ({workers} workers) vs reference");
        assert_eq!(sharded.epochs_parallel(), 6, "the private epochs shard");
        assert_eq!(sharded.epochs_serial(), 6, "the straddling epochs serialize");
    }
}

#[test]
fn sharded_engine_matches_reference_on_the_nehalem_preset() {
    two_socket_preset_case(likwid_suite::x86_machine::MachinePreset::NehalemEp2S);
}

#[test]
fn sharded_engine_matches_reference_on_the_westmere_preset() {
    two_socket_preset_case(likwid_suite::x86_machine::MachinePreset::WestmereEp2S);
}

//! Equivalence property test for the optimized cache-simulator hot path.
//!
//! The presence-directory coherence walk, the precomputed back-invalidation
//! maps and the batched `access_run` entry point are pure optimizations:
//! for any access stream they must produce **bit-identical** [`NodeStats`]
//! to the slow pre-optimization reference walk
//! (`likwid_cache_sim::reference`, compiled in via the `reference`
//! feature). These properties replay randomized multi-thread streams —
//! single accesses and strided runs, loads, stores and non-temporal
//! stores, with and without prefetchers — through both implementations.

use proptest::prelude::*;

use likwid_suite::cache_sim::reference::ReferenceCacheSystem;
use likwid_suite::cache_sim::{
    Access, AccessKind, CacheLevelConfig, HierarchyConfig, NodeCacheSystem, NumaPolicy,
    PrefetchConfig, ReplacementPolicy, WritePolicy,
};

/// A small synthetic two-socket hierarchy with an inclusive shared L3, so
/// the streams exercise coherence invalidations, inclusive back-invalidation
/// and cross-socket traffic on short runs.
fn tiny_hierarchy(prefetch_on: bool) -> HierarchyConfig {
    let level = |level, sets, ways, shared, inclusive| CacheLevelConfig {
        level,
        sets,
        ways,
        line_size: 64,
        inclusive,
        shared_by_threads: shared,
        write_policy: WritePolicy::WriteBackAllocate,
        replacement: ReplacementPolicy::Lru,
    };
    HierarchyConfig {
        levels: vec![
            level(1, 8, 2, 1, false),
            level(2, 32, 4, 1, false),
            level(3, 128, 8, 2, true),
        ],
        num_threads: 4,
        thread_socket: vec![0, 0, 1, 1],
        thread_core: vec![0, 1, 2, 3],
        num_sockets: 2,
        prefetch: if prefetch_on {
            PrefetchConfig::all_enabled()
        } else {
            PrefetchConfig::all_disabled()
        },
        numa_policy: NumaPolicy::interleave(4096),
        memory_line_size: 64,
    }
}

fn kind_of(selector: usize) -> AccessKind {
    match selector {
        0 => AccessKind::Store,
        1 => AccessKind::NonTemporalStore,
        2 => AccessKind::Prefetch,
        _ => AccessKind::Load,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized multi-thread single-access streams: the directory-driven
    /// coherence walk must produce the same counters as the broadcast walk.
    #[test]
    fn directory_path_matches_reference_on_single_accesses(
        ops in prop::collection::vec(
            (0usize..4, 0u64..4096, 0usize..6, 1u32..96),
            1..300,
        ),
        prefetch_on in prop::bool::ANY,
    ) {
        let mut optimized = NodeCacheSystem::new(tiny_hierarchy(prefetch_on));
        let mut reference = ReferenceCacheSystem::new(tiny_hierarchy(prefetch_on));
        for (thread, line, kind_sel, size) in ops {
            let access = Access { address: line * 64 + (size as u64 % 64), size, kind: kind_of(kind_sel) };
            let got = optimized.access(thread, access);
            let want = reference.access(thread, access);
            prop_assert_eq!(got, want, "hit level diverged");
        }
        prop_assert_eq!(optimized.stats(), reference.stats());
    }

    /// Randomized batched runs: `access_run` must be indistinguishable from
    /// issuing every element of the run individually — including sub-line
    /// strides (collapsed repeats), negative strides, zero strides and
    /// line-straddling element sizes.
    #[test]
    fn batched_runs_match_reference_element_streams(
        runs in prop::collection::vec(
            (0usize..4, 0u64..(1 << 18), 0usize..7, 0u64..96, 0usize..4),
            1..40,
        ),
        prefetch_on in prop::bool::ANY,
    ) {
        let strides: [i64; 7] = [-64, -8, 0, 8, 24, 64, 192];
        let sizes: [u32; 7] = [8, 8, 8, 8, 16, 64, 8];
        let mut optimized = NodeCacheSystem::new(tiny_hierarchy(prefetch_on));
        let mut reference = ReferenceCacheSystem::new(tiny_hierarchy(prefetch_on));
        for (thread, base, stride_sel, count, kind_sel) in runs {
            let stride = strides[stride_sel];
            let size = sizes[stride_sel];
            let kind = kind_of(kind_sel);
            let got = optimized.access_run(thread, base, stride, count, size, kind);
            let mut want = if kind == AccessKind::NonTemporalStore {
                likwid_suite::cache_sim::HitLevel::Streaming
            } else {
                likwid_suite::cache_sim::HitLevel::L1
            };
            for i in 0..count {
                let address = base.wrapping_add((i as i64).wrapping_mul(stride) as u64);
                let level = reference.access(thread, Access { address, size, kind });
                if level > want {
                    want = level;
                }
            }
            if count > 0 {
                prop_assert_eq!(got, want, "worst hit level diverged");
            }
        }
        prop_assert_eq!(optimized.stats(), reference.stats());
    }

    /// Mixed workloads on the directory path keep the directory a superset
    /// of the true holders (the invariant coherence correctness rests on).
    #[test]
    fn directory_stays_a_superset_of_holders(
        ops in prop::collection::vec((0usize..4, 0u64..2048, prop::bool::ANY), 1..400),
    ) {
        let mut sys = NodeCacheSystem::new(tiny_hierarchy(true));
        for (thread, line, is_store) in ops {
            let kind = if is_store { AccessKind::Store } else { AccessKind::Load };
            sys.access(thread, Access { address: line * 64, size: 8, kind });
        }
        sys.verify_directory_superset();
    }
}

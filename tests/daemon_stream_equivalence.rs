//! Streamed daemon sessions reconstruct the post-mortem result
//! bit-identically.
//!
//! A solo daemon session streams per-interval frames over the NDJSON wire
//! protocol; the client's `StreamAccumulator` rebuilds a `TimelineResult`
//! from nothing but those frames. Because the wire codec is lossless
//! (64-bit counts stay integers, floats round-trip shortest-exactly) and
//! the broker's coverage scale is exactly 1 for an uncontended session,
//! the reconstructed result must render byte-identically to the report of
//! a local `likwid-perfctr -t` run with the same configuration — across
//! presets, core-only, uncore, multiplexed and custom event specs. The
//! same holds for `Experiment::via_daemon` against `Experiment::run`.

use likwid_suite::daemon::client::StreamAccumulator;
use likwid_suite::daemon::{Daemon, Frame, OpenRequest};
use likwid_suite::likwid::perfctr::timeline::run_demo_timeline;
use likwid_suite::likwid::perfctr::{parse_interval, parse_measurement_spec, PerfCtrConfig};
use likwid_suite::likwid::report::{Ascii, Render};
use likwid_suite::perf_events::EventEngine;
use likwid_suite::workloads::kernels::kernel_by_name;
use likwid_suite::workloads::{Experiment, PlacementPolicy};
use likwid_suite::x86_machine::{MachinePreset, SimMachine};

fn request(cpus: &str, group: &str, interval: &str, duration: &str) -> OpenRequest {
    OpenRequest {
        machine: None,
        cpus: cpus.to_string(),
        group: group.to_string(),
        interval: interval.to_string(),
        duration: duration.to_string(),
    }
}

/// Stream one solo daemon session, push every frame through a wire
/// round-trip (encode to its NDJSON line, parse back), and reconstruct.
fn stream_via_wire(preset: MachinePreset, request: &OpenRequest) -> StreamAccumulator {
    let machine = SimMachine::new(preset);
    let daemon = Daemon::new(&machine);
    let mut handle = daemon.open(request).expect("session admitted");

    let reparse =
        |frame: Frame| -> Frame { Frame::from_line(&frame.to_line()).expect("wire round-trip") };
    let opened = match reparse(Frame::Opened(handle.opened().clone())) {
        Frame::Opened(opened) => opened,
        other => panic!("expected opened, got {other:?}"),
    };
    let mut accumulator = StreamAccumulator::new(opened);
    while let Some(interval) = handle.next_interval().expect("interval") {
        match reparse(Frame::Interval(interval)) {
            Frame::Interval(interval) => accumulator.push(interval).expect("in order"),
            other => panic!("expected interval, got {other:?}"),
        }
    }
    let (done, _result) = handle.finish().expect("finish");
    match reparse(Frame::Done(done)) {
        Frame::Done(done) => accumulator.complete(done).expect("consistent"),
        other => panic!("expected done, got {other:?}"),
    }
    accumulator
}

#[test]
fn streamed_frames_reconstruct_the_post_mortem_report_byte_identically() {
    let cases: &[(MachinePreset, &str, &str)] = &[
        // (preset, cpus, group): core-only, uncore, multiplexed (group
        // rotation + coverage extrapolation), custom event list (raw
        // counts, no derived metrics).
        (MachinePreset::WestmereEp2S, "0,1", "FLOPS_DP"),
        (MachinePreset::WestmereEp2S, "0,6", "MEM"),
        (MachinePreset::WestmereEp2S, "0,1,2", "FLOPS_DP,MEM,L3"),
        (MachinePreset::NehalemEp2S, "0,1", "L3CACHE"),
        (MachinePreset::NehalemEp2S, "0", "INSTR_RETIRED_ANY:FIXC0,CPU_CLK_UNHALTED_CORE:FIXC1"),
        (MachinePreset::Core2Quad, "0,1,2,3", "FLOPS_DP,L2"),
    ];
    for &(preset, cpus, group) in cases {
        let context = format!("{} cpus={cpus} -g {group}", preset.id());
        let req = request(cpus, group, "2ms", "10ms");
        let accumulator = stream_via_wire(preset, &req);
        accumulator.verify_telescoping().unwrap_or_else(|e| panic!("{context}: {e}"));
        let streamed = accumulator.result().expect("reconstruction");

        // The reference: a local timeline run of the demo app on a fresh
        // machine with the identical configuration.
        let machine = SimMachine::new(preset);
        let engine = EventEngine::new(&machine);
        let spec = parse_measurement_spec(group, engine.table()).expect("spec parses");
        let config =
            PerfCtrConfig { cpus: cpus.split(',').map(|c| c.parse().unwrap()).collect(), spec };
        let interval_s = parse_interval("2ms").expect("interval");
        let duration_s = parse_interval("10ms").expect("duration");
        let local = run_demo_timeline(&machine, config, interval_s, duration_s)
            .expect("local timeline run");

        assert_eq!(
            Ascii.render(&streamed.report()),
            Ascii.render(&local.report()),
            "{context}: streamed reconstruction diverges from the post-mortem report"
        );
        assert_eq!(streamed.aggregate, local.aggregate, "{context}: raw aggregates");
        assert_eq!(streamed.extrapolated, local.extrapolated, "{context}: extrapolated");
        assert_eq!(streamed.intervals.len(), local.intervals.len(), "{context}: intervals");
        for (s, l) in streamed.intervals.iter().zip(&local.intervals) {
            assert_eq!(s.counts, l.counts, "{context}: interval counts");
            assert!(
                s.t_start_s == l.t_start_s && s.t_end_s == l.t_end_s,
                "{context}: interval boundaries diverge"
            );
        }
    }
}

#[test]
fn via_daemon_matches_a_local_experiment_run_bit_identically() {
    let preset = MachinePreset::WestmereEp2S;
    let kernel = kernel_by_name("triad", 2 << 20, 1).expect("registered kernel");
    let spec_machine = SimMachine::new(preset);
    let spec_engine = EventEngine::new(&spec_machine);
    let spec = parse_measurement_spec("FLOPS_DP,MEM", spec_engine.table()).expect("spec");
    let experiment = |dt: f64| {
        Experiment::on(preset)
            .placement(PlacementPolicy::LikwidPin(vec![0, 1]))
            .counters(spec.clone())
            .timeline(dt)
    };

    // Probe the kernel's runtime to pick an interval yielding ~7 slices.
    let probe = Experiment::on(preset)
        .placement(PlacementPolicy::LikwidPin(vec![0, 1]))
        .run(kernel.as_ref())
        .expect("probe");
    let dt = probe.first().runtime_s / 7.0;

    let local = experiment(dt).run(kernel.as_ref()).expect("local run");
    let machine = SimMachine::new(preset);
    let daemon = Daemon::new(&machine);
    let served = experiment(dt).via_daemon(kernel.as_ref(), &daemon).expect("daemon run");
    assert!(daemon.is_quiescent(), "via_daemon releases its session");

    let local_timeline = local.timeline.as_ref().expect("local timeline");
    let served_timeline = served.timeline.as_ref().expect("served timeline");
    assert_eq!(
        Ascii.render(&served_timeline.report()),
        Ascii.render(&local_timeline.report()),
        "via_daemon must reproduce the local timeline report byte-for-byte"
    );
    assert_eq!(served_timeline.aggregate, local_timeline.aggregate);
    assert_eq!(served_timeline.extrapolated, local_timeline.extrapolated);
    assert_eq!(served.measured_cpus, local.measured_cpus);
    // The unmeasured workload runs are unaffected by who served the
    // counters.
    assert_eq!(served.first().runtime_s, local.first().runtime_s);
}

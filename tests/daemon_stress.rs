//! Daemon stress: hundreds of concurrent sessions over one machine —
//! core-only and uncore mixed, overlapping cpu sets, clients vanishing
//! mid-run — must all terminate, telescope exactly, and leak no broker
//! state.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

use likwid_suite::daemon::client::StreamAccumulator;
use likwid_suite::daemon::{Daemon, Frame, OpenRequest};
use likwid_suite::x86_machine::{MachinePreset, SimMachine};

const SESSIONS: usize = 200;
/// Every DROP_EVERY-th session abandons its handle mid-run.
const DROP_EVERY: usize = 7;

fn request(cpus: String, group: &str) -> OpenRequest {
    OpenRequest {
        machine: None,
        cpus,
        group: group.to_string(),
        interval: "1ms".to_string(),
        duration: "3ms".to_string(),
    }
}

/// Session `i`'s shape: overlapping cpu sets across the machine's 24
/// hardware threads, and a rotation of core-only, single-socket uncore,
/// dual-socket uncore and custom-event specs.
fn session_request(i: usize) -> OpenRequest {
    let cpu = i % 24;
    match i % 5 {
        0 => request(format!("{cpu},{}", (cpu + 1) % 24), "FLOPS_DP"),
        1 => request(format!("{cpu}"), "MEM"),
        2 => request(format!("{},{}", i % 6, 6 + i % 6), "MEM"), // spans both sockets
        3 => request(format!("{cpu}"), "INSTR_RETIRED_ANY:FIXC0,CPU_CLK_UNHALTED_CORE:FIXC1"),
        _ => request(format!("{cpu},{}", (cpu + 3) % 24), "FLOPS_DP,L3CACHE"),
    }
}

#[test]
fn two_hundred_concurrent_sessions_with_drops_terminate_and_leak_nothing() {
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let daemon = Daemon::new(&machine);
    let completed = AtomicUsize::new(0);
    let dropped = AtomicUsize::new(0);
    let barrier = Barrier::new(SESSIONS);

    std::thread::scope(|scope| {
        for i in 0..SESSIONS {
            let daemon = &daemon;
            let completed = &completed;
            let dropped = &dropped;
            let barrier = &barrier;
            scope.spawn(move || {
                // Release all sessions into the broker at once.
                barrier.wait();
                let req = session_request(i);
                let mut handle = daemon.open(&req).expect("session admitted");

                if i % DROP_EVERY == 3 {
                    // A vanishing client: at most one interval, then gone.
                    let _ = handle.next_interval().expect("interval before drop");
                    drop(handle);
                    dropped.fetch_add(1, Ordering::SeqCst);
                    return;
                }

                // Accumulate the stream exactly as a remote client would
                // and hold the session to the telescoping invariant.
                let mut accumulator = StreamAccumulator::new(handle.opened().clone());
                while let Some(frame) = handle.next_interval().expect("interval") {
                    accumulator.push(frame).expect("frames in order");
                }
                let (done, _result) = handle.finish().expect("finish");
                assert_eq!(done.intervals, 3, "1ms over 3ms yields three intervals");
                assert!(done.time_scale >= 1.0, "coverage scale is a ratio >= 1");
                accumulator.complete(done).expect("done frame consistent");
                accumulator.verify_telescoping().unwrap_or_else(|e| {
                    panic!(
                        "session {i} (cpus={} group={}): {e}",
                        session_request(i).cpus,
                        session_request(i).group
                    )
                });
                completed.fetch_add(1, Ordering::SeqCst);
            });
        }
    });

    let expected_drops = (0..SESSIONS).filter(|i| i % DROP_EVERY == 3).count();
    assert_eq!(dropped.load(Ordering::SeqCst), expected_drops);
    assert_eq!(completed.load(Ordering::SeqCst), SESSIONS - expected_drops);

    let stats = daemon.stats();
    assert_eq!(stats.opened as usize, SESSIONS);
    assert_eq!(stats.finished as usize, SESSIONS - expected_drops);
    assert_eq!(stats.aborted as usize, expected_drops);
    assert_eq!(stats.live, 0, "no session outlives its thread");
    assert_eq!(stats.uncore_locks_held, 0, "no uncore lock leaked");
    assert_eq!(stats.uncore_waiters, 0, "no uncore queue entry leaked");
    assert!(stats.peak_live > 1, "sessions genuinely overlapped");
    assert!(daemon.is_quiescent(), "broker is empty after the storm");

    // And the daemon still serves: one clean session end to end.
    let mut handle = daemon.open(&session_request(1)).expect("still admitting");
    let mut accumulator = StreamAccumulator::new(handle.opened().clone());
    while let Some(frame) = handle.next_interval().expect("interval") {
        let line = Frame::Interval(frame).to_line();
        match Frame::from_line(&line).expect("wire round-trip") {
            Frame::Interval(frame) => accumulator.push(frame).expect("in order"),
            other => panic!("expected interval, got {other:?}"),
        }
    }
    let (done, _result) = handle.finish().expect("finish");
    accumulator.complete(done).expect("consistent");
    accumulator.verify_telescoping().expect("telescoping");
    assert!(daemon.is_quiescent());
}

//! Equivalence under transient faults: a measurement session retried
//! against a transient-only [`FaultPlan`] must produce **bit-identical**
//! results to a fault-free run.
//!
//! The substrate guarantees a transient channel never fails one register
//! more than `MAX_CONSECUTIVE_LIMIT` times in a row, and the session layer
//! retries every MSR access more often than that — so for arbitrary seeds,
//! probabilities and streak bounds, healing must be invisible: same event
//! counts, same derived metrics, same timeline intervals, and an empty
//! diagnostics list. Any divergence means a retry path leaked state.

use proptest::prelude::*;

use likwid_suite::likwid::perfctr::{EventGroupKind, MeasurementSpec};
use likwid_suite::workloads::kernels::kernel_by_name;
use likwid_suite::workloads::{Experiment, ExperimentResult, PlacementPolicy};
use likwid_suite::x86_machine::{FaultPlan, MachinePreset, TransientSpec};

/// Small but non-trivial working set: enough activity to cross counter
/// programming, reading and (for the timeline variant) group switching.
const WORKING_SET: u64 = 1 << 16;

fn measured_run(
    preset: MachinePreset,
    spec: MeasurementSpec,
    plan: Option<FaultPlan>,
    timeline_dt: Option<f64>,
) -> ExperimentResult {
    let kernel = kernel_by_name("daxpy", WORKING_SET, 1).expect("daxpy is registered");
    let mut experiment =
        Experiment::on(preset).placement(PlacementPolicy::LikwidPin(vec![0, 1])).counters(spec);
    if let Some(dt) = timeline_dt {
        experiment = experiment.timeline(dt);
    }
    if let Some(plan) = plan {
        experiment = experiment.inject(plan);
    }
    experiment.run(kernel.as_ref()).expect("a transient-only plan must never fail the run")
}

/// The interval length that slices the daxpy run into ~4 timeline samples.
fn quarter_runtime(preset: MachinePreset) -> f64 {
    let kernel = kernel_by_name("daxpy", WORKING_SET, 1).expect("daxpy is registered");
    let probe = Experiment::on(preset)
        .placement(PlacementPolicy::LikwidPin(vec![0, 1]))
        .run(kernel.as_ref())
        .expect("counter-less probe");
    probe.first().runtime_s / 4.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Aggregate mode: counts, metrics and diagnostics of a faulted run
    /// equal the fault-free run for arbitrary transient-only plans.
    #[test]
    fn transient_only_plans_are_invisible_in_aggregate_results(
        seed in 0u64..1_000_000,
        read_p in 0.0..0.75f64,
        read_k in 1u32..7,
        write_p in 0.0..0.75f64,
        write_k in 1u32..7,
        dirty in prop::bool::ANY,
    ) {
        let plan = FaultPlan {
            seed,
            read: Some(TransientSpec { probability: read_p, max_consecutive: read_k }),
            write: Some(TransientSpec { probability: write_p, max_consecutive: write_k }),
            dirty,
            ..FaultPlan::default()
        };
        prop_assert!(plan.is_transient_only());

        let spec = MeasurementSpec::Group(EventGroupKind::FLOPS_DP);
        let clean = measured_run(MachinePreset::NehalemEp2S, spec.clone(), None, None);
        let faulted = measured_run(MachinePreset::NehalemEp2S, spec, Some(plan), None);

        let clean = clean.counters.expect("counters requested");
        let faulted = faulted.counters.expect("counters requested");
        prop_assert!(faulted.diagnostics.is_empty(),
            "transient faults must heal without a trace, got {:?}", faulted.diagnostics);
        prop_assert_eq!(clean, faulted);
    }

    /// Timeline mode with multiplexed groups: every interval's counts and
    /// the per-group aggregates are bit-identical too — healing must not
    /// shift a single count across an interval or group boundary.
    #[test]
    fn transient_only_plans_are_invisible_in_timeline_results(
        seed in 0u64..1_000_000,
        read_p in 0.0..0.6f64,
        write_p in 0.0..0.6f64,
        streak in 1u32..7,
    ) {
        let plan = FaultPlan {
            seed,
            read: Some(TransientSpec { probability: read_p, max_consecutive: streak }),
            write: Some(TransientSpec { probability: write_p, max_consecutive: streak }),
            ..FaultPlan::default()
        };
        let spec = MeasurementSpec::Groups(vec![EventGroupKind::FLOPS_DP, EventGroupKind::MEM]);
        let dt = quarter_runtime(MachinePreset::NehalemEp2S);

        let clean = measured_run(MachinePreset::NehalemEp2S, spec.clone(), None, Some(dt));
        let faulted = measured_run(MachinePreset::NehalemEp2S, spec, Some(plan), Some(dt));

        let clean = clean.timeline.expect("timeline requested");
        let faulted = faulted.timeline.expect("timeline requested");
        prop_assert_eq!(&clean.group_names, &faulted.group_names);
        prop_assert_eq!(&clean.cpus, &faulted.cpus);
        prop_assert_eq!(&clean.intervals, &faulted.intervals);
        prop_assert_eq!(&clean.aggregate, &faulted.aggregate);
    }
}

/// One deliberately hostile (but still transient-only) deterministic case,
/// pinned outside the property loop: every channel at its worst allowed
/// streak, plus dirty registers at attach time.
#[test]
fn worst_case_transient_storm_still_heals_bit_identically() {
    let plan = FaultPlan::parse("seed=13,read=0.9x6,write=0.9x6,dirty").unwrap();
    assert!(plan.is_transient_only());
    let spec = MeasurementSpec::Group(EventGroupKind::FLOPS_DP);
    let clean = measured_run(MachinePreset::Core2Quad, spec.clone(), None, None);
    let faulted = measured_run(MachinePreset::Core2Quad, spec, Some(plan), None);
    assert_eq!(clean.counters.unwrap(), faulted.counters.unwrap());
}

//! The fault matrix: every fault class of the substrate driven through the
//! real tool entry points (`likwid-perfctr --inject`, `likwid-bench
//! --inject`), pinning the public degradation contract:
//!
//! * transient-only plans (including `dirty`) are **invisible** — the
//!   rendered tool output is byte-identical to a fault-free invocation;
//! * permanent faults (stuck registers, dead cpus) **degrade** — the run
//!   completes successfully and reports what was dropped in a Diagnostics
//!   section, pinned by an ASCII golden;
//! * a malformed `--inject` spec is a usage error, the only way the flag
//!   itself fails.

use likwid_bench::microbench::{likwid_bench_report, likwid_bench_spec};
use likwid_suite::likwid::cli;
use likwid_suite::likwid::report::{Ascii, Json, Render, Report};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn bench_report(list: &[&str]) -> Report {
    likwid_bench_report(&likwid_bench_spec().parse(&args(list)).unwrap()).unwrap()
}

#[test]
fn permanent_faults_degrade_to_the_pinned_diagnostics_golden() {
    // A stuck PERFEVTSEL0 on cpu 0 plus cpu 1 dying after 25 device
    // accesses: the stethoscope run must still complete and render exactly
    // the captured golden — healthy counters measured, both casualties
    // itemized under "Diagnostics".
    let argv = args(&[
        "--machine",
        "core2-quad",
        "-c",
        "0,1",
        "-g",
        "FLOPS_DP",
        "-S",
        "10ms",
        "--inject",
        "seed=5,stuck=0x186@0,dead=1@25",
    ]);
    let golden = include_str!("golden/perfctr_inject_core2-quad.txt");
    assert_eq!(cli::run_perfctr(&argv).unwrap(), golden);

    // The typed document round-trips through JSON like every other report.
    let report = cli::perfctr_report(&argv).unwrap();
    let parsed = Report::from_json(&Json.render(&report)).expect("JSON must parse back");
    assert_eq!(parsed, report);
    assert!(
        report.sections.iter().any(|s| s.id.ends_with("diagnostics")),
        "a degraded run must carry a diagnostics section"
    );
}

#[test]
fn transient_injection_leaves_the_perfctr_output_byte_identical() {
    let base = &["--machine", "westmere-ep-2s", "-c", "0-3", "-g", "FLOPS_DP", "-t", "2ms"];
    let clean = cli::run_perfctr(&args(base)).unwrap();
    // Transient read/write faults at the worst allowed streak, plus dirty
    // register state at attach: all healed, nothing visible.
    let mut injected = base.to_vec();
    injected.extend_from_slice(&["--inject", "seed=99,read=0.8x6,write=0.8x6,dirty"]);
    let faulted = cli::run_perfctr(&args(&injected)).unwrap();
    assert_eq!(clean, faulted);
    assert!(!faulted.contains("Diagnostics"), "transient faults must not be diagnosed");
}

#[test]
fn malformed_inject_specs_are_usage_errors() {
    for bad in ["read=1.5", "wibble", "dead=0", "stuck=0x186"] {
        let argv = args(&["--machine", "core2-quad", "-c", "0", "-g", "FLOPS_DP", "--inject", bad]);
        let err = cli::run_perfctr(&argv).unwrap_err();
        assert!(
            err.to_string().contains("bad --inject spec"),
            "'{bad}' must be rejected as usage, got: {err}"
        );
    }
}

#[test]
fn likwid_bench_heals_transient_faults_without_a_trace() {
    let base = &[
        "-t",
        "daxpy",
        "-w",
        "1MB",
        "-c",
        "0-1",
        "-g",
        "FLOPS_DP",
        "-i",
        "1",
        "--machine",
        "nehalem-ep-2s",
    ];
    let clean = bench_report(base);
    let mut injected = base.to_vec();
    injected.extend_from_slice(&["--inject", "seed=3,read=0.6x4,write=0.6x4,dirty"]);
    let faulted = bench_report(&injected);
    assert_eq!(
        Ascii.render(&clean),
        Ascii.render(&faulted),
        "a transient-only plan must not change likwid-bench output"
    );
}

#[test]
fn likwid_bench_survives_a_dying_cpu_and_reports_it() {
    let report = bench_report(&[
        "-t",
        "daxpy",
        "-w",
        "1MB",
        "-c",
        "0-1",
        "-g",
        "FLOPS_DP",
        "-i",
        "1",
        "--machine",
        "nehalem-ep-2s",
        "--inject",
        "dead=1@30",
    ]);
    let ascii = Ascii.render(&report);
    assert!(ascii.contains("Diagnostics"), "the dead cpu must be reported:\n{ascii}");
    assert!(ascii.contains("cpu 1"), "the diagnostic names the casualty:\n{ascii}");
}

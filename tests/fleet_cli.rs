//! End-to-end contract of the `likwid-fleet` front end: memoized re-runs
//! are byte-identical and execute nothing, and `compare` turns a
//! synthetically slowed point into a nonzero exit.

use std::fs;
use std::path::PathBuf;

use likwid_fleet::cli::{fleet_main, EXIT_REGRESSED};
use likwid_fleet::{MemoStore, Trajectory};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("likwid-fleet-cli-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

#[test]
fn a_memoized_rerun_is_byte_identical_and_executes_nothing() {
    let dir = tempdir("rerun");
    let store = dir.join("store");
    let run = |report: &str, trajectory: &str| {
        fleet_main(&args(&[
            "run",
            "-N",
            "1,2",
            "-n",
            "2",
            "--store",
            store.to_str().unwrap(),
            "--trajectory",
            trajectory,
            "-o",
            report,
        ]))
    };
    let (r1, t1) = (dir.join("r1.txt"), dir.join("t1.json"));
    let (r2, t2) = (dir.join("r2.txt"), dir.join("t2.json"));
    assert_eq!(run(r1.to_str().unwrap(), t1.to_str().unwrap()), 0);
    assert_eq!(run(r2.to_str().unwrap(), t2.to_str().unwrap()), 0);
    assert_eq!(
        fs::read_to_string(&r1).unwrap(),
        fs::read_to_string(&r2).unwrap(),
        "cache hit must render byte-identically to cache miss"
    );
    assert_eq!(fs::read(&t1).unwrap(), fs::read(&t2).unwrap());
    // Both points of the 2-point sweep are in the store after run one.
    assert_eq!(MemoStore::open(&store, None).entries().len(), 2);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn compare_flags_a_synthetically_slowed_point_with_a_nonzero_exit() {
    let dir = tempdir("compare");
    let baseline = dir.join("baseline.json");
    let out = dir.join("report.txt");
    assert_eq!(
        fleet_main(&args(&[
            "run",
            "-N",
            "1,2",
            "-n",
            "3",
            "--trajectory",
            baseline.to_str().unwrap(),
            "-o",
            out.to_str().unwrap(),
        ])),
        0
    );

    // Identical trajectories pass.
    assert_eq!(
        fleet_main(&args(&[
            "compare",
            baseline.to_str().unwrap(),
            baseline.to_str().unwrap(),
            "-o",
            out.to_str().unwrap(),
        ])),
        0
    );

    // Slow the first point by 25% — far beyond the 5% floor.
    let mut slowed = Trajectory::parse(&fs::read_to_string(&baseline).unwrap()).unwrap();
    let p = &mut slowed.points[0];
    p.median = p.median.map(|m| m * 0.75);
    p.min = p.min.map(|m| m * 0.75);
    p.max = p.max.map(|m| m * 0.75);
    let slowed_path = dir.join("slowed.json");
    fs::write(&slowed_path, slowed.encode()).unwrap();
    assert_eq!(
        fleet_main(&args(&[
            "compare",
            baseline.to_str().unwrap(),
            slowed_path.to_str().unwrap(),
            "-o",
            out.to_str().unwrap(),
        ])),
        EXIT_REGRESSED
    );
    let report = fs::read_to_string(&out).unwrap();
    assert!(report.contains("REGRESSED"), "verdict must be spelled out: {report}");

    // The slowed file as the *baseline* makes the original an improvement,
    // which passes.
    assert_eq!(
        fleet_main(&args(&[
            "compare",
            slowed_path.to_str().unwrap(),
            baseline.to_str().unwrap(),
            "-o",
            out.to_str().unwrap(),
        ])),
        0
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn the_committed_baseline_matches_a_fresh_default_sweep() {
    // `BENCH_fleet.json` at the repo root is the committed trajectory of
    // the default sweep; CI compares a fresh run against it. Guard its
    // shape (and epoch) here so a stale file fails close to its cause.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_fleet.json");
    let committed = Trajectory::parse(&fs::read_to_string(path).unwrap()).unwrap();
    assert_eq!(committed.epoch, likwid_fleet::CODE_EPOCH, "bump BENCH_fleet.json with the epoch");
    assert_eq!(committed.unit, "MB/s");
    assert!(!committed.points.is_empty());
    assert!(committed.points.iter().all(|p| p.status == "ok"));
}

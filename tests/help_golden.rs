//! Help-text goldens for the tools whose `--help` carries semantics the
//! one-line flag table cannot: the multiplexing rule of comma-separated
//! `-g` group lists. Pinning the full text keeps the note (and the flag
//! table around it) from silently drifting.

use std::fs;
use std::path::Path;

use likwid_suite::likwid::cli::Tool;

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} (run with UPDATE_GOLDEN=1): {e}"));
    assert_eq!(actual, expected, "help text of {name} drifted; run with UPDATE_GOLDEN=1 to accept");
}

#[test]
fn perfctr_help_is_pinned_and_explains_multiplexing() {
    let help = Tool::Perfctr.spec().help_text();
    assert!(help.contains("multiplex"), "the -g group-list note must be present");
    check_golden("help_likwid-perfctr.txt", &help);
}

#[test]
fn bench_help_is_pinned_and_explains_multiplexing() {
    let help = likwid_bench::microbench::likwid_bench_spec().help_text();
    assert!(help.contains("multiplex"), "the -g group-list note must be present");
    check_golden("help_likwid-bench.txt", &help);
}

#[test]
fn fleet_help_is_pinned_and_explains_multiplexing() {
    let help = likwid_fleet::cli::fleet_spec().help_text();
    assert!(help.contains("multiplex"), "the -g group-list note must be present");
    check_golden("help_likwid-fleet.txt", &help);
}

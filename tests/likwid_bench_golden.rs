//! Golden and round-trip tests for the `likwid-bench` microbenchmark tool,
//! mirroring `tests/report_golden.rs`:
//!
//! 1. ASCII output is byte-identical to the goldens under `tests/golden/`;
//! 2. the JSON rendering parses back into an equal document;
//! 3. the acceptance scenario — `-t daxpy -w 64MB -c S0:0-3 -g MEM` — runs
//!    on every machine preset.

use likwid_bench::microbench::{likwid_bench_report, likwid_bench_spec};
use likwid_suite::likwid::report::{Ascii, Json, Render, Report};
use likwid_suite::x86_machine::MachinePreset;

fn report_for(list: &[&str]) -> Report {
    let args: Vec<String> = list.iter().map(|s| s.to_string()).collect();
    likwid_bench_report(&likwid_bench_spec().parse(&args).unwrap()).unwrap()
}

fn assert_round_trip(report: &Report, golden: &str) {
    assert_eq!(
        Ascii.render(report),
        golden,
        "ASCII output must be byte-identical to the captured golden"
    );
    let parsed = Report::from_json(&Json.render(report)).expect("likwid-bench JSON must parse");
    assert_eq!(&parsed, report, "JSON round-trip must reproduce the document");
}

#[test]
fn daxpy_with_mem_counters_matches_the_golden() {
    let report = report_for(&[
        "-t",
        "daxpy",
        "-w",
        "32MB",
        "-c",
        "S0:0-3",
        "-g",
        "MEM",
        "-i",
        "1",
        "--machine",
        "nehalem-ep-2s",
    ]);
    assert_round_trip(&report, include_str!("golden/likwid_bench_daxpy_nehalem-ep-2s.txt"));
    // The counter sections carry typed values a consumer reads without
    // scraping: the uncore reads credited to the socket-lock owner.
    let events = report.table("counters.events").expect("events table");
    let reads = events.cell("UNC_QMC_NORMAL_READS_ANY", "core 0").expect("typed cell");
    assert!(reads.as_count().unwrap() > 500_000, "two 16 MB arrays stream in");
}

#[test]
fn pointer_chase_matches_the_golden() {
    let report = report_for(&["-t", "chase", "-w", "256kB", "-c", "0", "--machine", "core2-quad"]);
    assert_round_trip(&report, include_str!("golden/likwid_bench_chase_core2-quad.txt"));
}

#[test]
fn daxpy_mem_acceptance_scenario_runs_on_every_machine_preset() {
    for &preset in MachinePreset::all() {
        let report = report_for(&[
            "-t",
            "daxpy",
            "-w",
            "64MB",
            "-c",
            "S0:0-3",
            "-g",
            "MEM",
            "--machine",
            preset.id(),
        ]);
        let parsed = Report::from_json(&Json.render(&report))
            .unwrap_or_else(|e| panic!("{preset:?}: invalid JSON: {e:?}"));
        assert_eq!(parsed, report, "{preset:?}");
        let bw = report
            .value("bench", "Bandwidth [MBytes/s]")
            .and_then(|v| v.as_real())
            .unwrap_or_else(|| panic!("{preset:?}: no bandwidth"));
        assert!(bw > 0.0, "{preset:?}: bandwidth {bw}");
        assert!(report.table("counters.events").is_some(), "{preset:?}: MEM group events measured");
    }
}

//! Golden-file and round-trip tests for the structured report API.
//!
//! Three properties are pinned for every tool on at least two machine
//! presets, plus the deterministic figure generators:
//!
//! 1. **ASCII is byte-identical to the pre-report output** — the files
//!    under `tests/golden/` were captured from the string-pushing
//!    implementation the report model replaced; rendering the typed
//!    document must reproduce them exactly.
//! 2. **JSON round-trips**: `Report::from_json(Json.render(r)) == r`.
//! 3. **CSV mirrors the document model**: section markers, row counts and
//!    per-record field counts all match the typed document.

use likwid_suite::likwid::cli;
use likwid_suite::likwid::report::{Body, Csv, Json, Render, Report};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// Minimal RFC-4180-style CSV reader: records of fields, quotes and
/// embedded newlines respected. Only used to verify the renderer.
fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut records = Vec::new();
    let mut record = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut saw_any = false;
    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => in_quotes = false,
                c => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => record.push(std::mem::take(&mut field)),
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                c => field.push(c),
            }
        }
    }
    assert!(!in_quotes, "unterminated quoted field");
    assert!(field.is_empty() && record.is_empty(), "CSV must end with a newline");
    assert!(saw_any, "CSV output must not be empty");
    records
}

/// Walk the CSV records and the document in lockstep, checking the shape.
fn assert_csv_matches_report(csv: &str, report: &Report) {
    let records = parse_csv(csv);
    let mut at = 0;
    for section in &report.sections {
        assert_eq!(
            records[at],
            vec!["SECTION".to_string(), section.id.clone()],
            "section marker for '{}'",
            section.id
        );
        at += 1;
        match &section.body {
            Body::KeyValues(entries) => {
                for entry in entries {
                    assert_eq!(records[at].len(), 2, "kv record of '{}'", entry.key);
                    assert_eq!(records[at][0], entry.key);
                    at += 1;
                }
            }
            Body::Table(table) => {
                assert_eq!(records[at].len(), table.num_columns(), "header of '{}'", section.id);
                at += 1;
                for row in &table.rows {
                    assert_eq!(
                        records[at].len(),
                        table.num_columns(),
                        "row width in '{}'",
                        section.id
                    );
                    assert_eq!(row.values.len(), table.num_columns());
                    at += 1;
                }
            }
            Body::Text(_) => {
                assert_eq!(records[at].len(), 2);
                assert_eq!(records[at][0], "text");
                at += 1;
            }
            Body::TimeSeries(ts) => {
                assert_eq!(
                    records[at],
                    vec!["time", "metric", "cpu", "value"],
                    "long-format header of '{}'",
                    section.id
                );
                at += 1;
                for (j, _) in ts.timestamps.iter().enumerate() {
                    for series in &ts.series {
                        if series.values.get(j).is_none() {
                            continue;
                        }
                        assert_eq!(records[at].len(), 4, "timeseries record in '{}'", section.id);
                        assert_eq!(records[at][1], series.metric);
                        assert_eq!(records[at][2], series.cpu.to_string());
                        at += 1;
                    }
                }
            }
        }
    }
    assert_eq!(at, records.len(), "no trailing CSV records");
}

/// The three pinned properties for one tool invocation.
fn assert_tool_round_trip(report: Report, ascii: String, golden: &str, expect_min_sections: usize) {
    assert!(report.sections.len() >= expect_min_sections);
    assert_eq!(ascii, golden, "ASCII output must be byte-identical to the pre-report capture");

    let json = Json.render(&report);
    let parsed = Report::from_json(&json).expect("tool JSON must parse back");
    assert_eq!(parsed, report, "JSON round-trip must reproduce the document");

    assert_csv_matches_report(&Csv.render(&report), &report);
}

#[test]
fn topology_reports_round_trip_on_two_presets() {
    for (preset, golden) in [
        ("westmere-ep-2s", include_str!("golden/topology_westmere-ep-2s.txt")),
        ("core2-quad", include_str!("golden/topology_core2-quad.txt")),
    ] {
        let argv = args(&["--machine", preset, "-c", "-g"]);
        assert_tool_round_trip(
            cli::topology_report(&argv).unwrap(),
            cli::run_topology(&argv).unwrap(),
            golden,
            6,
        );
    }
}

#[test]
fn features_reports_round_trip_on_two_presets() {
    for (preset, golden) in [
        ("core2-duo", include_str!("golden/features_core2-duo.txt")),
        ("westmere-ep-2s", include_str!("golden/features_westmere-ep-2s.txt")),
    ] {
        let argv = args(&["--machine", preset]);
        assert_tool_round_trip(
            cli::features_report(&argv).unwrap(),
            cli::run_features(&argv).unwrap(),
            golden,
            2,
        );
    }
}

#[test]
fn pin_reports_round_trip_on_two_presets() {
    for (argv, golden) in [
        (
            args(&["--machine", "westmere-ep-2s", "-c", "0-3", "-t", "intel", "-n", "4"]),
            include_str!("golden/pin_westmere-ep-2s.txt"),
        ),
        (
            args(&["--machine", "core2-quad", "-c", "0-3", "-n", "4"]),
            include_str!("golden/pin_core2-quad.txt"),
        ),
    ] {
        assert_tool_round_trip(
            cli::pin_report(&argv).unwrap(),
            cli::run_pin(&argv).unwrap(),
            golden,
            2,
        );
    }
}

#[test]
fn perfctr_reports_round_trip_on_two_presets() {
    for (argv, golden) in [
        (
            args(&["--machine", "nehalem-ep-2s", "-c", "0-7", "-g", "MEM"]),
            include_str!("golden/perfctr_nehalem-ep-2s.txt"),
        ),
        (
            args(&[
                "--machine",
                "core2-quad",
                "-c",
                "1",
                "-g",
                "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE:PMC0,SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE:PMC1",
            ]),
            include_str!("golden/perfctr_core2-quad.txt"),
        ),
        (
            args(&["--machine", "westmere-ep-2s", "-a"]),
            include_str!("golden/perfctr_groups_westmere-ep-2s.txt"),
        ),
    ] {
        assert_tool_round_trip(
            cli::perfctr_report(&argv).unwrap(),
            cli::run_perfctr(&argv).unwrap(),
            golden,
            1,
        );
    }
}

#[test]
fn figure_reports_round_trip_against_their_goldens() {
    let cases: Vec<(Report, &str)> = vec![
        (likwid_bench::figure1_report(), include_str!("golden/fig01.txt")),
        (
            {
                let mut r = Report::new("figure2");
                r.extend(likwid_bench::figure2_report(
                    likwid_suite::x86_machine::MachinePreset::WestmereEp2S,
                ));
                r.extend(likwid_bench::figure2_report(
                    likwid_suite::x86_machine::MachinePreset::Core2Quad,
                ));
                r
            },
            include_str!("golden/fig02.txt"),
        ),
        (likwid_bench::figure3_report(), include_str!("golden/fig03.txt")),
        (
            likwid_bench::stream_figure_report(likwid_bench::stream_figures()[1], 3, 5),
            include_str!("golden/fig05_s3.txt"),
        ),
        (likwid_bench::figure11_report(&[32, 48], 4), include_str!("golden/fig11_32_48.txt")),
        (likwid_bench::table2_report(48, 4), include_str!("golden/table2_48.txt")),
    ];
    for (report, golden) in cases {
        let ascii = likwid_suite::likwid::report::Ascii.render(&report);
        assert_tool_round_trip(report, ascii, golden, 1);
    }
}

#[test]
fn csv_shape_matches_for_every_machine_preset() {
    use likwid_suite::x86_machine::MachinePreset;
    for &preset in MachinePreset::all() {
        let argv = args(&["--machine", preset.id(), "-c", "-g"]);
        let report = cli::topology_report(&argv).unwrap();
        assert_csv_matches_report(&Csv.render(&report), &report);
        let parsed = Report::from_json(&Json.render(&report)).expect("parse back");
        assert_eq!(parsed, report, "{preset:?}");
    }
}

//! Determinism regression tests for the parallel sharded simulator.
//!
//! The sharded engine's contract is that worker scheduling is invisible:
//! for a fixed replay queue the merged [`likwid_suite::cache_sim::NodeStats`]
//! are byte-identical at every worker count, and so is every report derived
//! from them — down to the `likwid-perfctr`-style ASCII rendering. These
//! tests pin both layers: the raw engine statistics on a multi-socket
//! store-coherence scenario, and the full `likwid-bench` report against a
//! captured golden.

use likwid_bench::microbench::{likwid_bench_report, likwid_bench_spec};
use likwid_suite::cache_sim::{HierarchyConfig, NumaPolicy, ShardedCacheSystem};
use likwid_suite::likwid::report::{Ascii, Json, Render, Report};
use likwid_suite::workloads::{Placement, StoreCoherence};
use likwid_suite::x86_machine::{MachinePreset, SimMachine};

fn report_for(list: &[&str]) -> Report {
    let args: Vec<String> = list.iter().map(|s| s.to_string()).collect();
    likwid_bench_report(&likwid_bench_spec().parse(&args).unwrap()).unwrap()
}

/// The engine-level contract: a multi-socket store-coherence queue replayed
/// at 1, 2 and 8 workers produces byte-identical merged statistics and the
/// same parallel/serial epoch split, and the scenario genuinely exercises
/// the parallel path.
#[test]
fn worker_count_is_invisible_in_the_merged_statistics() {
    let machine = SimMachine::new(MachinePreset::NehalemEp2S);
    let placement = Placement::pinned(vec![0, 1, 4, 5]);
    let kernel = StoreCoherence::new(1 << 20, 2);
    let queue = kernel.replay_queue(&machine, &placement);
    let config = HierarchyConfig::from_machine(&machine, NumaPolicy::interleave_over(4096, 2));

    let mut baseline = ShardedCacheSystem::with_workers(config.clone(), 1);
    baseline.replay(&queue);
    assert!(baseline.epochs_parallel() > 0, "the scenario must shard");

    for workers in [2usize, 8] {
        let mut sharded = ShardedCacheSystem::with_workers(config.clone(), workers);
        sharded.replay(&queue);
        assert_eq!(sharded.stats(), baseline.stats(), "{workers} workers vs 1");
        assert_eq!(sharded.epochs_parallel(), baseline.epochs_parallel(), "{workers} workers");
        assert_eq!(sharded.epochs_serial(), baseline.epochs_serial(), "{workers} workers");
    }
}

/// The tool-level contract: the rendered `likwid-bench` report for the
/// coherence kernel is byte-identical across `-W 1/2/4` and matches the
/// pinned golden, so a scheduling-dependent divergence anywhere between the
/// shard workers and the ASCII renderer fails loudly.
#[test]
fn coherence_report_is_byte_identical_across_workers_and_matches_the_golden() {
    let golden = include_str!("golden/likwid_bench_coherence_nehalem-ep-2s.txt");
    for workers in ["1", "2", "4"] {
        let report = report_for(&[
            "-t",
            "coherence",
            "-w",
            "1MB",
            "-c",
            "S0:0-1@S1:0-1",
            "-g",
            "MEM",
            "-W",
            workers,
            "--machine",
            "nehalem-ep-2s",
        ]);
        assert_eq!(
            Ascii.render(&report),
            golden,
            "-W {workers}: ASCII output must be byte-identical to the captured golden"
        );
        let parsed = Report::from_json(&Json.render(&report)).expect("JSON must parse");
        assert_eq!(&parsed, &report, "-W {workers}: JSON round-trip");
    }
}

//! Property-based tests over the substrate crates: invariants that must
//! hold for arbitrary inputs, not just the machines of the paper.

use proptest::prelude::*;

use likwid_suite::affinity::{parse_pin_list, PthreadPinner, SkipMask};
use likwid_suite::cache_sim::{
    Access, AccessKind, CacheLevelConfig, HierarchyConfig, NodeCacheSystem, NumaPolicy,
    PrefetchConfig, ReplacementPolicy, WritePolicy,
};
use likwid_suite::likwid::perfctr::Formula;
use likwid_suite::likwid::topology::CpuTopology;
use likwid_suite::x86_machine::{MachinePreset, SimMachine};

/// A small synthetic hierarchy for property runs.
fn tiny_hierarchy(prefetch_on: bool) -> HierarchyConfig {
    let level = |level, sets, ways, shared| CacheLevelConfig {
        level,
        sets,
        ways,
        line_size: 64,
        inclusive: level == 3,
        shared_by_threads: shared,
        write_policy: WritePolicy::WriteBackAllocate,
        replacement: ReplacementPolicy::Lru,
    };
    HierarchyConfig {
        levels: vec![level(1, 8, 2, 1), level(2, 32, 4, 1), level(3, 128, 8, 2)],
        num_threads: 4,
        thread_socket: vec![0, 0, 1, 1],
        thread_core: vec![0, 1, 2, 3],
        num_sockets: 2,
        prefetch: if prefetch_on {
            PrefetchConfig::all_enabled()
        } else {
            PrefetchConfig::all_disabled()
        },
        numa_policy: NumaPolicy::interleave(4096),
        memory_line_size: 64,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// At every cache level, demand hits + misses always equals demand
    /// accesses and loads + stores equals accesses, whatever the access mix.
    #[test]
    fn cache_sim_counters_are_consistent(
        ops in prop::collection::vec((0usize..4, 0u64..4096, prop::bool::ANY, prop::bool::ANY), 1..400),
        prefetch_on in prop::bool::ANY,
    ) {
        let mut sys = NodeCacheSystem::new(tiny_hierarchy(prefetch_on));
        for (thread, line, is_store, is_nt) in ops {
            let kind = match (is_store, is_nt) {
                (true, true) => AccessKind::NonTemporalStore,
                (true, false) => AccessKind::Store,
                _ => AccessKind::Load,
            };
            sys.access(thread, Access { address: line * 64, size: 8, kind });
        }
        let stats = sys.stats();
        for level in &stats.levels {
            for inst in &level.instances {
                prop_assert!(inst.is_consistent(), "level {} instance inconsistent: {:?}", level.level, inst);
            }
        }
    }

    /// Memory traffic is monotone in the working-set size for a streaming
    /// load pattern: touching more distinct lines never reads fewer bytes.
    #[test]
    fn streaming_traffic_is_monotone(lines_a in 1u64..2000, lines_b in 1u64..2000) {
        let run = |lines: u64| {
            let mut sys = NodeCacheSystem::new(tiny_hierarchy(false));
            for i in 0..lines {
                sys.access(0, Access::load(i * 64));
            }
            sys.stats().total_memory_bytes()
        };
        let (small, large) = if lines_a <= lines_b { (lines_a, lines_b) } else { (lines_b, lines_a) };
        prop_assert!(run(small) <= run(large));
    }

    /// Pin-list parsing of plain numeric expressions round-trips: every id
    /// appears, in order, and within the machine's range.
    #[test]
    fn numeric_pin_lists_round_trip(ids in prop::collection::vec(0usize..24, 1..24)) {
        let topo = MachinePreset::WestmereEp2S.topology();
        let expr = ids.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(",");
        let parsed = parse_pin_list(&expr, &topo).unwrap();
        prop_assert_eq!(parsed, ids);
    }

    /// The wrapper pin logic never pins two worker threads to the same
    /// pin-list entry and never pins a skipped thread, for arbitrary skip
    /// masks and list lengths.
    #[test]
    fn pinner_assignments_are_unique(skip_mask in 0u64..64, list_len in 1usize..16, creations in 1usize..24) {
        let pin_list: Vec<usize> = (0..list_len).collect();
        let mut pinner = PthreadPinner::new(pin_list, SkipMask(skip_mask));
        let mut assigned = Vec::new();
        for i in 0..creations {
            let outcome = pinner.on_thread_create();
            if SkipMask(skip_mask).skips(i) {
                prop_assert_eq!(outcome.cpu(), None, "skipped threads are never pinned");
            }
            if let Some(cpu) = outcome.cpu() {
                prop_assert!(!assigned.contains(&cpu), "entry {cpu} assigned twice");
                assigned.push(cpu);
            }
        }
    }

    /// The metric formula parser never panics and evaluation is exact for
    /// simple linear combinations.
    #[test]
    fn formula_linear_combination(a in -1.0e6..1.0e6f64, b in -1.0e6..1.0e6f64, x in -1.0e3..1.0e3f64) {
        let f = Formula::parse("A*X+B").unwrap();
        let vars: std::collections::HashMap<String, f64> =
            [("A".to_string(), a), ("B".to_string(), b), ("X".to_string(), x)].into_iter().collect();
        let value = f.evaluate(&vars).unwrap();
        prop_assert!((value - (a * x + b)).abs() <= 1e-6 * (1.0 + value.abs()));
    }

    /// Arbitrary garbage never makes the formula parser panic.
    #[test]
    fn formula_parser_is_total(src in "[A-Za-z0-9+*/()., -]{0,40}") {
        let _ = Formula::parse(&src);
    }
}

/// The cpuid-decoded topology matches the ground truth for every preset —
/// run as a plain test here as well so the workspace-level suite covers it.
#[test]
fn decoded_topology_matches_ground_truth_everywhere() {
    for &preset in MachinePreset::all() {
        let machine = SimMachine::new(preset);
        let probed = CpuTopology::probe(&machine).unwrap();
        let truth = machine.topology();
        assert_eq!(probed.sockets, truth.sockets);
        assert_eq!(probed.cores_per_socket, truth.cores_per_socket);
        assert_eq!(probed.threads_per_core, truth.threads_per_core);
        assert_eq!(probed.hw_threads.len(), truth.num_hw_threads());
    }
}

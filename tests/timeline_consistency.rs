//! Timeline/aggregate consistency: per-interval counter deltas must sum
//! *exactly* to the aggregate counts of the same run.
//!
//! The timeline subsystem slices a workload's simulated activity at
//! virtual-time boundaries and credits each slice through the counting
//! engine; nothing may be lost or double-counted at the seams. This
//! property suite replays every registered `likwid-bench` kernel on two
//! machine presets, both with a single event group and with a multiplexed
//! `FLOPS_DP,MEM` group list (where the groups rotate across intervals and
//! each group owns every second interval), and requires the element-wise
//! sum of the interval deltas of each group to equal that group's raw
//! aggregate `GroupCounts`.

use proptest::prelude::*;

use likwid_suite::likwid::perfctr::{EventGroupKind, MeasurementSpec, TimelineResult};
use likwid_suite::workloads::kernels::{kernel_by_name, kernel_names};
use likwid_suite::workloads::{Experiment, PlacementPolicy};
use likwid_suite::x86_machine::MachinePreset;

const PRESETS: [MachinePreset; 2] = [MachinePreset::NehalemEp2S, MachinePreset::Core2Quad];

/// Run one kernel time-resolved with `slices` intervals over its runtime.
fn run_timeline(
    kernel_name: &str,
    preset: MachinePreset,
    multiplexed: bool,
    slices: usize,
) -> TimelineResult {
    let kernel = kernel_by_name(kernel_name, 2 << 20, 1).expect("registered kernel");
    let probe = Experiment::on(preset)
        .placement(PlacementPolicy::LikwidPin(vec![0, 1]))
        .run(kernel.as_ref())
        .expect("counter-less probe");
    let dt = probe.first().runtime_s / slices as f64;
    let spec = if multiplexed {
        MeasurementSpec::Groups(vec![EventGroupKind::FLOPS_DP, EventGroupKind::MEM])
    } else {
        MeasurementSpec::Group(EventGroupKind::MEM)
    };
    Experiment::on(preset)
        .placement(PlacementPolicy::LikwidPin(vec![0, 1]))
        .counters(spec)
        .timeline(dt)
        .run(kernel.as_ref())
        .expect("timeline run")
        .timeline
        .expect("timeline result")
}

fn assert_deltas_sum_to_aggregate(
    timeline: &TimelineResult,
    context: &str,
) -> Result<(), TestCaseError> {
    prop_assert!(!timeline.intervals.is_empty(), "{context}: no intervals recorded");
    for g in 0..timeline.group_names.len() {
        let of_group = timeline.intervals_of_group(g);
        for ei in 0..timeline.aggregate[g].len() {
            for ci in 0..timeline.cpus.len() {
                let summed: u64 = of_group.iter().map(|iv| iv.counts[ei][ci]).sum();
                prop_assert_eq!(
                    summed,
                    timeline.aggregate[g][ei][ci],
                    "{} group {} ({}) event {} cpu {}",
                    context,
                    g,
                    timeline.group_names[g],
                    ei,
                    ci
                );
            }
        }
    }
    // Interval timestamps tile the run without gaps.
    let mut t = 0.0;
    for iv in &timeline.intervals {
        prop_assert!((iv.t_start_s - t).abs() < 1e-12, "{context}: gap at {t}");
        prop_assert!(iv.t_end_s >= iv.t_start_s, "{context}: interval runs backwards");
        t = iv.t_end_s;
    }
    prop_assert!((t - timeline.duration_s).abs() < 1e-12, "{context}: duration mismatch");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Interval deltas sum exactly to the aggregate for random kernels,
    /// presets, slicings and group modes.
    #[test]
    fn interval_deltas_sum_exactly_to_the_aggregate(
        kernel_index in 0usize..6,
        preset_index in 0usize..2,
        slices in 2usize..9,
        multiplexed in 0usize..2,
    ) {
        let name = kernel_names()[kernel_index];
        let preset = PRESETS[preset_index];
        let timeline = run_timeline(name, preset, multiplexed == 1, slices);
        let context = format!("{name} on {preset:?} ({slices} slices, multiplexed={multiplexed})");
        assert_deltas_sum_to_aggregate(&timeline, &context)?;
    }
}

/// The deterministic corner the proptest may not always draw: every
/// registered kernel on both presets, single-group *and* under the
/// multiplexed `FLOPS_DP,MEM` list.
#[test]
fn every_kernel_and_preset_is_exact_in_both_group_modes() {
    for &name in kernel_names() {
        for &preset in &PRESETS {
            for multiplexed in [false, true] {
                let timeline = run_timeline(name, preset, multiplexed, 5);
                if multiplexed {
                    assert_eq!(timeline.group_names, vec!["FLOPS_DP", "MEM"]);
                    // Rotation across intervals: both groups own intervals.
                    assert!(!timeline.intervals_of_group(0).is_empty());
                    assert!(!timeline.intervals_of_group(1).is_empty());
                }
                let context = format!("{name} on {preset:?} multiplexed={multiplexed}");
                assert_deltas_sum_to_aggregate(&timeline, &context)
                    .unwrap_or_else(|e| panic!("{context}: {e}"));
            }
        }
    }
}

//! Golden and round-trip tests for the time-resolved measurement
//! subsystem:
//!
//! 1. `likwid-perfctr -t` (timeline over the synthetic demo application,
//!    multiplexed `FLOPS_DP,MEM` group list) is byte-stable in ASCII and
//!    CSV;
//! 2. the time-resolved Jacobi case-study figure (`fig12_jacobi_timeline`)
//!    is byte-stable in ASCII and CSV, and its series show the blocked vs
//!    naive phase structure;
//! 3. every `TimeSeries`-bearing report satisfies
//!    `Report::from_json(Json.render(r)) == r`.

use likwid_bench::jacobi_timeline_report;
use likwid_suite::likwid::cli;
use likwid_suite::likwid::report::{Ascii, Body, Csv, Json, Render, Report};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

const PERFCTR_TIMELINE_ARGS: [&str; 8] =
    ["--machine", "westmere-ep-2s", "-c", "0-1", "-g", "FLOPS_DP,MEM", "-t", "1ms"];

#[test]
fn perfctr_timeline_ascii_and_csv_match_the_goldens() {
    let report = cli::perfctr_report(&args(&PERFCTR_TIMELINE_ARGS)).unwrap();
    assert_eq!(
        Ascii.render(&report),
        include_str!("golden/perfctr_timeline_westmere-ep-2s.txt"),
        "timeline ASCII must be byte-stable"
    );
    assert_eq!(
        Csv.render(&report),
        include_str!("golden/perfctr_timeline_westmere-ep-2s.csv"),
        "timeline CSV must be byte-stable"
    );
}

#[test]
fn perfctr_timeline_report_round_trips_through_json() {
    let report = cli::perfctr_report(&args(&PERFCTR_TIMELINE_ARGS)).unwrap();
    assert!(
        report.sections.iter().any(|s| matches!(s.body, Body::TimeSeries(_))),
        "the report must carry TimeSeries bodies"
    );
    let parsed = Report::from_json(&Json.render(&report)).expect("timeline JSON must parse");
    assert_eq!(parsed, report, "from_json(Json.render(r)) == r for a TimeSeries-bearing report");
}

#[test]
fn jacobi_phase_figure_matches_the_goldens_and_round_trips() {
    let report = jacobi_timeline_report(104, 4, 200e-6).unwrap();
    assert_eq!(
        Ascii.render(&report),
        include_str!("golden/fig12_timeline_104.txt"),
        "Jacobi phase figure ASCII must be byte-stable"
    );
    assert_eq!(
        Csv.render(&report),
        include_str!("golden/fig12_timeline_104.csv"),
        "Jacobi phase figure CSV must be byte-stable"
    );
    let parsed = Report::from_json(&Json.render(&report)).expect("figure JSON must parse");
    assert_eq!(parsed, report);
}

#[test]
fn jacobi_phase_structure_is_visible_in_the_series() {
    let report = jacobi_timeline_report(104, 4, 200e-6).unwrap();
    let series_of = |id: &str| -> Vec<f64> {
        let Some(Body::TimeSeries(ts)) = report.section(id).map(|s| &s.body) else {
            panic!("section {id} must be a timeseries");
        };
        let s = ts
            .series_for("Memory bandwidth [MBytes/s]", 0)
            .expect("bandwidth series on the socket-lock owner");
        s.values.clone()
    };
    let threaded = series_of("threaded.timeline");
    let wavefront = series_of("wavefront.timeline");

    // The naive sweep alternates memory-saturating phases with fork/join
    // barriers: its bandwidth series swings visibly.
    let max = |v: &[f64]| v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(
        max(&threaded) > 1.3 * min(&threaded),
        "threaded sweeps vs barriers must swing: {threaded:?}"
    );

    // The blocked wavefront streams steadily at a fraction of the naive
    // bandwidth — only the pipeline ends touch memory.
    let steady = &wavefront[1..wavefront.len() - 1];
    let mean = steady.iter().sum::<f64>() / steady.len() as f64;
    let threaded_peak = max(&threaded);
    assert!(
        mean < 0.55 * threaded_peak,
        "wavefront steady-state ({mean}) must stay well below the naive peak ({threaded_peak})"
    );
}

//! Cross-crate integration tests: the full pipeline from the simulated
//! machine through the tools to the workloads, exercising the paths the
//! paper's case studies use.

use likwid_suite::affinity::ThreadingModel;
use likwid_suite::likwid::marker::MarkerApi;
use likwid_suite::likwid::perfctr::{
    parse_event_spec, EventGroupKind, MeasurementSpec, PerfCtr, PerfCtrConfig,
};
use likwid_suite::likwid::pin::{PinConfig, PinTool};
use likwid_suite::likwid::topology::CpuTopology;
use likwid_suite::perf_events::EventEngine;
use likwid_suite::workloads::exec::sample_from_simulation;
use likwid_suite::workloads::jacobi::{Jacobi, JacobiConfig, JacobiVariant};
use likwid_suite::x86_machine::{MachinePreset, SimMachine};

/// Case study 2+3 end to end: probe the topology, derive the "one socket"
/// pin list from it, run the wavefront Jacobi under that placement, measure
/// the uncore traffic through likwid-perfctr, and check that the
/// topology-aware placement wins — without ever consulting the machine's
/// ground truth directly.
#[test]
fn topology_aware_pinning_measured_through_the_tool() {
    let machine = SimMachine::new(MachinePreset::NehalemEp2S);

    // 1. likwid-topology: find the hardware threads sharing the first L3.
    let topo = CpuTopology::probe(&machine).expect("probe");
    let l3 = topo.caches.iter().find(|c| c.level == 3).expect("L3 present");
    let mut shared_l3_threads: Vec<usize> = l3.groups[0].clone();
    shared_l3_threads.sort_unstable();
    // Physical cores only (SMT thread 0): one OS id per core id.
    let mut one_socket_cores: Vec<usize> = Vec::new();
    for &os_id in &shared_l3_threads {
        let info = topo.hw_threads[os_id];
        if info.thread_id == 0 {
            one_socket_cores.push(os_id);
        }
    }
    assert_eq!(one_socket_cores.len(), 4, "Nehalem EP socket has four physical cores");

    // 2. A wrong placement: pairs of pipeline stages on different sockets.
    let other_socket: Vec<usize> = topo
        .hw_threads
        .iter()
        .filter(|t| t.socket_id == 1 && t.thread_id == 0)
        .map(|t| t.os_id)
        .take(2)
        .collect();
    let wrong_placement =
        vec![one_socket_cores[0], one_socket_cores[1], other_socket[0], other_socket[1]];

    // 3. Run both placements and measure UNC_L3 lines through the tool.
    let table = likwid_suite::perf_events::tables::for_arch(machine.arch());
    let spec =
        parse_event_spec("UNC_L3_LINES_IN_ANY:UPMC0,UNC_L3_LINES_OUT_ANY:UPMC1", &table).unwrap();

    let measure = |placement: Vec<usize>| {
        let mut session = PerfCtr::new(
            &machine,
            PerfCtrConfig { cpus: placement.clone(), spec: MeasurementSpec::Custom(spec.clone()) },
        )
        .unwrap();
        session.start().unwrap();
        let result = Jacobi::new(&machine).run(&JacobiConfig {
            size: 72,
            time_steps: 4,
            placement,
            variant: JacobiVariant::Wavefront,
        });
        let sample = sample_from_simulation(&machine, &result.stats, &result.profile);
        EventEngine::new(&machine).apply(&machine, &sample);
        session.stop().unwrap();
        let counts = session.read_counts().unwrap();
        let tool_view = session.results(&counts).unwrap();
        (result, tool_view)
    };

    let (good, good_view) = measure(one_socket_cores.clone());
    let (bad, bad_view) = measure(wrong_placement);

    // The topology-aware placement wins by a wide margin…
    assert!(good.mlups > 1.5 * bad.mlups, "{} vs {}", good.mlups, bad.mlups);
    // …and the tool-visible uncore counts agree with the simulator's own
    // statistics (socket 0 owner is the first measured cpu in both runs).
    let good_lines_in_tool = good_view.event_count("UNC_L3_LINES_IN_ANY", 0).unwrap();
    assert_eq!(good_lines_in_tool, good.stats.levels.last().unwrap().instances[0].lines_in);
    let bad_lines_in_tool = bad_view.event_count("UNC_L3_LINES_IN_ANY", 0).unwrap();
    assert!(bad_lines_in_tool > 0);
}

/// Case study 1 end to end at the tool level: likwid-pin resolves the same
/// socket-scatter placement that the workload model rewards, and the
/// wrongly-configured pin run (missing skip mask) is detectably worse.
#[test]
fn likwid_pin_placements_feed_the_stream_model() {
    use likwid_suite::workloads::openmp::{CompilerPersonality, PlacementPolicy};
    use likwid_suite::workloads::stream::StreamExperiment;

    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let tool = PinTool::new(
        &machine,
        PinConfig::new("S0:0-2@S1:0-2").with_model(ThreadingModel::IntelOpenMp),
    )
    .unwrap();
    let placement: Vec<usize> =
        tool.worker_placement(6).into_iter().collect::<Option<Vec<_>>>().expect("fully pinned");

    let mut experiment =
        StreamExperiment::new(MachinePreset::WestmereEp2S, CompilerPersonality::IntelIcc);
    experiment.samples_per_point = 20;
    let pinned = experiment.run_samples(6, &PlacementPolicy::LikwidPin(placement), 11);
    let unpinned = experiment.run_samples(6, &PlacementPolicy::Unpinned, 11);

    let pinned_median = median(&pinned);
    let unpinned_median = median(&unpinned);
    assert!(
        pinned_median >= unpinned_median,
        "likwid-pin placement must not lose to the scheduler lottery: {pinned_median} vs {unpinned_median}"
    );
    // All pinned samples are identical (no placement randomness remains).
    assert!(pinned.iter().all(|&s| (s - pinned[0]).abs() < 1e-9));
}

/// Marker-mode measurement across crates: two regions measured over a
/// simulated workload produce consistent derived metrics.
#[test]
fn marker_regions_with_derived_metrics() {
    use likwid_suite::perf_events::{EventSample, HwEventKind};

    let machine = SimMachine::new(MachinePreset::Core2Quad);
    let mut session = PerfCtr::new(
        &machine,
        PerfCtrConfig {
            cpus: vec![0, 1, 2, 3],
            spec: MeasurementSpec::Group(EventGroupKind::FLOPS_DP),
        },
    )
    .unwrap();
    session.start().unwrap();
    let engine = EventEngine::new(&machine);

    let mut marker = MarkerApi::init(4, 2);
    let bench = marker.register_region("Benchmark");
    for (thread, core) in (0..4).map(|i| (i, i)) {
        marker.start_region(thread, core, &session).unwrap();
    }
    let mut sample = EventSample::new(machine.num_hw_threads(), 1);
    for cpu in 0..4 {
        sample.threads[cpu].set(HwEventKind::SimdPackedDouble, 8_192_000);
        sample.threads[cpu].set(HwEventKind::SimdScalarDouble, 1);
        sample.threads[cpu].set(HwEventKind::InstructionsRetired, 18_802_400);
        sample.threads[cpu].set(HwEventKind::CoreCycles, 28_583_800);
    }
    engine.apply(&machine, &sample);
    for (thread, core) in (0..4).map(|i| (i, i)) {
        marker.stop_region(thread, core, bench, &session).unwrap();
    }
    marker.close().unwrap();

    let results = marker.region_results(bench, &session).unwrap();
    for cpu_pos in 0..4 {
        let mflops = results.metric("DP MFlops/s", cpu_pos).unwrap();
        assert!(
            (mflops - 1624.0).abs() < 40.0,
            "paper reports ~1624-1646 MFlops/s per core, got {mflops}"
        );
        let cpi = results.metric("CPI", cpu_pos).unwrap();
        assert!((cpi - 1.52).abs() < 0.02);
    }
}

/// The typed report API end to end: run a measurement through the tool
/// pipeline and consume counts and metrics from the structured document —
/// no string scraping anywhere, and the JSON a binary would emit parses
/// back into the same document.
#[test]
fn typed_report_consumption_without_string_scraping() {
    use likwid_suite::likwid::report::{Json, Render, Report};
    use likwid_suite::perf_events::{EventSample, HwEventKind};

    let machine = SimMachine::new(MachinePreset::Core2Quad);
    let mut session = PerfCtr::new(
        &machine,
        PerfCtrConfig {
            cpus: vec![0, 1, 2, 3],
            spec: MeasurementSpec::Group(EventGroupKind::FLOPS_DP),
        },
    )
    .unwrap();
    let (_, results) = session
        .measure(|m| {
            let mut sample = EventSample::new(m.num_hw_threads(), 1);
            for cpu in 0..4 {
                sample.threads[cpu].set(HwEventKind::SimdPackedDouble, 8_192_000);
                sample.threads[cpu].set(HwEventKind::SimdScalarDouble, 1);
                sample.threads[cpu].set(HwEventKind::InstructionsRetired, 18_802_400);
                sample.threads[cpu].set(HwEventKind::CoreCycles, 28_583_800);
            }
            EventEngine::new(m).apply(m, &sample);
        })
        .unwrap();

    let report = results.report();
    let events = report.table("events").expect("events table");
    assert_eq!(
        events.cell("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", "core 2").unwrap().as_count(),
        Some(8_192_000)
    );
    let metrics = report.table("metrics").expect("metrics table");
    let mflops = metrics.cell("DP MFlops/s", "core 0").unwrap().as_real().unwrap();
    assert!((mflops - 1624.0).abs() < 40.0, "paper reports ~1624 MFlops/s, got {mflops}");
    let cpi = metrics.cell("CPI", "core 3").unwrap().as_real().unwrap();
    assert!((cpi - 1.52).abs() < 0.02);

    // What `likwid-perfctr -O json` would emit round-trips across the
    // process boundary into an equal document.
    let wire = Json.render(&report);
    let parsed = Report::from_json(&wire).expect("valid JSON");
    assert_eq!(parsed, report);
    assert_eq!(
        parsed.table("events").unwrap().cell("INSTR_RETIRED_ANY", "core 1").unwrap().as_count(),
        Some(18_802_400)
    );

    // The topology report feeds typed placement decisions the same way.
    let topo_report = likwid_suite::likwid::cli::topology_report(&[
        "--machine".to_string(),
        "westmere-ep-2s".to_string(),
    ])
    .unwrap();
    assert_eq!(topo_report.value("thread-topology", "Sockets").unwrap().as_count(), Some(2));
    assert_eq!(
        topo_report.value("thread-topology", "Cores per socket").unwrap().as_count(),
        Some(6)
    );
}

/// The four CLI front ends work against every machine preset.
#[test]
fn cli_tools_run_on_every_preset() {
    for &preset in MachinePreset::all() {
        let machine_arg = vec!["--machine".to_string(), preset.id().to_string()];
        let topo = likwid_suite::likwid::cli::run_topology(&machine_arg).unwrap();
        assert!(topo.contains("Sockets:"), "{preset:?}");

        let mut pin_args = machine_arg.clone();
        pin_args.extend(["-c".to_string(), "0".to_string()]);
        assert!(likwid_suite::likwid::cli::run_pin(&pin_args).is_ok(), "{preset:?}");

        let mut perfctr_args = machine_arg.clone();
        perfctr_args.push("-a".to_string());
        let listing = likwid_suite::likwid::cli::run_perfctr(&perfctr_args).unwrap();
        assert!(listing.contains("FLOPS_DP"), "{preset:?}");
    }
}

fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    sorted[sorted.len() / 2]
}

//! Observation neutrality and trace validity.
//!
//! The self-observability layer must be invisible in every report: running
//! a tool with `--trace` may write a trace file and a stderr rollup, but
//! the rendered `Report` — stdout or `-o` file — has to stay byte-identical
//! to the untraced run. These tests pin that contract across the perfctr
//! aggregate/stethoscope/timeline paths, the fleet sweep, and the
//! daemon-routed experiment path, and validate the trace files themselves:
//! Chrome trace-event JSON parses, B/E spans balance per track, timestamps
//! never regress, and folded stacks are `flamegraph.pl`-ready.
//!
//! The recorder is process-global, so every test here serializes on one
//! lock: a traced test must not capture spans from a concurrently running
//! neighbour, and an untraced reference run must not record at all.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;

use likwid_suite::daemon::jsonv::JsonValue;
use likwid_suite::daemon::Daemon;
use likwid_suite::fleet::cli::fleet_main;
use likwid_suite::likwid::cli::{tool_main, Tool};
use likwid_suite::likwid::perfctr::parse_measurement_spec;
use likwid_suite::likwid::report::{Ascii, Render};
use likwid_suite::likwid::trace;
use likwid_suite::perf_events::EventEngine;
use likwid_suite::workloads::kernels::kernel_by_name;
use likwid_suite::workloads::{Experiment, PlacementPolicy};
use likwid_suite::x86_machine::{MachinePreset, SimMachine};

static RECORDER: Mutex<()> = Mutex::new(());

/// Serialize tests around the process-global recorder. A panicking
/// neighbour must not wedge the rest of the suite, so poisoning is fine.
fn recorder_lock() -> MutexGuard<'static, ()> {
    RECORDER.lock().unwrap_or_else(|e| e.into_inner())
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("likwid-trace-obs-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create tempdir");
    dir
}

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn read(path: &Path) -> String {
    fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Parse a Chrome trace file and return its `traceEvents` array.
fn chrome_events(path: &Path) -> Vec<JsonValue> {
    let text = read(path);
    let parsed = JsonValue::parse(&text)
        .unwrap_or_else(|e| panic!("{}: trace is not valid JSON: {e}", path.display()));
    match parsed.get("traceEvents") {
        Some(JsonValue::Arr(events)) => events.clone(),
        _ => panic!("{}: no traceEvents array", path.display()),
    }
}

/// The Perfetto-facing invariants: every event carries the common fields,
/// B/E pairs balance per (pid, tid) track, and timestamps never regress
/// within a track.
fn assert_valid_chrome_trace(path: &Path) -> Vec<JsonValue> {
    let events = chrome_events(path);
    assert!(!events.is_empty(), "{}: empty trace", path.display());
    let mut depth: BTreeMap<(u64, u64), i64> = BTreeMap::new();
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    for event in &events {
        let ph = event.get("ph").and_then(JsonValue::as_str).expect("event has ph");
        let pid = event.get("pid").and_then(JsonValue::as_u64).expect("event has pid");
        let tid = event.get("tid").and_then(JsonValue::as_u64).expect("event has tid");
        if ph == "M" {
            continue; // process_name / thread_name metadata has no timestamp
        }
        let ts = event.get("ts").and_then(JsonValue::as_f64).expect("event has ts");
        let last = last_ts.entry((pid, tid)).or_insert(ts);
        assert!(ts >= *last, "{}: ts regresses on pid {pid} tid {tid}", path.display());
        *last = ts;
        let track = depth.entry((pid, tid)).or_insert(0);
        match ph {
            "B" => {
                assert!(event.get("name").is_some(), "B event without name");
                *track += 1;
            }
            "E" => {
                *track -= 1;
                assert!(*track >= 0, "{}: E without B on pid {pid} tid {tid}", path.display());
            }
            "X" => {
                assert!(event.get("name").is_some(), "X event without name");
                assert!(
                    event.get("dur").and_then(JsonValue::as_f64).is_some(),
                    "X event without dur"
                );
            }
            "C" => {
                let value = event.get("args").and_then(|a| a.get("value"));
                assert!(value.is_some(), "C event without args.value");
            }
            other => panic!("{}: unexpected phase {other:?}", path.display()),
        }
    }
    for ((pid, tid), d) in depth {
        assert_eq!(d, 0, "{}: unbalanced B/E on pid {pid} tid {tid}", path.display());
    }
    events
}

/// The `(index, memo, worker)` annotations of every fleet `point` span.
fn point_spans(events: &[JsonValue]) -> Vec<(String, String, String)> {
    let mut points = Vec::new();
    for event in events {
        if event.get("ph").and_then(JsonValue::as_str) != Some("X")
            || event.get("name").and_then(JsonValue::as_str) != Some("point")
        {
            continue;
        }
        let arg = |key: &str| {
            event
                .get("args")
                .and_then(|a| a.get(key))
                .and_then(JsonValue::as_str)
                .unwrap_or_else(|| panic!("point span without args.{key}"))
                .to_string()
        };
        points.push((arg("index"), arg("memo"), arg("worker")));
    }
    points.sort();
    points
}

/// Run likwid-perfctr through the binary driver into `-o <file>`, exactly
/// like the shipped binary (the only in-process path that honours
/// `--trace`), and return the rendered report.
fn perfctr_to_file(dir: &Path, name: &str, base: &[&str], trace: Option<&Path>) -> String {
    let out = dir.join(name);
    let mut argv: Vec<String> = base.iter().map(|s| s.to_string()).collect();
    argv.push("-o".into());
    argv.push(out.display().to_string());
    if let Some(trace) = trace {
        argv.push("--trace".into());
        argv.push(trace.display().to_string());
    }
    let code = tool_main(Tool::Perfctr, &argv);
    assert_eq!(code, 0, "likwid-perfctr {argv:?} failed");
    read(&out)
}

#[test]
fn perfctr_reports_are_byte_identical_with_tracing_on() {
    let _lock = recorder_lock();
    let dir = tempdir("perfctr-neutral");
    // Aggregate, stethoscope and timeline mode: the three perfctr paths.
    let cases: &[(&str, &[&str])] = &[
        ("aggregate", &["--machine", "westmere-ep-2s", "-c", "0,1", "-g", "FLOPS_DP"]),
        ("steth", &["--machine", "westmere-ep-2s", "-c", "0,1", "-g", "MEM", "-S", "10ms"]),
        ("timeline", &["--machine", "westmere-ep-2s", "-c", "0-3", "-g", "FLOPS_DP", "-t", "2ms"]),
    ];
    for (tag, base) in cases {
        let plain = perfctr_to_file(&dir, &format!("{tag}-plain.txt"), base, None);
        let trace_file = dir.join(format!("{tag}.json"));
        let traced = perfctr_to_file(&dir, &format!("{tag}-traced.txt"), base, Some(&trace_file));
        assert_eq!(plain, traced, "{tag}: --trace changed the report");
        let events = assert_valid_chrome_trace(&trace_file);
        if *tag == "timeline" {
            // Interval spans ride virtual-time tracks so wall-clock jitter
            // can never unbalance them.
            assert!(
                events.iter().any(|e| {
                    e.get("name").and_then(JsonValue::as_str) == Some("timeline.interval")
                        && e.get("tid").and_then(JsonValue::as_u64).unwrap_or(0)
                            >= trace::VIRTUAL_TID_BASE
                }),
                "timeline trace lacks virtual-track interval spans"
            );
        }
    }
}

#[test]
fn folded_traces_are_flamegraph_ready() {
    let _lock = recorder_lock();
    let dir = tempdir("perfctr-folded");
    let base = &["--machine", "westmere-ep-2s", "-c", "0,1", "-g", "FLOPS_DP", "-t", "2ms"];
    let trace_file = dir.join("t.folded");
    perfctr_to_file(&dir, "report.txt", base, Some(&trace_file));
    let folded = read(&trace_file);
    assert!(!folded.trim().is_empty(), "folded trace is empty");
    for line in folded.lines() {
        // `process;frame;...;leaf <self-ns>` — exactly what flamegraph.pl
        // consumes.
        let (path, count) = line.rsplit_once(' ').expect("folded line has a count");
        assert!(path.contains(';'), "folded path lacks a process root: {line:?}");
        count.parse::<u64>().unwrap_or_else(|_| panic!("bad self-time in {line:?}"));
    }
}

#[test]
fn fleet_sweep_reports_are_byte_identical_with_tracing_on() {
    let _lock = recorder_lock();
    let dir = tempdir("fleet-neutral");
    let run = |store: &Path, report: &Path, trace: Option<&Path>| {
        let mut argv = vec![
            "run".to_string(),
            "-N".into(),
            "1,2".into(),
            "-n".into(),
            "2".into(),
            "-W".into(),
            "2".into(),
            "--store".into(),
            store.display().to_string(),
            "-o".into(),
            report.display().to_string(),
        ];
        if let Some(trace) = trace {
            argv.push("--trace".into());
            argv.push(trace.display().to_string());
        }
        assert_eq!(fleet_main(&argv), 0, "fleet run failed");
    };
    // Fresh stores on both sides so the traced and untraced sweeps do the
    // same work (all points cold).
    let plain_report = dir.join("plain.json");
    run(&dir.join("store-plain"), &plain_report, None);
    let trace_file = dir.join("sweep.json");
    let traced_report = dir.join("traced.json");
    run(&dir.join("store-traced"), &traced_report, Some(&trace_file));
    assert_eq!(read(&plain_report), read(&traced_report), "--trace changed the fleet report");
    assert_valid_chrome_trace(&trace_file);
}

#[test]
fn traced_fleet_sweep_attributes_memoization_per_point() {
    let _lock = recorder_lock();
    let dir = tempdir("fleet-memo");
    let store = dir.join("store");
    let run = |trace: &Path, report: &str| {
        let argv = args(&[
            "run",
            "-N",
            "1,2",
            "-W",
            "2",
            "--store",
            &store.display().to_string(),
            "-o",
            &dir.join(report).display().to_string(),
            "--trace",
            &trace.display().to_string(),
        ]);
        assert_eq!(fleet_main(&argv), 0, "fleet run failed");
    };

    let cold_trace = dir.join("cold-trace.json");
    run(&cold_trace, "cold-report.json");
    let cold = point_spans(&assert_valid_chrome_trace(&cold_trace));
    // One `point` span per expanded point (-N 1,2 → two points), all
    // executed on the cold store.
    assert_eq!(cold.len(), 2, "expected one point span per expanded point: {cold:?}");
    let indices: Vec<&str> = cold.iter().map(|(i, _, _)| i.as_str()).collect();
    assert_eq!(indices, ["0", "1"], "point spans must cover every point once");
    assert!(cold.iter().all(|(_, memo, _)| memo == "miss"), "cold sweep memo args: {cold:?}");

    let warm_trace = dir.join("warm-trace.json");
    run(&warm_trace, "warm-report.json");
    let warm = point_spans(&assert_valid_chrome_trace(&warm_trace));
    assert_eq!(warm.len(), 2);
    assert!(warm.iter().all(|(_, memo, _)| memo == "hit"), "warm sweep memo args: {warm:?}");
    // Memoized or not, both reports render byte-identically.
    assert_eq!(read(&dir.join("cold-report.json")), read(&dir.join("warm-report.json")));
}

#[test]
fn daemon_routed_experiments_are_unchanged_by_tracing() {
    let preset = MachinePreset::WestmereEp2S;
    let kernel = kernel_by_name("triad", 2 << 20, 1).expect("registered kernel");
    let spec_machine = SimMachine::new(preset);
    let spec_engine = EventEngine::new(&spec_machine);
    let spec = parse_measurement_spec("FLOPS_DP", spec_engine.table()).expect("spec");
    let experiment = |dt: f64| {
        Experiment::on(preset)
            .placement(PlacementPolicy::LikwidPin(vec![0, 1]))
            .counters(spec.clone())
            .timeline(dt)
    };
    // Probe the kernel's runtime to pick an interval yielding ~5 slices.
    let probe = Experiment::on(preset)
        .placement(PlacementPolicy::LikwidPin(vec![0, 1]))
        .run(kernel.as_ref())
        .expect("probe");
    let dt = probe.first().runtime_s / 5.0;

    let serve = || {
        let machine = SimMachine::new(preset);
        let daemon = Daemon::new(&machine);
        experiment(dt).via_daemon(kernel.as_ref(), &daemon).expect("daemon run")
    };
    let local = || experiment(dt).run(kernel.as_ref()).expect("local run");

    let plain_served = serve();
    let plain_local = local();

    let _lock = recorder_lock();
    trace::start();
    let traced_served = serve();
    let traced_local = local();
    let events = trace::stop();

    // The recorder saw the runs...
    assert!(
        events.iter().any(|e| e.name == "sample.daemon"),
        "traced via_daemon run recorded no sample spans"
    );
    assert!(
        events.iter().any(|e| e.name == "interval.window"),
        "traced broker recorded no suspend/resume windows"
    );
    // ...and changed nothing.
    for (plain, traced, path) in
        [(&plain_served, &traced_served, "daemon-routed"), (&plain_local, &traced_local, "local")]
    {
        let plain_timeline = plain.timeline.as_ref().expect("timeline");
        let traced_timeline = traced.timeline.as_ref().expect("timeline");
        assert_eq!(
            Ascii.render(&plain_timeline.report()),
            Ascii.render(&traced_timeline.report()),
            "{path}: tracing changed the timeline report"
        );
        assert_eq!(plain_timeline.aggregate, traced_timeline.aggregate, "{path}: aggregates");
        assert_eq!(plain.measured_cpus, traced.measured_cpus, "{path}: measured cpus");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever the cpu set, group and mode, `--trace` never changes a
    /// perfctr report.
    #[test]
    fn tracing_never_changes_a_perfctr_report(
        cpus in prop::sample::select(vec!["0", "0,1", "0-3"]),
        group in prop::sample::select(vec!["FLOPS_DP", "MEM"]),
        mode in prop::sample::select(vec!["aggregate", "steth", "timeline"]),
    ) {
        let _lock = recorder_lock();
        let dir = tempdir("perfctr-prop");
        let mut base = vec!["--machine", "westmere-ep-2s", "-c", cpus, "-g", group];
        match mode {
            "steth" => base.extend_from_slice(&["-S", "10ms"]),
            "timeline" => base.extend_from_slice(&["-t", "2ms"]),
            _ => {}
        }
        let plain = perfctr_to_file(&dir, "plain.txt", &base, None);
        let trace_file = dir.join("t.json");
        let traced = perfctr_to_file(&dir, "traced.txt", &base, Some(&trace_file));
        prop_assert_eq!(plain, traced, "-c {} -g {} ({})", cpus, group, mode);
        assert_valid_chrome_trace(&trace_file);
    }
}

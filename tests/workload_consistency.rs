//! Workload/simulator consistency: the traffic a kernel *declares* must be
//! the traffic the cache simulator *measures*.
//!
//! Every registered streaming kernel states its modelled memory traffic per
//! iteration (`Workload::bytes_per_iteration`), including the
//! write-allocate stream of regular stores. This property suite replays the
//! kernels through the cache simulator on several machine presets and
//! requires the measured per-iteration memory traffic to match the
//! declaration — the working set is chosen far beyond the last-level cache,
//! so the only slack is prefetcher overshoot (a little extra traffic) and
//! dirty lines still resident at the end of the run (a little missing
//! write-back traffic, bounded by the cache capacity).

use proptest::prelude::*;

use likwid_suite::workloads::kernels::kernel_by_name;
use likwid_suite::workloads::Placement;
use likwid_suite::x86_machine::{MachinePreset, SimMachine};

/// The streaming kernels whose traffic is line-exact under the
/// write-allocate model (the pointer chase is latency-, not
/// bandwidth-oriented: its declared 64 B/iteration only holds without
/// prefetching, so it is checked separately with a wider bound).
const STREAMING_KERNELS: [&str; 5] = ["copy", "scale", "add", "triad", "daxpy"];

const PRESETS: [MachinePreset; 2] = [MachinePreset::NehalemEp2S, MachinePreset::Core2Quad];

/// Total last-level capacity over all instances of the node (a Core 2 Quad
/// has two 6 MB L2 dies, the two-socket nodes one LLC per socket) — the
/// bound on how many dirty lines can still be resident, their write-back
/// unissued, when a run ends.
fn total_llc_bytes(machine: &SimMachine) -> u64 {
    machine
        .caches()
        .last()
        .map(|c| {
            let instances =
                (machine.num_hw_threads() as u64).div_ceil(c.shared_by_threads.max(1) as u64);
            c.size_bytes * instances.max(1)
        })
        .unwrap_or(16 << 20)
}

fn check_kernel_traffic(
    name: &str,
    preset: MachinePreset,
    working_set: u64,
    threads: usize,
) -> Result<(), TestCaseError> {
    let machine = SimMachine::new(preset);
    let kernel = kernel_by_name(name, working_set, 1).expect("registered kernel");
    let placement = Placement::pinned((0..threads).collect());
    let run = kernel.run(&machine, &placement);

    let declared = kernel.bytes_per_iteration() * run.iterations as f64;
    let measured = run.stats.total_memory_bytes() as f64;
    // Prefetchers may run a few lines past every stream end; un-evicted
    // dirty lines withhold at most the node's total LLC capacity of
    // write-backs.
    let slack = (total_llc_bytes(&machine) as f64).max(0.05 * declared);
    prop_assert!(
        (measured - declared).abs() <= slack,
        "{name} on {preset:?}: declared {declared} bytes, simulator measured {measured} \
         (slack {slack}, {} iterations)",
        run.iterations
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Declared bytes/iteration match the simulated memory traffic for
    /// every streaming kernel on two presets, across working-set sizes and
    /// thread counts.
    #[test]
    fn declared_traffic_matches_simulated_traffic(
        kernel_index in 0usize..STREAMING_KERNELS.len(),
        preset_index in 0usize..PRESETS.len(),
        ws_mb in 32u64..64,
        threads in 1usize..4,
    ) {
        check_kernel_traffic(
            STREAMING_KERNELS[kernel_index],
            PRESETS[preset_index],
            ws_mb << 20,
            threads,
        )?;
    }
}

/// The deterministic corner the proptest may not always draw: every
/// streaming kernel on both presets at a fixed large working set.
#[test]
fn every_streaming_kernel_is_consistent_on_both_presets() {
    for &name in &STREAMING_KERNELS {
        for &preset in &PRESETS {
            check_kernel_traffic(name, preset, 48 << 20, 2).unwrap();
        }
    }
}

/// The pointer chase's declared line-per-iteration traffic holds within a
/// factor bound once the working set dwarfs every cache (prefetchers add
/// traffic; they cannot remove any).
#[test]
fn pointer_chase_traffic_is_at_least_one_line_per_iteration() {
    let machine = SimMachine::new(MachinePreset::NehalemEp2S);
    let kernel = kernel_by_name("chase", 64 << 20, 1).expect("registered kernel");
    let run = kernel.run(&machine, &Placement::pinned(vec![0]));
    let declared = kernel.bytes_per_iteration() * run.iterations as f64;
    let measured = run.stats.total_memory_bytes() as f64;
    assert!(
        measured >= 0.95 * declared && measured <= 3.0 * declared,
        "declared {declared}, measured {measured}"
    );
}

//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no network access, so this vendored stub
//! implements the subset of the criterion API the workspace's benches use:
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical machinery it
//! runs each closure for a short, fixed wall-clock budget and reports the
//! mean time per iteration — enough to make `cargo bench` runnable and keep
//! relative comparisons meaningful.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export point for `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput annotation; recorded so per-element rates can be reported.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    total: Duration,
}

impl Bencher {
    fn run_budget() -> Duration {
        // Keep stub bench runs quick; raise via env when more samples wanted.
        std::env::var("CRITERION_STUB_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(Duration::from_millis(200))
    }

    /// Whether the binary runs in criterion's smoke-test mode
    /// (`cargo bench -- --test`): execute every routine once to prove it
    /// still works, skip the timing loop.
    fn smoke_mode() -> bool {
        std::env::args().any(|arg| arg == "--test")
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        if Self::smoke_mode() {
            black_box(routine());
            self.iterations = 1;
            self.total = start.elapsed();
            return;
        }
        let budget = Self::run_budget();
        loop {
            black_box(routine());
            self.iterations += 1;
            let elapsed = start.elapsed();
            if elapsed >= budget {
                self.total = elapsed;
                break;
            }
        }
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.iterations == 0 {
        println!("{name:<50} (no iterations)");
        return;
    }
    let per_iter = bencher.total.as_nanos() as f64 / bencher.iterations as f64;
    let mut line = format!("{name:<50} {per_iter:>14.1} ns/iter ({} iters)", bencher.iterations);
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            let rate = n as f64 / (per_iter / 1e9);
            line.push_str(&format!(", {rate:.3e} elem/s"));
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            let rate = n as f64 / (per_iter / 1e9) / 1e6;
            line.push_str(&format!(", {rate:.1} MB/s"));
        }
        _ => {}
    }
    println!("{line}");
}

/// Group of related benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { iterations: 0, total: Duration::ZERO };
        routine(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { iterations: 0, total: Duration::ZERO };
        routine(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &bencher, self.throughput);
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { name, throughput: None, _criterion: self }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { iterations: 0, total: Duration::ZERO };
        routine(&mut bencher);
        report(&id.to_string(), &bencher, None);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut bencher = Bencher { iterations: 0, total: Duration::ZERO };
        std::env::set_var("CRITERION_STUB_BUDGET_MS", "1");
        bencher.iter(|| black_box(1 + 1));
        assert!(bencher.iterations > 0);
        assert!(bencher.total > Duration::ZERO);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        let id = BenchmarkId::new("probe", "nehalem");
        assert_eq!(id.to_string(), "probe/nehalem");
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
    }
}

//! Offline stand-in for the `libc` crate.
//!
//! The build environment has no network access, so this vendored stub
//! declares only the pieces the workspace uses: `sysconf`, the
//! `sched_{set,get}affinity` syscall wrappers and the `cpu_set_t`
//! bit-set helpers. The symbols come from the C library the binary links
//! anyway; the constants match glibc on Linux, where alone they are used
//! (the callers are `#[cfg(target_os = "linux")]`-gated).

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_long = i64;
pub type size_t = usize;
pub type pid_t = i32;

/// glibc value of `_SC_NPROCESSORS_ONLN`.
pub const _SC_NPROCESSORS_ONLN: c_int = 84;

/// Bits in a `cpu_set_t` (glibc's `CPU_SETSIZE`).
pub const CPU_SETSIZE: c_int = 1024;

const ULONG_BITS: usize = usize::BITS as usize;

/// glibc's fixed 1024-bit CPU mask.
#[repr(C)]
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct cpu_set_t {
    bits: [usize; CPU_SETSIZE as usize / ULONG_BITS],
}

#[allow(non_snake_case)]
pub unsafe fn CPU_ZERO(set: &mut cpu_set_t) {
    set.bits = [0; CPU_SETSIZE as usize / ULONG_BITS];
}

#[allow(non_snake_case)]
pub unsafe fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < CPU_SETSIZE as usize {
        set.bits[cpu / ULONG_BITS] |= 1 << (cpu % ULONG_BITS);
    }
}

#[allow(non_snake_case)]
pub unsafe fn CPU_ISSET(cpu: usize, set: &cpu_set_t) -> bool {
    cpu < CPU_SETSIZE as usize && set.bits[cpu / ULONG_BITS] & (1 << (cpu % ULONG_BITS)) != 0
}

extern "C" {
    pub fn sysconf(name: c_int) -> c_long;
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *const cpu_set_t) -> c_int;
    pub fn sched_getaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *mut cpu_set_t) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_set_helpers_round_trip() {
        let mut set: cpu_set_t = unsafe { std::mem::zeroed() };
        unsafe {
            CPU_ZERO(&mut set);
            assert!(!CPU_ISSET(0, &set));
            CPU_SET(0, &mut set);
            CPU_SET(513, &mut set);
            assert!(CPU_ISSET(0, &set));
            assert!(CPU_ISSET(513, &set));
            assert!(!CPU_ISSET(1, &set));
            // Out-of-range bits are ignored, as with glibc's macros.
            CPU_SET(4096, &mut set);
            assert!(!CPU_ISSET(4096, &set));
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn sysconf_reports_online_cpus() {
        let n = unsafe { sysconf(_SC_NPROCESSORS_ONLN) };
        assert!(n >= 1);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn sched_getaffinity_fills_a_mask() {
        let mut set: cpu_set_t = unsafe { std::mem::zeroed() };
        let rc = unsafe { sched_getaffinity(0, std::mem::size_of::<cpu_set_t>(), &mut set) };
        assert_eq!(rc, 0);
        let any = (0..CPU_SETSIZE as usize).any(|cpu| unsafe { CPU_ISSET(cpu, &set) });
        assert!(any, "current thread must be allowed on at least one CPU");
    }
}

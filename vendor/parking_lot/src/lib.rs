//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so this vendored stub
//! provides the subset of the `parking_lot` API the workspace uses —
//! `RwLock` and `Mutex` with guard-returning (non-`Result`) lock methods —
//! implemented on top of the poisoning-free use of `std::sync` primitives.
//! Lock poisoning is intentionally swallowed: `parking_lot` locks do not
//! poison, so a panicked writer must not wedge later readers.

use std::sync::{self, TryLockError};

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_after_panicked_writer_does_not_poison() {
        let lock = std::sync::Arc::new(RwLock::new(7u32));
        let clone = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = clone.write();
            panic!("poison the std lock underneath");
        })
        .join();
        assert_eq!(*lock.read(), 7);
    }

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }
}

//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no network access, so this vendored stub
//! implements the subset of proptest this workspace uses: the `proptest!`
//! macro with a `#![proptest_config(..)]` header, `prop_assert!` /
//! `prop_assert_eq!`, range and tuple strategies, `prop::collection::vec`,
//! `prop::bool::ANY`, and string-literal strategies for simple
//! `[class]{m,n}`-style regexes. Shrinking is not implemented: a failing
//! case panics with the case index so it can be replayed (generation is
//! deterministic per case index).

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! `prop::collection` — sized collections of an element strategy.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.below_range(self.size.start as u64, self.size.end as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! `prop::sample` — uniform choice from a fixed set.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing one of the given values uniformly.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        values: Vec<T>,
    }

    pub fn select<T: Clone + std::fmt::Debug>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select from an empty set");
        Select { values }
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.values[rng.below_range(0, self.values.len() as u64) as usize].clone()
        }
    }
}

pub mod bool {
    //! `prop::bool` — boolean strategies.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly random boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next() & 1 == 1
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test module needs, mirroring
    //! `proptest::prelude`.
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Runs one property function as `cases` deterministic cases.
///
/// Used by the expansion of [`proptest!`]; not part of the public mirror API.
pub fn run_cases(
    name: &str,
    config: &test_runner::Config,
    mut case: impl FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
) {
    for index in 0..config.cases {
        let mut rng = test_runner::TestRng::for_case(index);
        if let Err(err) = case(&mut rng) {
            panic!("property {name} failed at case {index}/{}: {err}", config.cases);
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (@impl ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                $crate::run_cases(stringify!($name), &config, |proptest_case_rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strategy),
                            proptest_case_rng,
                        );
                    )+
                    $body
                    Ok(())
                });
            }
        )*
    };

    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };

    ( $($rest:tt)* ) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} != {:?})", format!($($fmt)+), left, right),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
}

//! The `Strategy` trait and the primitive strategies the workspace uses:
//! numeric ranges, tuples, and string-literal regexes of the
//! `[class]{m,n}` form.

use crate::test_runner::TestRng;
use std::ops::Range;

/// Value generator; the stub equivalent of `proptest::strategy::Strategy`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        // 24-bit construction: exactly representable in f32, so the unit
        // draw stays strictly below 1.0 and the bound stays exclusive.
        let unit = (rng.next() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// One piece of a simple regex: a set of candidate chars plus a repetition
/// count range (`min..=max`).
#[derive(Debug, Clone)]
struct RegexAtom {
    chars: Vec<char>,
    min: u32,
    max: u32,
}

/// Parses the regex subset this stub supports: literal characters and
/// `[...]` classes (with `a-z` ranges), each optionally followed by `{m}`,
/// `{m,n}`, `?`, `*` or `+` (the unbounded quantifiers cap at 8 repeats).
fn parse_simple_regex(pattern: &str) -> Vec<RegexAtom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let candidate_chars = match c {
            '[' => {
                let mut set = Vec::new();
                let mut class = Vec::new();
                for c in chars.by_ref() {
                    if c == ']' {
                        break;
                    }
                    class.push(c);
                }
                let mut i = 0;
                while i < class.len() {
                    if i + 2 < class.len() && class[i + 1] == '-' {
                        let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                        assert!(lo <= hi, "inverted class range in regex {pattern:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        i += 3;
                    } else {
                        set.push(class[i]);
                        i += 1;
                    }
                }
                assert!(!set.is_empty(), "empty character class in regex {pattern:?}");
                set
            }
            '\\' => vec![chars.next().expect("dangling escape in regex")],
            '.' => (' '..='~').collect(),
            other => vec![other],
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad {m,n} lower bound"),
                        hi.trim().parse().expect("bad {m,n} upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad {m} count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        atoms.push(RegexAtom { chars: candidate_chars, min, max });
    }
    atoms
}

/// String literals act as regex strategies, as in real proptest.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_simple_regex(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = atom.min + (rng.next() % (atom.max - atom.min + 1) as u64) as u32;
            for _ in 0..count {
                let pick = (rng.next() % atom.chars.len() as u64) as usize;
                out.push(atom.chars[pick]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn int_range_strategy_stays_in_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..1000 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn f64_range_strategy_stays_in_bounds() {
        let mut rng = TestRng::for_case(1);
        for _ in 0..1000 {
            let v = (-2.5..4.0f64).generate(&mut rng);
            assert!((-2.5..4.0).contains(&v));
        }
    }

    #[test]
    fn tuple_strategy_generates_componentwise() {
        let mut rng = TestRng::for_case(2);
        let (a, b) = (0u64..10, 100usize..200).generate(&mut rng);
        assert!(a < 10);
        assert!((100..200).contains(&b));
    }

    #[test]
    fn regex_class_with_counted_repeat() {
        let mut rng = TestRng::for_case(3);
        for _ in 0..200 {
            let s = "[A-Za-z0-9+*/()., -]{0,40}".generate(&mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || "+*/()., -".contains(c)));
        }
    }

    #[test]
    fn regex_literals_and_quantifiers() {
        let mut rng = TestRng::for_case(4);
        let s = "ab[0-9]{3}c?".generate(&mut rng);
        assert!(s.starts_with("ab"));
        let digits: String = s[2..5].to_string();
        assert!(digits.chars().all(|c| c.is_ascii_digit()));
    }
}

//! Test configuration, case RNG and failure type for the proptest stub.

use std::fmt;

/// Mirror of `proptest::test_runner::Config` (the fields this workspace
/// touches).
#[derive(Debug, Clone)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Failure raised by `prop_assert!` and friends inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case generator (splitmix64). Case `i` of a property
/// always sees the same stream, so failures report a replayable case index.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(case_index: u32) -> Self {
        Self {
            // Fixed base seed; spread case indices far apart in the sequence.
            state: 0xB5AD_4ECE_DA1C_E2A9 ^ ((case_index as u64) << 32 | case_index as u64),
        }
    }

    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn below_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next() % (hi - lo)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_rng_is_deterministic_per_index() {
        let mut a = TestRng::for_case(3);
        let mut b = TestRng::for_case(3);
        let mut c = TestRng::for_case(4);
        let (xa, xb, xc) = (a.next(), b.next(), c.next());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn below_range_respects_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..10_000 {
            let v = rng.below_range(5, 9);
            assert!((5..9).contains(&v));
        }
    }
}

//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! The build environment has no network access, so this vendored stub
//! implements the subset of `rand` the workspace uses: `Rng::gen_range` /
//! `gen_bool`, `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `seq::SliceRandom::{shuffle, choose}`. The generator is xoshiro256**
//! seeded via splitmix64 — deterministic for a given seed, which is all the
//! simulation code relies on (statistical quality is secondary here).

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
                assert!(
                    range.start < range.end,
                    "cannot sample from empty range {}..{}",
                    range.start,
                    range.end
                );
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                range.start.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from empty f64 range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from empty f32 range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        range.start + unit * (range.end - range.start)
    }
}

/// Range-like argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_range(rng, self)
    }
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                state: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut n = [s0, s1, s2, s3];
            n[2] ^= n[0];
            n[3] ^= n[1];
            n[1] ^= n[2];
            n[0] ^= n[3];
            n[2] ^= t;
            n[3] = n[3].rotate_left(45);
            self.state = n;
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling and sampling, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, back to front.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements_eventually() {
        let mut rng = StdRng::seed_from_u64(9);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
